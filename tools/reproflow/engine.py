"""Whole-program model for reproflow: modules, symbols, call graph.

Where :mod:`tools.reprolint` looks at one file at a time, reproflow
parses the *entire* tree once into a :class:`Program` — every module's
AST, a symbol table of functions/classes/enums, the import aliases that
connect them, and a best-effort call graph — and hands that to the four
analysis passes (:mod:`tools.reproflow.taint`,
:mod:`tools.reproflow.machines`, :mod:`tools.reproflow.obscov`). The
program model is deliberately conservative: anything it cannot resolve
statically is *unknown*, and unknown never produces a finding. Findings
reuse the reprolint :class:`~tools.reprolint.engine.Finding` shape (with
RF codes) so the two tools share formatting, JSON output and test
idioms; suppressions are the reprolint comment grammar spelled
``# reproflow: disable=RFxxx`` / ``# reproflow: disable-file=RFxxx``.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import (
    DEFAULT_EXCLUDE_DIRS,
    Finding,
    iter_python_files,
)

#: ``numpy.random`` bit-generator constructors: unseeded without args.
BITGEN_NAMES = frozenset(
    {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "SeedSequence"}
)

#: Generator methods that consume the stream (draw sites).
DRAW_METHODS = frozenset(
    {
        "random",
        "standard_normal",
        "normal",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "geometric",
        "poisson",
        "exponential",
        "binomial",
        "gamma",
        "beta",
        "lognormal",
        "multivariate_normal",
        "bytes",
    }
)


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); ``None`` for non-trivial receivers."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_name(path: str) -> str:
    """POSIX-relative source path -> dotted module name.

    ``src/repro/runtime/health.py`` -> ``repro.runtime.health``;
    ``tools/reproflow/__init__.py`` -> ``tools.reproflow``. Anything
    else keeps its directory spine, so fixture buffers analyzed under a
    virtual path still get stable, unique module names.
    """
    trimmed = path[:-3] if path.endswith(".py") else path
    parts = [p for p in trimmed.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class FunctionInfo:
    """One function or method, addressable by its fully qualified name."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.node = node
        self.qualname = qualname  # module-relative, e.g. "Watchdog.observe"
        self.fqn = f"{module.modname}.{qualname}"
        self.class_name = class_name

    @property
    def params(self) -> List[ast.arg]:
        args = self.node.args  # type: ignore[attr-defined]
        out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if self.class_name and out and out[0].arg in ("self", "cls"):
            out = out[1:]
        return out


class ModuleInfo:
    """One parsed module: AST, imports, functions, classes, enums."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.modname = module_name(path)
        self.source = source
        self.tree = tree
        #: local alias -> fully qualified name it binds.
        self.imports: Dict[str, str] = {}
        #: module-relative qualname -> FunctionInfo (methods included).
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> ClassDef node.
        self.classes: Dict[str, ast.ClassDef] = {}
        #: enum class name -> member names (classes deriving from Enum).
        self.enums: Dict[str, Tuple[str, ...]] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        package = self.modname
        if not self.path.endswith("__init__.py"):
            package = self.modname.rsplit(".", 1)[0] if "." in self.modname else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package.split(".") if package else []
                    anchor = anchor[: len(anchor) - (node.level - 1)]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name
        for node in self.tree.body:
            self._collect_scope(node, prefix="", class_name=None)

    def _collect_scope(
        self, node: ast.AST, prefix: str, class_name: Optional[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            self.functions[qual] = FunctionInfo(self, node, qual, class_name)
        elif isinstance(node, ast.ClassDef):
            self.classes[node.name] = node
            if any(
                (chain := attr_chain(base)) and chain[-1] in ("Enum", "IntEnum")
                for base in node.bases
            ):
                members = tuple(
                    target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if isinstance(target, ast.Name) and not target.id.startswith("_")
                )
                self.enums[node.name] = members
            for stmt in node.body:
                self._collect_scope(
                    stmt, prefix=f"{node.name}.", class_name=node.name
                )


class CallSite:
    """One resolved call edge: caller function, callee fqn, AST node."""

    def __init__(
        self, caller: Optional[FunctionInfo], callee: str, node: ast.Call
    ) -> None:
        self.caller = caller
        self.callee = callee
        self.node = node


class Program:
    """The whole analyzed tree: modules, a symbol table, a call graph."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.modname: m for m in modules}
        #: fqn -> FunctionInfo for every function/method in the tree.
        self.functions: Dict[str, FunctionInfo] = {}
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self.functions[fn.fqn] = fn
        #: callee fqn -> call sites targeting it (resolved edges only).
        self.callers: Dict[str, List[CallSite]] = {}
        #: caller fqn -> callee fqns (the forward call graph).
        self.call_graph: Dict[str, Set[str]] = {}
        self._build_call_graph()

    # -- symbol resolution ---------------------------------------------
    def resolve_name(self, module: ModuleInfo, name: str) -> Optional[str]:
        """A bare name in ``module`` -> the fully qualified thing it binds."""
        if name in module.functions:
            return f"{module.modname}.{name}"
        if name in module.classes:
            return f"{module.modname}.{name}"
        return module.imports.get(name)

    def resolve_call(
        self,
        module: ModuleInfo,
        func: ast.expr,
        enclosing: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Best-effort fqn of a call target; ``None`` when unknown.

        A call to a class resolves to ``<class fqn>.__init__`` when that
        constructor exists in the tree, so rng arguments flow through
        object construction like any other call.
        """
        target: Optional[str] = None
        if isinstance(func, ast.Name):
            target = self.resolve_name(module, func.id)
        elif isinstance(func, ast.Attribute):
            chain = attr_chain(func)
            if chain is None:
                return None
            if chain[0] == "self" and enclosing is not None and enclosing.class_name:
                if len(chain) == 2:
                    target = f"{module.modname}.{enclosing.class_name}.{chain[1]}"
            else:
                base = self.resolve_name(module, chain[0])
                if base is not None:
                    target = ".".join([base, *chain[1:]])
        if target is None:
            return None
        ctor = f"{target}.__init__"
        if target not in self.functions and ctor in self.functions:
            return ctor
        return target

    # -- call graph ----------------------------------------------------
    def _build_call_graph(self) -> None:
        for mod in self.modules.values():
            for fn in mod.functions.values():
                edges = self.call_graph.setdefault(fn.fqn, set())
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve_call(mod, node.func, fn)
                    if callee is None or callee not in self.functions:
                        continue
                    edges.add(callee)
                    self.callers.setdefault(callee, []).append(
                        CallSite(fn, callee, node)
                    )


# --------------------------------------------------------------------------
# Findings and suppressions
# --------------------------------------------------------------------------

_LINE_DISABLE = re.compile(r"#\s*reproflow:\s*disable=([A-Z0-9,\s]+)")
_FILE_DISABLE = re.compile(r"^\s*#\s*reproflow:\s*disable-file=([A-Z0-9,\s]+)")


def _parse_codes(blob: str) -> Set[str]:
    return {c.strip() for c in blob.split(",") if c.strip()}


def collect_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """reprolint's suppression grammar, spelled ``# reproflow:``."""
    file_level: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        file_match = _FILE_DISABLE.search(text)
        if file_match:
            file_level |= _parse_codes(file_match.group(1))
            continue
        line_match = _LINE_DISABLE.search(text)
        if line_match:
            per_line.setdefault(lineno, set()).update(
                _parse_codes(line_match.group(1))
            )
    return file_level, per_line


def rf_finding(
    code: str, path: str, node: ast.AST, message: str, severity: str = "error"
) -> Finding:
    """A reproflow finding anchored at an AST node."""
    return Finding(
        code=code,
        severity=severity,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def build_program(
    paths: Sequence[str],
    exclude_dirs: FrozenSet[str] = DEFAULT_EXCLUDE_DIRS,
) -> Tuple[Program, List[Finding]]:
    """Parse every ``.py`` file under ``paths`` into one :class:`Program`.

    Unparseable files yield one RF000 finding each (mirroring
    reprolint's RL000 contract) and are excluded from the program —
    a syntax error in one module must never abort the whole analysis.
    """
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for file_path in iter_python_files(paths, exclude_dirs):
        try:
            with open(file_path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(
                Finding(
                    code="RF000",
                    severity="error",
                    path=file_path,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        module = parse_module(source, file_path)
        if isinstance(module, Finding):
            findings.append(module)
        else:
            modules.append(module)
    return Program(modules), findings


def parse_module(source: str, path: str) -> "ModuleInfo | Finding":
    """Parse one buffer; an unparseable buffer becomes an RF000 finding."""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError, RecursionError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        msg = getattr(exc, "msg", None) or str(exc)
        return Finding(
            code="RF000",
            severity="error",
            path=path,
            line=line,
            col=col,
            message=f"file does not parse: {msg}",
        )
    return ModuleInfo(path, source, tree)


def program_from_sources(sources: Dict[str, str]) -> Tuple[Program, List[Finding]]:
    """Build a program straight from ``{path: source}`` buffers (tests)."""
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in sorted(sources):
        module = parse_module(sources[path], path)
        if isinstance(module, Finding):
            findings.append(module)
        else:
            modules.append(module)
    return Program(modules), findings


def apply_suppressions(
    findings: Sequence[Finding], program: Program
) -> List[Finding]:
    """Drop findings suppressed by ``# reproflow:`` comments."""
    by_path: Dict[str, Tuple[Set[str], Dict[int, Set[str]]]] = {}
    for mod in program.modules.values():
        by_path[mod.path] = collect_suppressions(mod.source)
    kept: List[Finding] = []
    for finding in findings:
        file_level, per_line = by_path.get(finding.path, (set(), {}))
        if finding.code in file_level:
            continue
        if finding.code in per_line.get(finding.line, set()):
            continue
        kept.append(finding)
    return kept


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run all four whole-program passes and return sorted findings."""
    from tools.reproflow import machines, obscov, taint
    from tools.reproflow.tables import EPOCH_RULES, MACHINE_SPECS, TABLES_PATH

    program, findings = build_program(paths)
    findings.extend(taint.run(program))
    findings.extend(
        machines.run(program, MACHINE_SPECS, EPOCH_RULES, TABLES_PATH)
    )
    findings.extend(obscov.run(program))
    findings = apply_suppressions(findings, program)
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.code in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
