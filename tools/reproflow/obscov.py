"""Bidirectional observability-name coverage (RF005/RF006).

``repro.obs.names`` is the registered inventory of every span and
metric name. reprolint's RL005 proves the *forward* direction per file:
every emission uses a registered literal. This pass closes the loop
whole-program:

* **RF005** — a registered name (or dynamic-span prefix) that *nothing*
  in the tree emits. Dead inventory is worse than clutter: it reads as
  a promise ("this metric exists") that dashboards and golden tests can
  rely on, when the series never materializes.
* **RF006** — an emission whose literal (or dynamic prefix) is not
  registered. This is RL005's check re-proved at whole-program scope so
  the obs pass is self-contained when run on partial trees or fixtures.

A registered span name counts as emitted if a literal emission uses it
*or* a dynamic emission's prefix covers it (``"health." + state`` emits
the whole ``health.*`` family). Metric names have no prefix families and
must be emitted literally. If the names module is not part of the
analyzed tree (partial runs), the pass is silent — no inventory, no
judgment.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.engine import Finding
from tools.reproflow.engine import ModuleInfo, Program, rf_finding

#: The module holding the inventory, and the sets read out of it.
NAMES_MODULE = "repro.obs.names"
_SETS = {
    "SPAN_NAMES": "span",
    "SPAN_PREFIXES": "prefix",
    "METRIC_NAMES": "metric",
}

#: Emitting methods, mirroring reprolint RL005.
_METHODS = {
    "span": "span",
    "counter": "metric",
    "gauge": "metric",
    "histogram": "metric",
}


class Inventory:
    """The registered names with the line each literal sits on."""

    def __init__(self) -> None:
        self.path = ""
        #: kind ("span" | "prefix" | "metric") -> {name: lineno}.
        self.names: Dict[str, Dict[str, int]] = {
            "span": {},
            "prefix": {},
            "metric": {},
        }


def read_inventory(program: Program) -> Optional[Inventory]:
    module = program.modules.get(NAMES_MODULE)
    if module is None:
        return None
    inventory = Inventory()
    inventory.path = module.path
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        kinds = [
            _SETS[t.id]
            for t in node.targets
            if isinstance(t, ast.Name) and t.id in _SETS
        ]
        if not kinds:
            continue
        for constant in ast.walk(node.value):
            if isinstance(constant, ast.Constant) and isinstance(
                constant.value, str
            ):
                for kind in kinds:
                    inventory.names[kind][constant.value] = constant.lineno
    return inventory


class Emissions:
    """Every literal and dynamic-prefix emission in the tree."""

    def __init__(self) -> None:
        #: kind ("span" | "metric") -> {name: [(path, line), ...]}.
        self.literals: Dict[str, Dict[str, List[Tuple[str, int]]]] = {
            "span": {},
            "metric": {},
        }
        #: dynamic span prefixes actually used -> [(path, line), ...].
        self.prefixes: Dict[str, List[Tuple[str, int]]] = {}
        #: (kind, path, line, name) of every emission, for RF006.
        self.sites: List[Tuple[str, str, int, str, bool]] = []


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    return None


def _record(
    emissions: Emissions,
    module: ModuleInfo,
    node: ast.Call,
    arg: ast.expr,
    kind: str,
) -> None:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        emissions.literals[kind].setdefault(arg.value, []).append(
            (module.path, node.lineno)
        )
        emissions.sites.append(
            (kind, module.path, node.lineno, arg.value, False)
        )
    elif isinstance(arg, ast.IfExp):
        _record(emissions, module, node, arg.body, kind)
        _record(emissions, module, node, arg.orelse, kind)
    elif (
        kind == "span"
        and isinstance(arg, ast.BinOp)
        and isinstance(arg.op, ast.Add)
        and isinstance(arg.left, ast.Constant)
        and isinstance(arg.left.value, str)
    ):
        emissions.prefixes.setdefault(arg.left.value, []).append(
            (module.path, node.lineno)
        )
        emissions.sites.append(
            (kind, module.path, node.lineno, arg.left.value, True)
        )


def collect_emissions(program: Program) -> Emissions:
    emissions = Emissions()
    for modname in sorted(program.modules):
        if not modname.startswith("repro.") or modname == NAMES_MODULE:
            continue
        module = program.modules[modname]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            kind = _METHODS.get(node.func.attr)
            if kind is None:
                continue
            arg = _name_argument(node)
            if arg is not None:
                _record(emissions, module, node, arg, kind)
    return emissions


def run(program: Program) -> List[Finding]:
    inventory = read_inventory(program)
    if inventory is None:
        return []
    emissions = collect_emissions(program)
    findings: List[Finding] = []
    anchor = inventory.path

    def _at(lineno: int) -> ast.AST:
        node = ast.Pass()
        node.lineno = lineno  # type: ignore[attr-defined]
        node.col_offset = 0  # type: ignore[attr-defined]
        return node

    used_prefixes: Set[str] = set(emissions.prefixes)
    for name in sorted(inventory.names["span"]):
        lineno = inventory.names["span"][name]
        emitted = name in emissions.literals["span"] or any(
            name.startswith(prefix) for prefix in used_prefixes
        )
        if not emitted:
            findings.append(
                rf_finding(
                    "RF005",
                    anchor,
                    _at(lineno),
                    f"span name {name!r} is registered but never "
                    "emitted; remove it or add the emission "
                    "(# reproflow: disable=RF005 if reserved)",
                )
            )
    for prefix in sorted(inventory.names["prefix"]):
        lineno = inventory.names["prefix"][prefix]
        if prefix not in used_prefixes:
            findings.append(
                rf_finding(
                    "RF005",
                    anchor,
                    _at(lineno),
                    f"span prefix {prefix!r} is registered but no "
                    "dynamic emission uses it; remove it or add the "
                    "emission",
                )
            )
    for name in sorted(inventory.names["metric"]):
        lineno = inventory.names["metric"][name]
        if name not in emissions.literals["metric"]:
            findings.append(
                rf_finding(
                    "RF005",
                    anchor,
                    _at(lineno),
                    f"metric name {name!r} is registered but never "
                    "emitted; remove it or add the emission",
                )
            )
    for kind, path, lineno, name, is_prefix in emissions.sites:
        if is_prefix:
            registered = name in inventory.names["prefix"]
            label = f"span prefix {name!r}"
        else:
            registered = name in inventory.names[kind]
            label = f"{kind} name {name!r}"
        if not registered:
            findings.append(
                rf_finding(
                    "RF006",
                    path,
                    _at(lineno),
                    f"{label} is emitted but not registered in "
                    f"{NAMES_MODULE}; add it there (or fix the typo)",
                )
            )
    return findings
