"""State-machine extraction and model checking (RF003/RF004).

The runtime's two lifecycle protocols — the fleet-health machine in
:mod:`repro.runtime.health` and the epoch-fenced failover protocol in
:mod:`repro.runtime.failover` — carry guarantees that are stated in
prose ("no quarantine->active shortcut", "every takeover bumps the
epoch") and enforced dynamically by the R1-R6 invariant monitor. This
pass makes them *build-time* guarantees:

* :func:`check_table` model-checks a declared
  :class:`TransitionTable` on its own: endpoints exist, every state is
  reachable from the initial state, non-terminal states have a way out,
  no declared edge is also forbidden.
* :func:`extract_machine` recovers the transition relation a function
  actually implements from its AST — ``if state is Enum.A: ...
  next = Enum.B`` branches — and RF003 reports any mismatch against the
  declared table: an undeclared (or outright forbidden) edge in the
  code, a declared edge the code lost, a state the dispatch no longer
  handles.
* The :class:`EpochRule` check (RF004) requires every function that
  constructs a leadership transition to mint a fresh epoch first, which
  is the static form of R2's "applied epochs are monotonic".

Everything is deliberately syntactic: the extractor only trusts
``<expr> is/== Enum.MEMBER`` tests and ``<target> = Enum.MEMBER``
assignments, and anything else is invisible — which fails *loud* (a
declared edge goes missing) rather than silently passing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import Finding
from tools.reproflow.engine import Program, attr_chain, rf_finding


@dataclass(frozen=True)
class TransitionTable:
    """The declared transition relation of one state machine.

    ``states`` are enum member names; ``edges`` are the allowed
    state-changing transitions (self-loops are implicit and never
    declared); ``forbidden`` documents edges whose *absence* is a
    guarantee, so adding one to the code is an error even if someone
    also declares it; ``terminal`` states are allowed to have no
    outgoing edge.
    """

    machine: str
    states: Tuple[str, ...]
    initial: str
    edges: Tuple[Tuple[str, str], ...]
    forbidden: Tuple[Tuple[str, str], ...] = ()
    terminal: Tuple[str, ...] = ()


def check_table(table: TransitionTable) -> List[str]:
    """Model-check a declared table; an empty list means it is valid.

    Checks: non-empty unique states, known initial, edge/forbidden
    endpoints in the state set, no duplicate edges, no self-loops, no
    edge that is simultaneously declared and forbidden, every state
    reachable from the initial state, and every non-terminal state has
    at least one outgoing edge (exhaustiveness).
    """
    problems: List[str] = []
    if not table.states:
        return [f"{table.machine}: table declares no states"]
    if len(set(table.states)) != len(table.states):
        problems.append(f"{table.machine}: duplicate states declared")
    states = set(table.states)
    if table.initial not in states:
        problems.append(
            f"{table.machine}: initial state {table.initial!r} is not a "
            "declared state"
        )
    for name in table.terminal:
        if name not in states:
            problems.append(
                f"{table.machine}: terminal state {name!r} is not a "
                "declared state"
            )
    seen: Set[Tuple[str, str]] = set()
    for src, dst in table.edges:
        if src not in states or dst not in states:
            problems.append(
                f"{table.machine}: edge {src}->{dst} has an undeclared "
                "endpoint"
            )
        if src == dst:
            problems.append(
                f"{table.machine}: self-loop {src}->{dst} declared "
                "(self-loops are implicit)"
            )
        if (src, dst) in seen:
            problems.append(f"{table.machine}: duplicate edge {src}->{dst}")
        seen.add((src, dst))
    for src, dst in table.forbidden:
        if src not in states or dst not in states:
            problems.append(
                f"{table.machine}: forbidden edge {src}->{dst} has an "
                "undeclared endpoint"
            )
        if (src, dst) in seen:
            problems.append(
                f"{table.machine}: edge {src}->{dst} is both declared "
                "and forbidden"
            )
    if problems:
        return problems
    # Reachability and exhaustiveness only make sense on a well-formed
    # table, so they run after the structural checks pass.
    reachable = {table.initial}
    frontier = [table.initial]
    outgoing: Dict[str, int] = {s: 0 for s in table.states}
    adjacency: Dict[str, List[str]] = {s: [] for s in table.states}
    for src, dst in table.edges:
        adjacency[src].append(dst)
        outgoing[src] += 1
    while frontier:
        for dst in adjacency[frontier.pop()]:
            if dst not in reachable:
                reachable.add(dst)
                frontier.append(dst)
    for state in table.states:
        if state not in reachable:
            problems.append(
                f"{table.machine}: state {state} is unreachable from "
                f"{table.initial}"
            )
        if outgoing[state] == 0 and state not in table.terminal:
            problems.append(
                f"{table.machine}: non-terminal state {state} has no "
                "outgoing edge"
            )
    return problems


@dataclass(frozen=True)
class MachineSpec:
    """Where one declared machine lives in the code.

    ``function`` is the module-relative qualname of the dispatch
    function (``Class.method`` or a bare function name) whose body
    implements the transition relation over ``enum`` members.
    """

    module: str
    enum: str
    function: str
    table: TransitionTable


@dataclass(frozen=True)
class ExtractedMachine:
    """The transition relation a function's AST actually implements."""

    edges: Tuple[Tuple[str, str, int], ...]  # (src, dst, lineno)
    handled: Tuple[str, ...]  # states appearing as a dispatch branch
    function_line: int


def extract_machine(
    program: Program, spec: MachineSpec
) -> Optional[ExtractedMachine]:
    """Recover ``spec.function``'s transition relation from its AST.

    Returns ``None`` when the module, enum or function is not part of
    the analyzed program (the caller then skips the machine — partial
    analyses of a subtree must not fail on what they cannot see).
    """
    module = program.modules.get(spec.module)
    if module is None:
        return None
    members = module.enums.get(spec.enum)
    fn = module.functions.get(spec.function)
    if members is None or fn is None:
        return None
    member_set = set(members)

    def state_of(expr: ast.AST) -> Optional[str]:
        chain = attr_chain(expr)
        if (
            chain is not None
            and len(chain) >= 2
            and chain[-2] == spec.enum
            and chain[-1] in member_set
        ):
            return chain[-1]
        return None

    def test_state(test: ast.AST) -> Optional[str]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
        ):
            for side in (test.left, test.comparators[0]):
                state = state_of(side)
                if state is not None:
                    return state
        return None

    edges: List[Tuple[str, str, int]] = []
    handled: List[str] = []
    seen_edges: Set[Tuple[str, str]] = set()

    def visit(stmts: Sequence[ast.stmt], current: Optional[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                state = test_state(stmt.test)
                if state is not None:
                    if state not in handled:
                        handled.append(state)
                    visit(stmt.body, state)
                    visit(stmt.orelse, current)
                else:
                    visit(stmt.body, current)
                    visit(stmt.orelse, current)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Return)):
                value = stmt.value
                if value is None:
                    continue
                target = state_of(value)
                if target is not None and current is not None and (
                    target != current
                ):
                    if (current, target) not in seen_edges:
                        seen_edges.add((current, target))
                        edges.append((current, target, stmt.lineno))
            elif isinstance(stmt, (ast.For, ast.While)):
                visit(stmt.body, current)
                visit(stmt.orelse, current)
            elif isinstance(stmt, ast.With):
                visit(stmt.body, current)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, current)
                for handler in stmt.handlers:
                    visit(handler.body, current)
                visit(stmt.orelse, current)
                visit(stmt.finalbody, current)

    visit(fn.node.body, None)  # type: ignore[arg-type]
    return ExtractedMachine(
        edges=tuple(edges),
        handled=tuple(handled),
        function_line=fn.node.lineno,  # type: ignore[attr-defined]
    )


@dataclass(frozen=True)
class EpochRule:
    """Monotonic-epoch obligation on a leadership-transition factory.

    Every function in ``module`` that constructs a ``transition``
    object must call ``<receiver>.<bump>()`` earlier in its body: the
    bump method is the single place the next epoch is minted, so a
    construction site without one is a leadership change that reuses a
    stale epoch — the static shadow of runtime invariant R2.
    """

    machine: str
    module: str
    transition: str
    bump: str
    #: Constructions whose ``kind=`` keyword is one of these literals
    #: are exempt (none today; the hook exists for observer-only kinds).
    exempt_kinds: Tuple[str, ...] = ()


def _check_epoch_rule(program: Program, rule: EpochRule) -> List[Finding]:
    module = program.modules.get(rule.module)
    if module is None:
        return []
    findings: List[Finding] = []
    for fn in module.functions.values():
        constructions: List[ast.Call] = []
        bump_lines: List[int] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            if chain[-1] == rule.transition:
                kind = next(
                    (
                        kw.value.value
                        for kw in node.keywords
                        if kw.arg == "kind"
                        and isinstance(kw.value, ast.Constant)
                    ),
                    None,
                )
                if kind in rule.exempt_kinds:
                    continue
                constructions.append(node)
            elif chain[-1] == rule.bump and len(chain) > 1:
                bump_lines.append(node.lineno)
        for call in constructions:
            if not any(line <= call.lineno for line in bump_lines):
                findings.append(
                    rf_finding(
                        "RF004",
                        module.path,
                        call,
                        f"{rule.machine}: {fn.qualname} constructs "
                        f"{rule.transition} without first minting a new "
                        f"epoch via {rule.bump}() — leadership changes "
                        "must bump the epoch monotonically (R2)",
                    )
                )
    return findings


@dataclass
class MachineReport:
    """What the pass saw, for tests and the CLI's verbose mode."""

    checked: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)


def run(
    program: Program,
    specs: Sequence[MachineSpec],
    epoch_rules: Sequence[EpochRule],
    tables_path: str,
    report: Optional[MachineReport] = None,
) -> List[Finding]:
    """RF003/RF004 over every declared machine present in the program."""
    findings: List[Finding] = []
    for spec in specs:
        extracted = extract_machine(program, spec)
        if extracted is None:
            if report is not None:
                report.skipped.append(spec.table.machine)
            continue
        if report is not None:
            report.checked.append(spec.table.machine)
        module = program.modules[spec.module]
        table = spec.table
        for problem in check_table(table):
            findings.append(
                Finding(
                    code="RF003",
                    severity="error",
                    path=tables_path,
                    line=1,
                    col=0,
                    message=f"declared table is invalid: {problem}",
                )
            )
        declared = set(table.edges)
        forbidden = set(table.forbidden)
        implemented = {(src, dst) for src, dst, _ in extracted.edges}
        for src, dst, lineno in extracted.edges:
            if (src, dst) in forbidden:
                findings.append(
                    Finding(
                        code="RF003",
                        severity="error",
                        path=module.path,
                        line=lineno,
                        col=0,
                        message=(
                            f"{table.machine}: transition {src}->{dst} is "
                            "forbidden by the declared table (its absence "
                            "is a documented guarantee)"
                        ),
                    )
                )
            elif (src, dst) not in declared:
                findings.append(
                    Finding(
                        code="RF003",
                        severity="error",
                        path=module.path,
                        line=lineno,
                        col=0,
                        message=(
                            f"{table.machine}: transition {src}->{dst} is "
                            "implemented but not declared in the "
                            "transition table"
                        ),
                    )
                )
        for src, dst in sorted(declared - implemented):
            findings.append(
                Finding(
                    code="RF003",
                    severity="error",
                    path=module.path,
                    line=extracted.function_line,
                    col=0,
                    message=(
                        f"{table.machine}: declared transition {src}->{dst} "
                        f"is not implemented by {spec.function}"
                    ),
                )
            )
        handled = set(extracted.handled)
        for state in table.states:
            if state not in handled and state not in table.terminal:
                findings.append(
                    Finding(
                        code="RF003",
                        severity="error",
                        path=module.path,
                        line=extracted.function_line,
                        col=0,
                        message=(
                            f"{table.machine}: state {state} has no "
                            f"dispatch branch in {spec.function} "
                            "(non-exhaustive handling)"
                        ),
                    )
                )
    for rule in epoch_rules:
        findings.extend(_check_epoch_rule(program, rule))
    return findings
