"""Interprocedural RNG-provenance taint analysis (RF001/RF002).

The repo's determinism guarantee says every random draw comes from a
``numpy.random.Generator`` whose seed flows from the run config, and
the fault subsystem's "zero RNG when disabled" guarantee additionally
requires fault randomness to live on *its own* streams, never borrowed
from the simulation. reprolint checks the local symptoms (RL001/RL004);
this pass proves the global property:

* **RF001** — a draw site (``rng.normal()``, ``rng.integers()``, ...)
  whose stream provably includes an *unseeded* root: a bare
  ``default_rng()``, an argument-less bit generator (``PCG64()``), or a
  stream derived from one — across module boundaries, through function
  returns, parameters, ``self`` attributes and ``spawn()`` children.
* **RF002** — a live RNG stream crossing the ``repro.faults`` boundary
  in either direction: simulation/runtime code handing one of its
  streams into the fault subsystem (the compiled-schedule design exists
  precisely so this never happens), or a faults-owned stream escaping
  into simulation code.

Provenance is a *may* analysis over symbolic roots. Every value carries
two components: ``stream`` roots (the value may BE a generator with
these origins) and ``taint`` roots (the value was *derived* from such a
generator — e.g. ``int(rng.integers(...))``). Drawing moves stream to
taint; seeding a new generator from a tainted value inherits the parent
origins, which is how ``default_rng(int(rng.integers(...)))`` child
streams stay connected to their root. Symbolic roots (parameters,
call returns, attributes) resolve through the call graph to concrete
``seeded``/``unseeded`` creation sites; anything unresolvable resolves
to *nothing* and never produces a finding — the pass is conservative in
the quiet direction.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from tools.reprolint.engine import Finding
from tools.reproflow.engine import (
    BITGEN_NAMES,
    DRAW_METHODS,
    FunctionInfo,
    Program,
    attr_chain,
    rf_finding,
)

#: A provenance root. Concrete roots are ("seeded"|"unseeded", path,
#: line) creation sites; symbolic roots are ("param", fqn, name),
#: ("call", fqn) and ("attr", class_fqn, attr) and resolve through the
#: call graph.
Root = Tuple[str, ...]

_EMPTY: FrozenSet[Root] = frozenset()


class Prov:
    """One value's provenance: stream roots and derivation taint."""

    __slots__ = ("stream", "taint")

    def __init__(
        self, stream: FrozenSet[Root] = _EMPTY, taint: FrozenSet[Root] = _EMPTY
    ) -> None:
        self.stream = stream
        self.taint = taint

    def __or__(self, other: "Prov") -> "Prov":
        return Prov(self.stream | other.stream, self.taint | other.taint)

    @property
    def any_roots(self) -> FrozenSet[Root]:
        return self.stream | self.taint


_NONE = Prov()


class Summary:
    """What the local pass learned about one function."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        #: Potential draw sites: (call node, receiver stream roots).
        self.draws: List[Tuple[ast.Call, FrozenSet[Root]]] = []
        #: Stream roots of returned values.
        self.returns: Set[Root] = set()
        #: Resolved calls passing a (possible) stream as an argument:
        #: (callee fqn, param name, stream roots, call node).
        self.rng_args: List[Tuple[str, str, FrozenSet[Root], ast.Call]] = []
        #: Resolved call sites (callee fqn, node) for boundary checks.
        self.calls: List[Tuple[str, ast.Call]] = []


class _FunctionAnalyzer:
    """Single forward pass over one function body (union semantics)."""

    def __init__(self, program: Program, fn: FunctionInfo,
                 attr_writes: Dict[Tuple[str, str], Set[Root]]) -> None:
        self.program = program
        self.fn = fn
        self.module = fn.module
        self.attr_writes = attr_writes
        self.summary = Summary(fn)
        self.env: Dict[str, Prov] = {}
        for param in fn.params:
            self.env[param.arg] = Prov(
                stream=frozenset({("param", fn.fqn, param.arg)})
            )

    # -- driver --------------------------------------------------------
    def analyze(self) -> Summary:
        self._visit_body(self.fn.node.body)  # type: ignore[attr-defined]
        return self.summary

    def _visit_body(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            prov = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, prov)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.summary.returns |= self._eval(stmt.value).stream
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                prov = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, prov)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are analyzed as their own functions
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _bind(self, target: ast.expr, prov: Prov) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, _NONE) | prov
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "self"
                and self.fn.class_name is not None
            ):
                key = (f"{self.module.modname}.{self.fn.class_name}", chain[1])
                self.attr_writes.setdefault(key, set()).update(prov.stream)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, prov)

    # -- expression provenance -----------------------------------------
    def _eval(self, expr: Optional[ast.expr]) -> Prov:
        if expr is None or isinstance(expr, ast.Constant):
            return _NONE
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _NONE)
        if isinstance(expr, ast.Attribute):
            chain = attr_chain(expr)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "self"
                and self.fn.class_name is not None
            ):
                cls = f"{self.module.modname}.{self.fn.class_name}"
                return Prov(stream=frozenset({("attr", cls, chain[1])}))
            base = self._eval(expr.value)
            # An attribute of a stream-ish value is a derivation, not
            # itself a stream (rng.bit_generator is the one exception
            # nobody draws from directly).
            return Prov(taint=base.any_roots)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            out = _NONE
            for value in expr.values:
                out = out | self._eval(value)
            return out
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return Prov(taint=left.any_roots | right.any_roots)
        if isinstance(expr, ast.UnaryOp):
            return Prov(taint=self._eval(expr.operand).any_roots)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return _NONE
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            return self._eval(expr.value)  # spawn(n)[i] keeps provenance
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = _NONE
            for element in expr.elts:
                out = out | self._eval(element)
            return out
        if isinstance(expr, ast.Dict):
            out = _NONE
            for value in expr.values:
                if value is not None:
                    out = out | self._eval(value)
            return out
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.Lambda)):
            return _NONE  # comprehension scopes are out of model
        if isinstance(expr, ast.JoinedStr):
            return _NONE
        return _NONE

    def _eval_call(self, call: ast.Call) -> Prov:
        chain = attr_chain(call.func)
        arg_provs = [self._eval(arg) for arg in call.args]
        kw_provs = {
            kw.arg: self._eval(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        if chain is not None:
            last = chain[-1]
            if last == "default_rng" or last in BITGEN_NAMES:
                return self._seeding(call, arg_provs, kw_provs)
            if last == "Generator" and len(chain) <= 3:
                out = _NONE
                for prov in arg_provs:
                    out = out | prov
                for prov in kw_provs.values():
                    out = out | prov
                return Prov(stream=out.any_roots)
            if last == "spawn" and isinstance(call.func, ast.Attribute):
                receiver = self._eval(call.func.value)
                return Prov(stream=receiver.stream)
            if last in DRAW_METHODS and isinstance(call.func, ast.Attribute):
                receiver = self._eval(call.func.value)
                if receiver.stream:
                    self.summary.draws.append((call, receiver.stream))
                    # The drawn value is derived from the stream.
                    return Prov(taint=receiver.stream)
        callee = self.program.resolve_call(self.module, call.func, self.fn)
        if callee is not None and callee in self.program.functions:
            self.summary.calls.append((callee, call))
            params = [p.arg for p in self.program.functions[callee].params]
            for index, prov in enumerate(arg_provs):
                if prov.stream and index < len(params):
                    self.summary.rng_args.append(
                        (callee, params[index], prov.stream, call)
                    )
            for name, prov in kw_provs.items():
                if prov.stream and name in params:
                    self.summary.rng_args.append(
                        (callee, name, prov.stream, call)
                    )
            return Prov(stream=frozenset({("call", callee)}))
        # Unresolved call: provenance flows through (int(), float(), ...).
        out = _NONE
        for prov in arg_provs:
            out = out | prov
        for prov in kw_provs.values():
            out = out | prov
        return Prov(taint=out.any_roots)

    def _seeding(
        self,
        call: ast.Call,
        arg_provs: List[Prov],
        kw_provs: Dict[str, Prov],
    ) -> Prov:
        """A generator/bit-generator construction: seeded, unseeded or
        derived from the provenance of whatever seeds it."""
        unseeded = not call.args and not call.keywords
        if (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None
            and not call.keywords
        ):
            unseeded = True
        if unseeded:
            return Prov(
                stream=frozenset(
                    {("unseeded", self.module.path, call.lineno)}
                )
            )
        inherited: Set[Root] = set()
        for prov in arg_provs:
            inherited |= prov.any_roots
        for prov in kw_provs.values():
            inherited |= prov.any_roots
        if inherited:
            return Prov(stream=frozenset(inherited))
        return Prov(
            stream=frozenset({("seeded", self.module.path, call.lineno)})
        )


class TaintAnalysis:
    """Whole-program fixpoint over every function's local summary."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.attr_writes: Dict[Tuple[str, str], Set[Root]] = {}
        self.summaries: Dict[str, Summary] = {}
        for fqn, fn in program.functions.items():
            self.summaries[fqn] = _FunctionAnalyzer(
                program, fn, self.attr_writes
            ).analyze()
        self._cache: Dict[Root, FrozenSet[Root]] = {}

    # -- symbolic-root resolution --------------------------------------
    def concrete(self, roots: Iterable[Root]) -> FrozenSet[Root]:
        """Resolve symbolic roots to seeded/unseeded creation sites."""
        out: Set[Root] = set()
        for root in roots:
            out |= self._concrete_one(root, set())
        return frozenset(out)

    def _concrete_one(self, root: Root, stack: Set[Root]) -> FrozenSet[Root]:
        if root[0] in ("seeded", "unseeded"):
            return frozenset({root})
        cached = self._cache.get(root)
        if cached is not None:
            return cached
        if root in stack:
            return _EMPTY  # recursion: resolve cycles to nothing
        stack.add(root)
        out: Set[Root] = set()
        if root[0] == "call":
            summary = self.summaries.get(root[1])
            if summary is not None:
                for sub in summary.returns:
                    out |= self._concrete_one(sub, stack)
        elif root[0] == "param":
            fqn, name = root[1], root[2]
            for summary in self.summaries.values():
                for callee, param, stream, _node in summary.rng_args:
                    if callee == fqn and param == name:
                        for sub in stream:
                            out |= self._concrete_one(sub, stack)
        elif root[0] == "attr":
            for sub in self.attr_writes.get((root[1], root[2]), set()):
                out |= self._concrete_one(sub, stack)
        stack.discard(root)
        self._cache[root] = frozenset(out)
        return self._cache[root]


def _faults_domain(modname: str) -> bool:
    return modname == "repro.faults" or modname.startswith("repro.faults.")


def _sim_domain(modname: str) -> bool:
    return modname.startswith("repro.") and not _faults_domain(modname)


def run(program: Program) -> List[Finding]:
    """RF001 + RF002 over the whole program."""
    analysis = TaintAnalysis(program)
    findings: List[Finding] = []
    for fqn in sorted(analysis.summaries):
        summary = analysis.summaries[fqn]
        module = summary.fn.module
        for call, stream in summary.draws:
            resolved = analysis.concrete(stream)
            origins = sorted(
                (path, line) for kind, path, line in resolved
                if kind == "unseeded"
            )
            if origins:
                path, line = origins[0]
                findings.append(
                    rf_finding(
                        "RF001",
                        module.path,
                        call,
                        "draw consumes an RNG stream with no seeded "
                        f"root (stream created unseeded at {path}:{line}); "
                        "seed it from the run config",
                    )
                )
        # -- RF002: streams crossing the repro.faults boundary ----------
        caller_in_faults = _faults_domain(module.modname)
        caller_in_sim = _sim_domain(module.modname)
        for callee, param, stream, node in summary.rng_args:
            callee_mod = callee.rsplit(".", 2)[0] if "." in callee else callee
            callee_fn = program.functions.get(callee)
            if callee_fn is not None:
                callee_mod = callee_fn.module.modname
            if not analysis.concrete(stream):
                continue
            if caller_in_sim and _faults_domain(callee_mod):
                findings.append(
                    rf_finding(
                        "RF002",
                        module.path,
                        node,
                        "simulation/runtime RNG stream passed into the "
                        f"fault subsystem ({callee} parameter "
                        f"{param!r}); fault randomness must live on its "
                        "own streams (zero-RNG-when-disabled guarantee)",
                    )
                )
            elif caller_in_faults and _sim_domain(callee_mod):
                findings.append(
                    rf_finding(
                        "RF002",
                        module.path,
                        node,
                        "fault-subsystem RNG stream passed into "
                        f"simulation/runtime code ({callee} parameter "
                        f"{param!r}); fault streams must never alias "
                        "simulation streams",
                    )
                )
        for callee, node in summary.calls:
            callee_fn = program.functions.get(callee)
            if callee_fn is None:
                continue
            callee_mod = callee_fn.module.modname
            crossing = (
                (caller_in_sim and _faults_domain(callee_mod))
                or (caller_in_faults and _sim_domain(callee_mod))
            )
            if not crossing:
                continue
            returned = analysis.concrete(
                analysis.summaries[callee].returns
            )
            if returned:
                direction = (
                    "escapes the fault subsystem into simulation code"
                    if _faults_domain(callee_mod)
                    else "is handed from simulation code to the fault "
                    "subsystem caller"
                )
                findings.append(
                    rf_finding(
                        "RF002",
                        module.path,
                        node,
                        f"RNG stream returned by {callee} {direction}; "
                        "the fault and simulation stream domains must "
                        "stay disjoint",
                    )
                )
    return findings
