"""Minimal SARIF 2.1.0 rendering for reproflow findings.

Just enough of the schema for GitHub code scanning to annotate PRs:
one run, one tool driver with the rule catalog, one result per finding
with a physical location. Severities map ``error`` -> ``error`` and
everything else -> ``warning``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from tools.reprolint.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    findings: Sequence[Finding], rules: Dict[str, Dict[str, str]]
) -> str:
    """``rules`` maps code -> {"summary": ..., "rationale": ...}."""
    used = sorted({f.code for f in findings} | set(rules))
    driver_rules: List[dict] = []
    for code in used:
        info = rules.get(code, {})
        driver_rules.append(
            {
                "id": code,
                "shortDescription": {
                    "text": info.get("summary", code)
                },
                "fullDescription": {
                    "text": info.get("rationale", info.get("summary", code))
                },
            }
        )
    rule_index = {code: i for i, code in enumerate(used)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reproflow",
                        "informationUri": (
                            "docs/static-analysis.md"
                        ),
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
