"""reproflow: whole-program static analysis for this repo.

Four passes over one shared program model (see ``engine``): parse +
call graph (RF000), interprocedural RNG-provenance taint (RF001/RF002),
state-machine extraction + model checking against declared transition
tables (RF003/RF004), and bidirectional obs-name coverage
(RF005/RF006). Run it with ``python -m tools.reproflow`` or
``repro flow``; rules and workflow are documented in
``docs/static-analysis.md``.
"""
