"""``python -m tools.reproflow`` entry point."""

import sys

from tools.reproflow.cli import main

if __name__ == "__main__":
    sys.exit(main())
