"""Command-line front end: ``python -m tools.reproflow [paths...]``.

Runs all four whole-program passes (parse/RF000, RNG-provenance taint
RF001/RF002, state-machine model checking RF003/RF004, bidirectional
obs coverage RF005/RF006) and ratchets the result against the
checked-in baseline.

Exit codes: 0 — no *new* error-severity findings vs the baseline;
1 — at least one new error (or a baseline failure); 2 — bad
invocation. Baselined findings are reported but never fatal; stale
baseline entries are reported so the file gets pruned.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from tools.reproflow.baseline import (
    load_baseline,
    ratchet,
    write_baseline,
)
from tools.reproflow.engine import analyze_paths
from tools.reproflow.sarif import render_sarif

#: The RF rule catalog (docs/static-analysis.md has the long form).
RULES: Dict[str, Dict[str, str]] = {
    "RF000": {
        "summary": "file does not parse; it is excluded from analysis",
        "rationale": (
            "A syntax error in one module must never abort the whole "
            "run — the file gets one finding and the program model is "
            "built from everything else."
        ),
    },
    "RF001": {
        "summary": (
            "RNG draw whose stream has an unseeded root (interprocedural)"
        ),
        "rationale": (
            "Byte-identical same-seed runs require every Generator to "
            "flow from an explicitly seeded root. reprolint RL004 "
            "catches bare default_rng() per file; RF001 follows streams "
            "across returns, parameters, attributes and spawn() to the "
            "draw sites they actually feed."
        ),
    },
    "RF002": {
        "summary": "RNG stream crosses the repro.faults boundary",
        "rationale": (
            "The zero-RNG-when-disabled guarantee holds because fault "
            "randomness lives on its own streams (the fault model "
            "compiles from an integer seed). A simulation stream handed "
            "into repro.faults — or a faults stream escaping — silently "
            "couples the two draw sequences."
        ),
    },
    "RF003": {
        "summary": (
            "state machine disagrees with its declared transition table"
        ),
        "rationale": (
            "Lifecycle edges are a reviewable contract "
            "(tools/reproflow/tables.py). RF003 fires on forbidden "
            "edges implemented (e.g. QUARANTINED->ACTIVE), undeclared "
            "edges, declared-but-unimplemented edges, unhandled states, "
            "and tables that fail model checking (unreachable states, "
            "dead non-terminal states)."
        ),
    },
    "RF004": {
        "summary": "transition constructed without a prior epoch bump",
        "rationale": (
            "Epoch fencing only works if every takeover/handback path "
            "mints a fresh epoch. RF004 is the static form of runtime "
            "invariant R2: each FailoverTransition construction must be "
            "preceded by self._bump() in the same function."
        ),
    },
    "RF005": {
        "summary": "registered obs name/prefix is never emitted",
        "rationale": (
            "Dead inventory in repro.obs.names reads as a promise that "
            "a series exists when it never materializes. RL005 proves "
            "emissions are registered; RF005 proves registrations are "
            "emitted — together the inventory is exact."
        ),
    },
    "RF006": {
        "summary": "emission uses an unregistered obs name/prefix",
        "rationale": (
            "Whole-program restatement of RL005 so the obs pass is "
            "self-contained on partial trees and fixtures."
        ),
    },
}

DEFAULT_BASELINE = os.path.join("tools", "reproflow", "baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reproflow",
        description=(
            "Whole-program analyzer: RNG-provenance taint, state-machine "
            "model checking, bidirectional obs coverage (rules "
            "RF000-RF006; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tools"],
        help="files or directories to analyze (default: src tools)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a single JSON document",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="also write findings as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--select", metavar="RFxxx", action="append", default=None,
        help="keep only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE,
        help=f"baseline file for the ratchet (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: every finding counts as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    return "\n".join(
        f"{code} [error] {RULES[code]['summary']}" for code in sorted(RULES)
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.select:
        unknown = sorted(set(args.select) - set(RULES))
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")

    findings = analyze_paths(args.paths, select=args.select)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"reproflow: wrote {len(findings)} finding(s) to "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return 0

    entries = []
    if not args.no_baseline:
        try:
            entries = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"reproflow: {exc}", file=sys.stderr)
            return 1
    new, baselined, stale = ratchet(findings, entries)
    new_errors = [f for f in new if f.severity == "error"]

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(findings, RULES))

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "new": [f.to_dict() for f in new],
                    "baselined": [f.to_dict() for f in baselined],
                    "stale_baseline": stale,
                    "errors": len(new_errors),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        for finding in baselined:
            print(f"{finding.format()} [baselined]")
        for entry in stale:
            print(
                "reproflow: stale baseline entry "
                f"{entry['code']} {entry['path']}: {entry['message']} "
                "(run --write-baseline to prune)",
                file=sys.stderr,
            )
        if findings:
            print(
                f"reproflow: {len(findings)} finding(s) "
                f"({len(new)} new, {len(baselined)} baselined)",
                file=sys.stderr,
            )
        else:
            print("reproflow: clean", file=sys.stderr)
    return 1 if new_errors else 0
