"""The declared transition tables the machine pass checks code against.

This module is the single source of truth for which lifecycle edges are
*allowed* to exist in the runtime. Adding a transition to
``repro.runtime.health`` (or removing one) without updating the table
here is an RF003 error — which is the point: lifecycle changes become a
reviewable diff in one place, exactly like ``repro.obs.names`` does for
the observability surface.

Table format (see ``docs/static-analysis.md#declared-transition-tables``):

* ``states`` — the enum member names of the machine.
* ``initial`` — where every instance starts.
* ``edges`` — the allowed state-*changing* transitions. Self-loops are
  implicit (staying put is always legal) and never declared.
* ``forbidden`` — edges whose absence is a documented guarantee. The
  model checker rejects a table that declares a forbidden edge, and the
  extraction pass reports code that implements one even if someone also
  adds it to ``edges``.
* ``terminal`` — states allowed to have no outgoing edge.

``EPOCH_RULES`` is the companion obligation for epoch-fenced protocols:
every function constructing the named transition object must call the
bump method first (RF004).
"""

from __future__ import annotations

from typing import Tuple

from tools.reproflow.machines import EpochRule, MachineSpec, TransitionTable

#: Where findings about the declared tables themselves are anchored.
TABLES_PATH = "tools/reproflow/tables.py"

#: The fleet-health lifecycle (PR 8): readmission must pass through
#: PROBATION — QUARANTINED->ACTIVE is the shortcut the watchdog's
#: hysteresis exists to prevent, so it is declared forbidden.
HEALTH_TABLE = TransitionTable(
    machine="fleet-health",
    states=("ACTIVE", "SUSPECT", "QUARANTINED", "PROBATION"),
    initial="ACTIVE",
    edges=(
        ("ACTIVE", "SUSPECT"),
        ("SUSPECT", "ACTIVE"),
        ("SUSPECT", "QUARANTINED"),
        ("QUARANTINED", "PROBATION"),
        ("PROBATION", "QUARANTINED"),
        ("PROBATION", "ACTIVE"),
    ),
    forbidden=(("QUARANTINED", "ACTIVE"),),
)

MACHINE_SPECS: Tuple[MachineSpec, ...] = (
    MachineSpec(
        module="repro.runtime.health",
        enum="HealthState",
        function="FleetHealthWatchdog.observe",
        table=HEALTH_TABLE,
    ),
)

#: Epoch fencing (PR 7): every leadership change — takeover, handback,
#: split takeover, reunite — must mint its epoch through
#: ``FailoverManager._bump`` before constructing the transition.
EPOCH_RULES: Tuple[EpochRule, ...] = (
    EpochRule(
        machine="failover-epochs",
        module="repro.runtime.failover",
        transition="FailoverTransition",
        bump="_bump",
    ),
)
