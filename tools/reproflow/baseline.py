"""Findings baseline with a no-new-findings ratchet.

The baseline is a checked-in JSON file listing findings that existed
when the analyzer landed. CI compares the current run against it:

* a finding **not** in the baseline is *new* and fails the build,
* a finding in the baseline is reported as *baselined* (visible, never
  fatal),
* a baseline entry no match produces is *stale* — the debt was paid and
  the entry should be deleted (``--write-baseline`` does it).

Fingerprints deliberately exclude line numbers so unrelated edits that
shift a baselined finding up or down the file do not break the build;
``(code, path, message)`` is stable enough in practice because messages
embed the offending name. The checked-in baseline starts — and should
stay — empty.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from tools.reprolint.engine import Finding

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.code, finding.path, finding.message)


def load_baseline(path: str) -> List[Dict[str, str]]:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return []
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a reproflow baseline file")
    entries = payload["findings"]
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or not all(
            key in entry for key in ("code", "path", "message")
        ):
            raise ValueError(
                f"{path}: baseline entries need code/path/message keys"
            )
    return entries


def ratchet(
    findings: Sequence[Finding], entries: Sequence[Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Split findings into (new, baselined) and report stale entries."""
    known = {(e["code"], e["path"], e["message"]) for e in entries}
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen = set()
    for finding in findings:
        print_ = fingerprint(finding)
        if print_ in known:
            baselined.append(finding)
            seen.add(print_)
        else:
            new.append(finding)
    stale = [
        e
        for e in entries
        if (e["code"], e["path"], e["message"]) not in seen
    ]
    return new, baselined, stale


def render_baseline(findings: Sequence[Finding]) -> str:
    entries = sorted(
        (
            {"code": f.code, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["code"], e["message"]),
    )
    return (
        json.dumps(
            {"version": BASELINE_VERSION, "findings": entries}, indent=2
        )
        + "\n"
    )


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_baseline(findings))
