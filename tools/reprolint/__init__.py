"""reprolint: AST-based determinism & invariant checker for this repo.

The reproduction's headline guarantees — same-seed runs are
bit-identical, faulted runs are deterministic, and checkpoint/resume
reproduces stdout byte-for-byte — rest on coding invariants that no
general-purpose linter knows about: every RNG must be an explicitly
seeded :class:`numpy.random.Generator`, no wall-clock or OS entropy may
reach the simulation, wire/checkpoint dataclasses must be frozen, and
metric/span names must come from the registered constants module.

``reprolint`` machine-checks those invariants with nothing but the
stdlib ``ast`` module. See ``docs/static-analysis.md`` for the rule
catalog and rationale.

Usage::

    python -m tools.reprolint src tests          # human output
    python -m tools.reprolint --json src tests   # machine output
    repro lint                                   # CLI subcommand

Programmatic use::

    from tools.reprolint import Config, lint_paths, lint_source
    findings = lint_paths(["src", "tests"], Config())
"""

from tools.reprolint.engine import (
    Config,
    Finding,
    NameSets,
    lint_paths,
    lint_source,
)
from tools.reprolint.rules import ALL_RULES, Rule, rule_by_code

__all__ = [
    "ALL_RULES",
    "Config",
    "Finding",
    "NameSets",
    "Rule",
    "lint_paths",
    "lint_source",
    "rule_by_code",
]
