"""Command-line front end: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 — no error-severity findings; 1 — at least one error;
2 — bad invocation. ``--json`` emits a machine-readable findings list
(one JSON document) for CI annotation tooling; the default output is
one ``path:line:col: RLxxx [severity] message`` line per finding.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
import json
import sys
from typing import List, Optional

from tools.reprolint.engine import Config, lint_paths
from tools.reprolint.rules import ALL_RULES, rules_for


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST-based determinism & invariant checker for this repo "
            "(rules RL001-RL007; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a single JSON document",
    )
    parser.add_argument(
        "--select", metavar="RLxxx", action="append", default=None,
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--warn", metavar="RLxxx", action="append", default=None,
        help="demote a rule to warning severity: its findings are "
             "reported but never fail the run (repeatable)",
    )
    parser.add_argument(
        "--names-module", metavar="PATH", default=None,
        help="override the registered obs-names module RL005 reads",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code} [{rule.severity}] {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    config = Config()
    if args.warn:
        config = replace(config, demote_to_warning=frozenset(args.warn))
    if args.names_module:
        config = replace(config, rl005_names_module=args.names_module)
    rules = None
    if args.select:
        try:
            rules = rules_for(args.select)
        except KeyError as exc:
            parser.error(str(exc))

    findings = lint_paths(args.paths, config, rules)
    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "errors": len(errors),
                    "warnings": len(warnings),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(
                f"reprolint: {len(findings)} finding(s) "
                f"({len(errors)} error(s), {len(warnings)} warning(s))",
                file=sys.stderr,
            )
        else:
            print("reprolint: clean", file=sys.stderr)
    return 1 if errors else 0
