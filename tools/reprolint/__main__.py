"""Module entry point: ``python -m tools.reprolint [paths...]``."""

from tools.reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
