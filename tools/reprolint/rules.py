"""The RL rule catalog.

Each rule is a small class with a ``code``, a one-line ``summary``, a
``rationale`` tying it to the determinism/resume guarantees it protects,
a default ``severity``, and a ``check`` that yields
:class:`~tools.reprolint.engine.Finding` objects for one parsed file.
``applies_to`` gates the rule on the config's path scope, so adding a
rule never requires touching the engine.

Suppress a finding with ``# reprolint: disable=RLxxx`` on the offending
line (see ``docs/static-analysis.md`` before reaching for that).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from tools.reprolint.engine import (
    SEEDED_NP_RANDOM_ATTRS,
    Context,
    Finding,
    in_scope,
)


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    code: str = "RL000"
    summary: str = ""
    rationale: str = ""
    severity: str = "error"

    def applies_to(self, ctx: Context) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            code=self.code,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-trivial receivers."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class NoGlobalStateRNG(Rule):
    """RL001: all randomness must come from explicitly seeded Generators."""

    code = "RL001"
    summary = (
        "no global-state RNG: np.random.<fn> (other than Generator "
        "construction) and the stdlib random module are banned"
    )
    rationale = (
        "Global RNG state is shared across the process: one stray draw "
        "reorders every later draw, so two same-seed runs diverge and "
        "checkpoint/resume stops being bit-identical. Randomness must "
        "flow through np.random.Generator objects seeded from the run "
        "config."
    )

    def applies_to(self, ctx: Context) -> bool:
        return in_scope(ctx.path, ctx.config.rl001_scope)

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            node,
                            ctx,
                            "stdlib 'random' uses hidden global state; "
                            "use a seeded np.random.Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        node,
                        ctx,
                        "stdlib 'random' uses hidden global state; "
                        "use a seeded np.random.Generator instead",
                    )
            elif isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    chain is not None
                    and len(chain) == 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                    and chain[2] not in SEEDED_NP_RANDOM_ATTRS
                ):
                    yield self.finding(
                        node,
                        ctx,
                        f"np.random.{chain[2]} draws from numpy's global "
                        "RNG state; use a seeded np.random.Generator",
                    )


#: (attribute-chain suffix, category, human label) checked by RL002.
_RL002_SOURCES: Tuple[Tuple[Tuple[str, ...], str, str], ...] = (
    (("time", "time"), "timestamp", "time.time()"),
    (("time", "time_ns"), "timestamp", "time.time_ns()"),
    (("datetime", "now"), "timestamp", "datetime.now()"),
    (("datetime", "utcnow"), "timestamp", "datetime.utcnow()"),
    (("date", "today"), "timestamp", "date.today()"),
    (("time", "perf_counter"), "wallclock", "time.perf_counter()"),
    (("time", "perf_counter_ns"), "wallclock", "time.perf_counter_ns()"),
    (("time", "monotonic"), "wallclock", "time.monotonic()"),
    (("time", "monotonic_ns"), "wallclock", "time.monotonic_ns()"),
    (("uuid", "uuid1"), "entropy", "uuid.uuid1()"),
    (("uuid", "uuid4"), "entropy", "uuid.uuid4()"),
    (("os", "urandom"), "entropy", "os.urandom()"),
)


class NoNondeterminismSources(Rule):
    """RL002: wall clocks, timestamps and OS entropy stay out of the sim."""

    code = "RL002"
    summary = (
        "no nondeterminism sources (time.time, datetime.now, uuid4, "
        "os.urandom, env-dependent hash) outside the allowlist"
    )
    rationale = (
        "Anything read from the host — clocks, UUIDs, OS entropy, "
        "PYTHONHASHSEED-dependent hash() — differs between two runs of "
        "the same seed, silently breaking the MVS latency comparisons "
        "and the byte-for-byte resume guarantee. Wall-clock reads are "
        "allowed only where the code measures the host itself (tracer "
        "span durations, frame wall time); timestamps only at the "
        "CLI/exporter edge."
    )

    def applies_to(self, ctx: Context) -> bool:
        return in_scope(ctx.path, ctx.config.rl002_scope)

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        cfg = ctx.config
        timestamps_ok = ctx.path in cfg.rl002_timestamp_allow
        wallclock_ok = ctx.path in cfg.rl002_wallclock_allow
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        yield self.finding(
                            node, ctx, "'secrets' is an OS entropy source"
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "secrets":
                yield self.finding(
                    node, ctx, "'secrets' is an OS entropy source"
                )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "hash":
                    yield self.finding(
                        node,
                        ctx,
                        "builtin hash() is salted by PYTHONHASHSEED and "
                        "differs across processes; use a stable key "
                        "(tuple/sorted fields) or hashlib",
                    )
                    continue
                chain = _attr_chain(node.func)
                if chain is None or len(chain) < 2:
                    continue
                suffix = chain[-2:]
                for pattern, category, label in _RL002_SOURCES:
                    if suffix != pattern:
                        continue
                    if category == "timestamp" and timestamps_ok:
                        continue
                    if category == "wallclock" and wallclock_ok:
                        continue
                    yield self.finding(
                        node,
                        ctx,
                        f"{label} is a nondeterminism source; derive the "
                        "value from the modeled clock / run config "
                        "(see docs/static-analysis.md#rl002)",
                    )


class FrozenWireDataclasses(Rule):
    """RL003: wire/checkpoint dataclasses must be ``frozen=True``."""

    code = "RL003"
    summary = (
        "every dataclass in the wire/checkpoint modules must be "
        "declared frozen=True"
    )
    rationale = (
        "Messages and checkpoints are replicated and replayed (failover "
        "warm standby, crash/resume). A mutable instance lets one node "
        "alter state another node already hashed or replicated, so the "
        "resumed run no longer matches the uninterrupted one."
    )

    def applies_to(self, ctx: Context) -> bool:
        return ctx.path in ctx.config.rl003_modules

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                if self._is_unfrozen_dataclass(deco):
                    yield self.finding(
                        node,
                        ctx,
                        f"dataclass {node.name!r} must be frozen=True in "
                        "this module (wire/checkpoint state is "
                        "replicated; mutation breaks resume)",
                    )

    @staticmethod
    def _is_unfrozen_dataclass(deco: ast.AST) -> bool:
        if isinstance(deco, ast.Call):
            target = deco.func
            frozen = any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            )
        else:
            target = deco
            frozen = False
        chain = _attr_chain(target)
        is_dataclass = chain is not None and chain[-1] == "dataclass"
        return is_dataclass and not frozen


class NoUnseededDefaultRng(Rule):
    """RL004: ``default_rng()`` must always receive a seed."""

    code = "RL004"
    summary = "np.random.default_rng() must never be called with no seed"
    rationale = (
        "A no-argument default_rng() pulls its seed from OS entropy, so "
        "the stream differs every process — the one thing the "
        "reproduction must never do. Seeds must flow from the run "
        "config or function arguments."
    )

    def applies_to(self, ctx: Context) -> bool:
        return in_scope(ctx.path, ctx.config.rl004_scope)

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain[-1] != "default_rng":
                continue
            unseeded = not node.args and not node.keywords
            seeded_none = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
                and not node.keywords
            )
            if unseeded or seeded_none:
                yield self.finding(
                    node,
                    ctx,
                    "default_rng() without a seed draws from OS entropy; "
                    "pass a seed derived from the run config",
                )


class RegisteredObsNames(Rule):
    """RL005: span/metric names are literals from ``repro.obs.names``."""

    code = "RL005"
    summary = (
        "metric and span names must be string literals registered in "
        "repro.obs.names"
    )
    rationale = (
        "The registry creates a series on first use, so a typo'd name "
        "never errors — it silently splits one metric into two and the "
        "golden span-tree/metrics tests chase ghosts. Keeping every "
        "name in one constants module makes the inventory diffable and "
        "typos machine-caught."
    )

    _METHODS = {
        "span": "span",
        "counter": "metric",
        "gauge": "metric",
        "histogram": "metric",
    }

    def applies_to(self, ctx: Context) -> bool:
        return in_scope(ctx.path, ctx.config.rl005_scope)

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        names = ctx.name_sets
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            kind = self._METHODS.get(node.func.attr)
            if kind is None:
                continue
            arg = self._name_argument(node)
            if arg is None:
                continue  # zero-arg call: not a name-taking overload
            registered = (
                names.span_names if kind == "span" else names.metric_names
            )
            for finding in self._check_name(node, arg, kind, registered,
                                            names.span_prefixes, ctx):
                yield finding

    @staticmethod
    def _name_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "name":
                return kw.value
        return None

    def _check_name(
        self,
        node: ast.Call,
        arg: ast.expr,
        kind: str,
        registered: frozenset,
        prefixes: frozenset,
        ctx: Context,
    ) -> Iterator[Finding]:
        module = ctx.config.rl005_names_module
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in registered:
                yield self.finding(
                    node,
                    ctx,
                    f"{kind} name {arg.value!r} is not registered in "
                    f"{module}; add it there (or fix the typo)",
                )
        elif isinstance(arg, ast.IfExp):
            for branch in (arg.body, arg.orelse):
                for finding in self._check_name(
                    node, branch, kind, registered, prefixes, ctx
                ):
                    yield finding
        elif (
            isinstance(arg, ast.BinOp)
            and isinstance(arg.op, ast.Add)
            and isinstance(arg.left, ast.Constant)
            and isinstance(arg.left.value, str)
        ):
            if arg.left.value not in prefixes:
                yield self.finding(
                    node,
                    ctx,
                    f"dynamic {kind} name prefix {arg.left.value!r} is "
                    f"not a registered SPAN_PREFIXES entry in {module}",
                )
        else:
            yield self.finding(
                node,
                ctx,
                f"{kind} name must be a string literal (or a registered "
                "'prefix' + suffix) so the linter can verify it against "
                f"{module}",
            )


class NoMutableDefaults(Rule):
    """RL006: no mutable default arguments."""

    code = "RL006"
    summary = "no mutable default arguments (list/dict/set literals or calls)"
    rationale = (
        "A mutable default is one object shared by every call: state "
        "leaks across frames, runs and tests, which is both a classic "
        "bug and a determinism hazard (the leaked state depends on call "
        "history, not the seed)."
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                      "OrderedDict", "Counter", "deque"}

    def applies_to(self, ctx: Context) -> bool:
        return in_scope(ctx.path, ctx.config.rl006_scope)

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._is_mutable(default):
                    label = (
                        "<lambda>"
                        if isinstance(node, ast.Lambda)
                        else node.name
                    )
                    yield self.finding(
                        default,
                        ctx,
                        f"mutable default argument in {label!r}; use "
                        "None and create the value inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return chain is not None and chain[-1] in self._MUTABLE_CALLS
        return False


class ConfinedProcessParallelism(Rule):
    """RL007: worker processes are spawned only by the parallel harness."""

    code = "RL007"
    summary = (
        "ProcessPoolExecutor / multiprocessing / os.fork are confined to "
        "repro.experiments.parallel"
    )
    rationale = (
        "Process fan-out multiplies every determinism hazard: forked "
        "children inherit RNG state and open file handles, and ad-hoc "
        "pools bypass the harness's spawn context, ordered merging and "
        "per-worker cache/registry isolation that make the parallel "
        "report byte-identical to the serial one. All process-level "
        "parallelism must go through the one audited module."
    )

    def applies_to(self, ctx: Context) -> bool:
        return (
            in_scope(ctx.path, ctx.config.rl007_scope)
            and ctx.path not in ctx.config.rl007_allow
        )

    def check(self, tree: ast.AST, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing" or alias.name.startswith(
                        "multiprocessing."
                    ):
                        yield self.finding(
                            node,
                            ctx,
                            "import of 'multiprocessing' outside the "
                            "parallel harness; route process fan-out "
                            "through repro.experiments.parallel",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "multiprocessing" or module.startswith(
                    "multiprocessing."
                ):
                    yield self.finding(
                        node,
                        ctx,
                        "import from 'multiprocessing' outside the "
                        "parallel harness; route process fan-out "
                        "through repro.experiments.parallel",
                    )
                elif module == "concurrent.futures" and any(
                    alias.name == "ProcessPoolExecutor"
                    for alias in node.names
                ):
                    yield self.finding(
                        node,
                        ctx,
                        "ProcessPoolExecutor outside the parallel "
                        "harness; route process fan-out through "
                        "repro.experiments.parallel",
                    )
            elif isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    chain is not None
                    and len(chain) > 1
                    and chain[-1] == "ProcessPoolExecutor"
                ):
                    yield self.finding(
                        node,
                        ctx,
                        "ProcessPoolExecutor outside the parallel "
                        "harness; route process fan-out through "
                        "repro.experiments.parallel",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is not None and chain[-2:] in (
                    ("os", "fork"),
                    ("os", "forkpty"),
                ):
                    yield self.finding(
                        node,
                        ctx,
                        "os.fork() outside the parallel harness; forked "
                        "children inherit RNG and handle state",
                    )


#: Every rule, in code order. The CLI, docs and tests iterate this.
ALL_RULES: Tuple[Rule, ...] = (
    NoGlobalStateRNG(),
    NoNondeterminismSources(),
    FrozenWireDataclasses(),
    NoUnseededDefaultRng(),
    RegisteredObsNames(),
    NoMutableDefaults(),
    ConfinedProcessParallelism(),
)


def rule_by_code(code: str) -> Rule:
    """Look up a rule instance by its RLxxx code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(code)


def rules_for(codes: Sequence[str]) -> Tuple[Rule, ...]:
    """Subset of :data:`ALL_RULES` matching ``codes`` (order preserved)."""
    wanted = set(codes)
    unknown = wanted - {r.code for r in ALL_RULES}
    if unknown:
        raise KeyError(f"unknown rule codes: {sorted(unknown)}")
    return tuple(r for r in ALL_RULES if r.code in wanted)
