"""Core machinery of reprolint: config, file walking, suppressions.

The engine is deliberately dumb: it parses each file once with the
stdlib :mod:`ast` module, hands the tree to every rule whose scope
covers the file, and filters the returned findings through suppression
comments. Rules live in :mod:`tools.reprolint.rules`; everything
repo-specific a rule needs (scopes, allowlists, the registered names
module) is carried by :class:`Config` so tests can substitute their own.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
import os
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Directory names never descended into when walking lint targets.
#: ``fixtures`` is excluded because the linter's own test fixtures are
#: *intentional* rule violations — data, not code.
DEFAULT_EXCLUDE_DIRS = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "build", "fixtures"}
)

#: ``np.random.<attr>`` accesses that are *not* global-state RNG use.
SEEDED_NP_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@dataclass(frozen=True)
class NameSets:
    """The registered span/metric names RL005 validates against."""

    span_names: FrozenSet[str] = frozenset()
    metric_names: FrozenSet[str] = frozenset()
    span_prefixes: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Config:
    """Everything repo-specific the rules consult.

    Paths are POSIX-style, relative to the repository root (lint is run
    from the repo root). A *scope* is a tuple of path prefixes the rule
    applies under; an *allowlist* is a tuple of exact file paths exempt
    from (part of) a rule.
    """

    exclude_dirs: FrozenSet[str] = DEFAULT_EXCLUDE_DIRS

    #: RL001 — no global-state RNG anywhere in the simulation or tests.
    rl001_scope: Tuple[str, ...] = ("src/repro", "tests")

    #: RL002 — no nondeterminism sources in the simulation.
    rl002_scope: Tuple[str, ...] = ("src/repro",)
    #: Files allowed to *timestamp* (CLI entry, exporter timestamp fields).
    rl002_timestamp_allow: Tuple[str, ...] = (
        "src/repro/cli.py",
        "src/repro/obs/export.py",
    )
    #: Files allowed to read the monotonic wall clock: they measure the
    #: host (span durations, frame wall time), which the determinism
    #: guarantee explicitly excludes.
    rl002_wallclock_allow: Tuple[str, ...] = (
        "src/repro/obs/trace.py",
        "src/repro/experiments/runner.py",
        "src/repro/experiments/parallel.py",
        "src/repro/bench.py",
    )

    #: RL003 — modules whose dataclasses must all be ``frozen=True``.
    rl003_modules: Tuple[str, ...] = (
        "src/repro/net/messages.py",
        "src/repro/net/heartbeat.py",
        "src/repro/net/envelope.py",
        "src/repro/checkpoint.py",
        "src/repro/faults/spec.py",
    )

    #: RL004 — seeds must flow from config/args, never be defaulted.
    rl004_scope: Tuple[str, ...] = ("src/repro", "tests")

    #: RL005 — metric/span names must be registered literals.
    rl005_scope: Tuple[str, ...] = ("src/repro",)
    #: The single registered constants module RL005 reads.
    rl005_names_module: str = "src/repro/obs/names.py"
    #: Preloaded name sets (tests); when ``None`` the module is parsed.
    rl005_names: Optional[NameSets] = None

    #: RL006 — no mutable default arguments.
    rl006_scope: Tuple[str, ...] = ("src/repro", "tests")

    #: RL007 — process-level parallelism is confined to the harness.
    rl007_scope: Tuple[str, ...] = ("src/repro",)
    #: The one module allowed to spawn worker processes.
    rl007_allow: Tuple[str, ...] = (
        "src/repro/experiments/parallel.py",
    )

    #: Rule codes demoted to ``warning`` severity (never fail the run).
    demote_to_warning: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Context:
    """Per-file state shared by all rules: path, config, name sets."""

    def __init__(self, path: str, config: Config) -> None:
        self.path = path
        self.config = config

    _names_cache: Dict[str, NameSets] = {}

    @property
    def name_sets(self) -> NameSets:
        if self.config.rl005_names is not None:
            return self.config.rl005_names
        module = self.config.rl005_names_module
        cached = Context._names_cache.get(module)
        if cached is None:
            cached = load_name_sets(module)
            Context._names_cache[module] = cached
        return cached


def load_name_sets(path: str) -> NameSets:
    """Parse the registered constants module into :class:`NameSets`.

    The module is read syntactically (never imported): every string
    constant inside the ``SPAN_NAMES`` / ``METRIC_NAMES`` /
    ``SPAN_PREFIXES`` assignments is collected. A missing or malformed
    module yields empty sets — RL005 then reports every name, which
    makes the breakage loud rather than silent.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return NameSets()
    found: Dict[str, FrozenSet[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id in ("SPAN_NAMES", "METRIC_NAMES", "SPAN_PREFIXES"):
            found[target.id] = frozenset(_string_constants(node.value))
    return NameSets(
        span_names=found.get("SPAN_NAMES", frozenset()),
        metric_names=found.get("METRIC_NAMES", frozenset()),
        span_prefixes=found.get("SPAN_PREFIXES", frozenset()),
    )


def _string_constants(node: ast.AST) -> Iterable[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def in_scope(path: str, prefixes: Sequence[str]) -> bool:
    """Is POSIX-relative ``path`` under one of the scope ``prefixes``?"""
    return any(
        path == p or path.startswith(p.rstrip("/") + "/") for p in prefixes
    )


# --------------------------------------------------------------------------
# Suppression comments
# --------------------------------------------------------------------------

_LINE_DISABLE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")
_FILE_DISABLE = re.compile(r"^\s*#\s*reprolint:\s*disable-file=([A-Z0-9,\s]+)")


def _parse_codes(blob: str) -> Set[str]:
    return {c.strip() for c in blob.split(",") if c.strip()}


def collect_suppressions(
    source: str,
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """File-level and per-line suppressed rule codes.

    ``# reprolint: disable=RL001[,RL002]`` on a line suppresses those
    codes for findings reported on that line; a standalone
    ``# reprolint: disable-file=RL001`` comment suppresses the codes for
    the whole file.
    """
    file_level: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        file_match = _FILE_DISABLE.search(text)
        if file_match:
            file_level |= _parse_codes(file_match.group(1))
            continue
        line_match = _LINE_DISABLE.search(text)
        if line_match:
            per_line.setdefault(lineno, set()).update(
                _parse_codes(line_match.group(1))
            )
    return file_level, per_line


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str,
    config: Optional[Config] = None,
    rules: Optional[Sequence[object]] = None,
) -> List[Finding]:
    """Lint one buffer. ``path`` anchors scope matching and reporting —
    it does not need to exist on disk, which is how the fixture tests
    place a buffer "inside" ``src/repro``.
    """
    from tools.reprolint.rules import ALL_RULES

    config = config or Config()
    active = list(ALL_RULES if rules is None else rules)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError, RecursionError) as exc:
        # One finding per broken file, never an aborted run. ValueError
        # covers null bytes on older interpreters; RecursionError covers
        # pathological nesting blowing the parser's stack.
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        msg = getattr(exc, "msg", None) or str(exc)
        return [
            Finding(
                code="RL000",
                severity="error",
                path=path,
                line=line,
                col=col,
                message=f"file does not parse: {msg}",
            )
        ]
    ctx = Context(path, config)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):  # type: ignore[attr-defined]
            continue
        for finding in rule.check(tree, ctx):  # type: ignore[attr-defined]
            if finding.code in config.demote_to_warning:
                finding = Finding(
                    code=finding.code,
                    severity="warning",
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                )
            findings.append(finding)
    file_level, per_line = collect_suppressions(source)
    findings = [
        f
        for f in findings
        if f.code not in file_level and f.code not in per_line.get(f.line, set())
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(
    paths: Sequence[str], exclude_dirs: FrozenSet[str]
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for target in paths:
        if os.path.isfile(target):
            out.append(target)
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if d not in exclude_dirs
            )
            out.extend(
                os.path.join(dirpath, name)
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return sorted({p.replace(os.sep, "/") for p in out})


def lint_paths(
    paths: Sequence[str],
    config: Optional[Config] = None,
    rules: Optional[Sequence[object]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    config = config or Config()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths, config.exclude_dirs):
        try:
            with open(file_path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(
                Finding(
                    code="RL000",
                    severity="error",
                    path=file_path,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, file_path, config, rules))
    return findings
