"""Scheduling horizon trade-off (paper Figure 14).

Sweeps the horizon length T — the number of frames between full-frame key
frames — and prints how BALB's object recall and slowest-camera latency
move in opposite directions, with an ASCII chart of both series.

Run:  python examples/horizon_tradeoff.py
"""

from repro.experiments import sweep_horizons
from repro.runtime import PipelineConfig, train_models
from repro.scenarios import get_scenario

HORIZONS = (2, 5, 10, 20, 30)


def bar(value: float, scale: float, width: int = 40) -> str:
    n = int(round(value / scale * width))
    return "#" * max(0, min(width, n))


def main() -> None:
    scenario = get_scenario("S1", seed=0)
    config = PipelineConfig(
        policy="balb", warmup_s=30.0, train_duration_s=120.0, seed=0
    )
    print("Training association models once (shared across the sweep)...")
    trained = train_models(scenario, config)

    print(f"Sweeping horizon T over {HORIZONS} on {scenario.name}...\n")
    rows = sweep_horizons(
        "S1", horizons=HORIZONS, frames_per_point=250, seed=0, trained=trained
    )

    max_latency = max(r.slowest_camera_ms for r in rows)
    print(f"{'T':>3s} {'recall':>8s} {'latency ms':>11s}")
    for row in rows:
        print(
            f"{row.horizon:3d} {row.recall:8.3f} "
            f"{row.slowest_camera_ms:11.1f}  "
            f"{bar(row.slowest_camera_ms, max_latency)}"
        )

    knee = min(
        rows,
        key=lambda r: (r.slowest_camera_ms / max_latency) + (1.0 - r.recall),
    )
    print(
        f"\nBest combined trade-off at T = {knee.horizon} "
        "(the paper picks T = 10): longer horizons amortize the key-frame\n"
        "cost over more frames, but tracking drift and unseen arrivals\n"
        "erode recall."
    )


if __name__ == "__main__":
    main()
