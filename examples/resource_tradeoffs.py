"""Alternative resource formulations (paper Section V) in one tour.

The paper's limitations section sketches three alternative objectives
beyond min-max latency; this example runs all three on the same profiled
Jetson fleet:

1. **Bandwidth** (centralized processing): upload only the minimum set of
   camera views covering every object.
2. **Energy**: minimize fleet energy subject to a real-time deadline.
3. **Quality**: trade latency balance against view quality with the
   ``alpha`` knob.

Run:  python examples/resource_tradeoffs.py
"""

import numpy as np

from repro.core import (
    all_cameras_upload_mbps,
    assignment_energy_mj,
    balb_central,
    energy_aware_assignment,
    quality_aware_central,
    system_latency,
    upload_plan_for_instance,
)
from repro.experiments import jetson_fleet_profiles, random_instance


def main() -> None:
    profiles = jetson_fleet_profiles(seed=0)
    rng = np.random.default_rng(11)
    instance = random_instance(profiles, n_objects=25, rng=rng)
    names = {cam: p.device_name for cam, p in instance.profiles.items()}
    print(f"Fleet: {', '.join(names[c] for c in sorted(names))}")
    print(f"Objects: {len(instance.objects)} "
          f"({sum(1 for o in instance.objects if len(o.coverage) > 1)} "
          "multi-view)\n")

    # 1. Bandwidth: minimum view cover vs streaming everything.
    frame_sizes = {cam: (1280, 704) for cam in profiles}
    plan = upload_plan_for_instance(instance, frame_sizes)
    print("1) Centralized offload (min view cover)")
    print(f"   cameras uploading : {plan.n_cameras}/{len(profiles)} "
          f"{plan.cameras}")
    print(f"   uplink bandwidth  : {plan.total_upload_mbps:.1f} Mbps vs "
          f"{all_cameras_upload_mbps(frame_sizes):.1f} Mbps streaming all\n")

    # 2. Energy under a deadline.
    deadline = 100.0  # one frame interval at 10 FPS
    balb = balb_central(instance, include_full_frame=False)
    energy_assignment = energy_aware_assignment(instance, deadline)
    print(f"2) Energy-aware scheduling (deadline {deadline:.0f} ms)")
    for label, assignment in (
        ("BALB (latency-only)", balb.assignment),
        ("energy-aware", energy_assignment),
    ):
        print(
            f"   {label:22s}: {assignment_energy_mj(instance, assignment):7.0f} mJ "
            f"at {system_latency(instance, assignment):6.1f} ms max latency"
        )
    print()

    # 3. Quality-efficiency trade-off.
    qualities = {}
    for obj in instance.objects:
        for cam in obj.coverage:
            qualities[(obj.key, cam)] = float(rng.uniform(0.2, 0.95))
    print("3) Quality-efficiency trade-off (alpha sweep)")
    print(f"   {'alpha':>5s} {'mean quality':>13s} {'max latency ms':>15s}")
    for alpha in (0.0, 0.3, 0.7, 1.0):
        result = quality_aware_central(
            instance, qualities, alpha=alpha, include_full_frame=False
        )
        print(
            f"   {alpha:5.1f} {result.mean_quality:13.3f} "
            f"{max(result.camera_latencies.values()):15.1f}"
        )
    print(
        "\nHigher alpha buys better views at the cost of latency balance —\n"
        "the trade-off the paper's Section V leaves open, made executable."
    )


if __name__ == "__main__":
    main()
