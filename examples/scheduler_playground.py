"""Scheduler playground: the MVS problem and BALB at the instance level.

Works directly with the scheduling core — no world simulation. Builds MVS
instances over a profiled Jetson fleet, runs the central-stage BALB
algorithm next to its ablated variants and the exact branch-and-bound
optimum, and demonstrates the NP-hardness reduction from bin packing.

Run:  python examples/scheduler_playground.py
"""

import numpy as np

from repro.core import balb_central, bins_fit, independent_latencies, is_feasible, mvs_from_bin_packing, optimal_assignment, system_latency
from repro.experiments import jetson_fleet_profiles, random_instance


def demo_balb_vs_optimal() -> None:
    print("=== BALB vs exact optimum (small instances) ===")
    fleet = jetson_fleet_profiles(seed=0)
    profiles = {k: fleet[k] for k in (0, 2, 4)}  # AGX, TX2, Nano
    rng = np.random.default_rng(42)
    for trial in range(5):
        instance = random_instance(
            profiles, n_objects=10, rng=rng,
            multi_view_prob=0.8, size_choices=(128, 256),
        )
        result = balb_central(instance, include_full_frame=False)
        assert is_feasible(instance, result.assignment)
        balb_lat = system_latency(instance, result.assignment)
        _, opt_lat = optimal_assignment(instance, include_full_frame=False)
        print(
            f"  instance {trial}: BALB {balb_lat:7.1f} ms, "
            f"optimal {opt_lat:7.1f} ms, ratio {balb_lat / opt_lat:.3f}"
        )
    print()


def demo_latency_balancing() -> None:
    print("=== Latency balancing on a heterogeneous fleet ===")
    profiles = jetson_fleet_profiles(seed=0)
    rng = np.random.default_rng(7)
    instance = random_instance(profiles, n_objects=35, rng=rng)
    result = balb_central(instance)
    print("  per-camera latency (incl. key-frame cost) under BALB:")
    for cam, latency in sorted(result.camera_latencies.items()):
        name = instance.profiles[cam].device_name
        print(f"    cam{cam} ({name:18s}): {latency:7.1f} ms")
    print(f"  camera priority order (fastest first): {result.priority_order}")
    redundant = independent_latencies(instance)
    print(
        "  max latency — BALB: "
        f"{max(result.camera_latencies.values()):.1f} ms vs "
        "independent tracking: "
        f"{max(redundant.values()) + max(p.t_full for p in instance.profiles.values()):.1f} ms"
    )
    print()


def demo_hardness_reduction() -> None:
    print("=== Claim 1: bin packing reduces to MVS ===")
    items = [4.0, 3.5, 3.5, 3.0, 2.0, 2.0]
    for n_bins in (2, 3):
        instance = mvs_from_bin_packing(items, n_bins)
        _, makespan = optimal_assignment(instance, include_full_frame=False)
        print(
            f"  {len(items)} items into {n_bins} bins: "
            f"optimal MVS makespan {makespan:.1f} "
            f"(=> fits capacity {makespan:.1f}: "
            f"{bins_fit(items, n_bins, makespan)}, "
            f"capacity {makespan - 0.5:.1f}: "
            f"{bins_fit(items, n_bins, makespan - 0.5)})"
        )
    print()


def main() -> None:
    demo_balb_vs_optimal()
    demo_latency_balancing()
    demo_hardness_reduction()


if __name__ == "__main__":
    main()
