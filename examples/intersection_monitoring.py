"""Intersection monitoring: the paper's motivating deployment (S1).

Five heterogeneous smart cameras (2x AGX Xavier, 2x TX2, 1x Nano fisheye)
watch a signalized intersection. This example:

1. shows the temporal workload variability that motivates dynamic
   scheduling (paper Figure 2),
2. compares all five scheduling policies on recall and latency
   (paper Figures 12/13),
3. prints the per-camera latency profile under BALB, showing how the
   latency-balanced assignment protects the weakest device.

Run:  python examples/intersection_monitoring.py
"""

from repro.experiments import workload_trace
from repro.runtime import PipelineConfig, run_policy, speedup_vs, train_models
from repro.scenarios import get_scenario


def show_workload_variability() -> None:
    print("=== Workload variability (Figure 2) ===")
    trace = workload_trace(
        scenario=get_scenario("S1", seed=0),
        duration_s=120.0,
        sample_interval_s=2.0,
        warmup_s=30.0,
    )
    means = trace.mean_per_camera()
    cvs = trace.coefficient_of_variation()
    for cam in sorted(means):
        bar = "#" * int(means[cam])
        print(f"  cam{cam}: mean {means[cam]:5.1f} objs  CV {cvs[cam]:.2f}  {bar}")
    cams = sorted(means)
    flips = trace.relative_workload_swings(cams[0], cams[-1])
    print(f"  heavier-camera flips between cam{cams[0]} and cam{cams[-1]}: "
          f"{flips:.0%} of samples\n")


def compare_policies() -> None:
    print("=== Scheduling policies (Figures 12/13) ===")
    scenario = get_scenario("S1", seed=0)
    config = PipelineConfig(
        policy="balb",
        horizon=10,
        n_horizons=25,
        warmup_s=30.0,
        train_duration_s=120.0,
    )
    trained = train_models(scenario, config)
    runs = {}
    for policy in ("full", "balb-ind", "sp", "balb-cen", "balb"):
        runs[policy] = run_policy(scenario, policy, config, trained)

    print(f"  {'policy':10s} {'recall':>8s} {'slowest-cam ms':>15s} "
          f"{'speedup':>8s}")
    for policy, result in runs.items():
        print(
            f"  {policy:10s} {result.object_recall():8.3f} "
            f"{result.mean_slowest_latency():15.1f} "
            f"{speedup_vs(runs['full'], result):8.2f}x"
        )

    print("\n=== Per-camera mean inference latency under BALB ===")
    device_names = {
        cam_id: profile.device_name
        for cam_id, profile in trained.profiles.items()
    }
    for cam, ms in sorted(runs["balb"].per_camera_mean_latency().items()):
        print(f"  cam{cam} ({device_names[cam]:18s}): {ms:7.1f} ms")
    print()
    print(
        "Note how the Nano (slowest device, widest view) carries almost no\n"
        "regular-frame load: BALB's central stage initializes its latency\n"
        "with the large full-frame time, steering shared objects to the\n"
        "Xaviers, and the priority masks keep new objects off it too."
    )


def main() -> None:
    show_workload_variability()
    compare_policies()


if __name__ == "__main__":
    main()
