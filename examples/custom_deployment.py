"""Build a custom deployment from scratch with the public API.

Models a warehouse chokepoint: a single corridor monitored by three
cameras — two cheap Nanos at the ends and one TX2 overlooking the middle —
with pedestrian-dominated traffic. Demonstrates every extension point a
downstream user needs: routes, spawn processes, camera placement, device
fleet, and the pipeline.

Run:  python examples/custom_deployment.py
"""


from repro.cameras import Camera, CameraIntrinsics, CameraPose
from repro.devices import JETSON_NANO, JETSON_TX2
from repro.runtime import PipelineConfig, run_policy, speedup_vs, train_models
from repro.scenarios import Scenario, heading_towards
from repro.world import (
    MotionParams,
    ObjectClass,
    Route,
    SpawnSpec,
    WorldConfig,
    rush_hour_modulator,
)

INTRINSICS = CameraIntrinsics(focal_px=900.0, image_width=1280, image_height=704)


def corridor_world(seed: int) -> WorldConfig:
    """A 90 m corridor walked in both directions, with forklift traffic."""
    eastbound = Route(0, ((-45.0, -1.0), (45.0, -1.0)), name="eastbound")
    westbound = Route(1, ((45.0, 1.0), (-45.0, 1.0)), name="westbound")
    mix = {ObjectClass.PEDESTRIAN: 0.8, ObjectClass.CAR: 0.2}  # CAR ~ forklift
    specs = [
        SpawnSpec(
            eastbound,
            rate_per_s=0.10,
            class_mix=mix,
            rate_modulator=rush_hour_modulator(period_s=90.0, low=0.3, high=2.0),
        ),
        SpawnSpec(
            westbound,
            rate_per_s=0.08,
            class_mix=mix,
            rate_modulator=rush_hour_modulator(period_s=70.0, low=0.3, high=1.8),
        ),
    ]
    return WorldConfig(
        routes=[eastbound, westbound],
        spawn_specs=specs,
        motion=MotionParams(min_gap=1.0),
        seed=seed,
    )


def corridor_camera(camera_id: int, x: float, look_at_x: float) -> Camera:
    yaw = heading_towards((x, -12.0), (look_at_x, 0.0))
    return Camera(
        camera_id=camera_id,
        pose=CameraPose(x=x, y=-12.0, z=4.0, yaw=yaw, pitch_down=0.22),
        intrinsics=INTRINSICS,
        max_range=55.0,
    )


def build_scenario() -> Scenario:
    return Scenario(
        name="warehouse",
        description="3-camera warehouse corridor chokepoint",
        world_factory=corridor_world,
        cameras=(
            corridor_camera(0, -30.0, -5.0),
            corridor_camera(1, 0.0, 0.0),
            corridor_camera(2, 30.0, 5.0),
        ),
        devices=(JETSON_NANO, JETSON_TX2, JETSON_NANO),
        fps=10.0,
    )


def main() -> None:
    scenario = build_scenario()
    world, rig = scenario.build(seed=1)
    world.run(60.0, scenario.frame_interval)
    overlap = rig.fov_overlap_matrix()
    print(f"Scenario: {scenario.name} — {scenario.description}")
    print("Pairwise ground-FoV overlap fractions:")
    for i in rig.camera_ids:
        for j in rig.camera_ids:
            if i < j:
                print(f"  cam{i} / cam{j}: {rig.overlap_fraction(i, j):.2f}")

    config = PipelineConfig(
        policy="balb",
        horizon=10,
        n_horizons=25,
        warmup_s=30.0,
        train_duration_s=120.0,
        seed=1,
    )
    trained = train_models(scenario, config)
    full = run_policy(scenario, "full", config, trained)
    balb = run_policy(scenario, "balb", config, trained)

    print()
    print(f"{'policy':8s} {'recall':>8s} {'slowest-cam ms':>15s}")
    for result in (full, balb):
        print(
            f"{result.policy:8s} {result.object_recall():8.3f} "
            f"{result.mean_slowest_latency():15.1f}"
        )
    print("\nBALB speedup on the custom deployment: "
          f"{speedup_vs(full, balb):.2f}x")


if __name__ == "__main__":
    main()
