"""Occlusion-robust redundant assignment (paper Section V extension).

The paper's single-camera assignment has a known failure mode: "an object
assigned exclusively to a camera might later get occluded by another
object making it invisible to that camera, whereas it might remain
visible to another camera". This example turns on inter-object occlusion
in the simulator and compares BALB tracking each object from k=1 vs k=2
cameras on the busy fork scenario (S3), where trucks and buses regularly
mask the cars behind them.

Also renders the scene map so the camera geometry is visible.

Run:  python examples/occlusion_redundancy.py
"""

from repro.runtime import PipelineConfig, run_policy, train_models
from repro.scenarios import get_scenario
from repro.viz import render_ground_plane


def main() -> None:
    scenario = get_scenario("S3", seed=0)
    world, rig = scenario.build(seed=123)
    world.run(80.0, scenario.frame_interval)
    print(f"Scenario {scenario.name}: {scenario.description}\n")
    print(render_ground_plane(world, rig))
    print()

    base = PipelineConfig(
        policy="balb",
        horizon=10,
        n_horizons=25,
        warmup_s=30.0,
        train_duration_s=120.0,
    )
    print("Training shared association models...")
    trained = train_models(scenario, base)

    results = {}
    for k in (1, 2):
        config = PipelineConfig(
            **{**base.__dict__, "occlusion": True, "redundancy": k}
        )
        print(f"Running BALB with occlusion on, k={k} cameras per object...")
        results[k] = run_policy(scenario, "balb", config, trained)

    print()
    print(f"{'k':>2s} {'recall':>8s} {'slowest-cam ms':>15s}")
    for k, result in results.items():
        print(
            f"{k:2d} {result.object_recall():8.3f} "
            f"{result.mean_slowest_latency():15.1f}"
        )
    gain = results[2].object_recall() - results[1].object_recall()
    cost = (
        results[2].mean_slowest_latency() / results[1].mean_slowest_latency()
    )
    print(
        f"\nRedundancy recovered {gain * 100:+.1f} recall points for a "
        f"{cost:.2f}x latency cost — the trade the paper's limitations "
        "section anticipates."
    )


if __name__ == "__main__":
    main()
