"""Quickstart: run BALB on the sparse residential scenario (S2).

Trains the cross-camera association models on a simulated training
segment, profiles the two devices (a Jetson AGX Xavier and a Jetson Nano),
then replays a test segment under the full BALB scheduler and under
full-frame inspection, and prints the headline comparison.

Run:  python examples/quickstart.py
"""

from repro.runtime import PipelineConfig, run_policy, speedup_vs, train_models
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("S2", seed=0)
    config = PipelineConfig(
        policy="balb",
        horizon=10,  # one full-frame key frame every 10 frames (1 s @ 10 FPS)
        n_horizons=30,
        warmup_s=30.0,
        train_duration_s=120.0,
    )

    print(f"Scenario: {scenario.name} — {scenario.description}")
    print("Training association models and profiling devices...")
    trained = train_models(scenario, config)
    for cam_id, profile in sorted(trained.profiles.items()):
        print(
            f"  camera {cam_id}: {profile.device_name}, "
            f"full-frame {profile.t_full:.0f} ms"
        )

    print("Running full-frame baseline...")
    full = run_policy(scenario, "full", config, trained)
    print("Running BALB...")
    balb = run_policy(scenario, "balb", config, trained)

    print()
    print(f"{'policy':10s} {'recall':>8s} {'slowest-cam ms':>15s}")
    for result in (full, balb):
        print(
            f"{result.policy:10s} {result.object_recall():8.3f} "
            f"{result.mean_slowest_latency():15.1f}"
        )
    print()
    print("BALB speedup over full-frame inspection: "
          f"{speedup_vs(full, balb):.2f}x")


if __name__ == "__main__":
    main()
