"""Process-wide metrics registry: counters, gauges and histograms.

Instruments are identified by a name plus sorted label pairs, so the same
logical metric with different labels (e.g. ``inference_ms{camera=3}``)
yields distinct series. Export order is deterministic — sorted by kind,
name and labels — which is what lets tests assert on registry snapshots
and lets two seeded runs produce byte-identical counter exports.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple, Type, TypeVar, Union

LabelKey = Tuple[Tuple[str, Any], ...]

InstrumentT = TypeVar("InstrumentT", "Counter", "Gauge", "Histogram")


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, amount: float) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram:
    """Streaming distribution summary (keeps all observations)."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Holds all instruments of one scope (a run, or the process default).

    ``counter``/``gauge``/``histogram`` create on first use and return the
    same instrument for the same name + labels afterwards. Using one name
    for two different kinds is an error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[
            Tuple[str, LabelKey], Union["Counter", "Gauge", "Histogram"]
        ] = {}

    def _get(
        self,
        cls: Type[InstrumentT],
        name: str,
        labels: Dict[str, Any],
    ) -> InstrumentT:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def export(self) -> List[Dict[str, Any]]:
        """Deterministically ordered snapshot of every instrument."""
        out: List[Dict[str, Any]] = []
        for (name, labels), inst in sorted(
            self._instruments.items(),
            key=lambda kv: (kv[1].kind, kv[0][0], repr(kv[0][1])),
        ):
            entry: Dict[str, Any] = {
                "kind": inst.kind,
                "name": name,
                "labels": {k: v for k, v in labels},
            }
            entry.update(inst.snapshot())
            out.append(entry)
        return out


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (per-run code should prefer a
    fresh :class:`MetricsRegistry` so runs do not contaminate each other).
    """
    return _DEFAULT_REGISTRY
