"""Trace/metrics exporters: JSON-lines round trip and text summaries.

The JSONL format is one span per line in start order; reading it back
reconstructs the exact :class:`~repro.obs.trace.SpanRecord` list, so a
trace file is a lossless serialization of a run's span forest.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanRecord

TreeSignature = Tuple[str, Tuple["TreeSignature", ...]]


def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """Serialize spans as one JSON object per line."""
    return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in spans)


def write_spans_jsonl(
    spans: Sequence[SpanRecord], destination: Union[str, IO[str]]
) -> None:
    """Write spans to a path or open text file."""
    text = spans_to_jsonl(spans)
    payload = text + ("\n" if text else "")
    if isinstance(destination, str):
        with open(destination, "w") as f:
            f.write(payload)
    else:
        destination.write(payload)


def read_spans_jsonl(source: Union[str, IO[str]]) -> List[SpanRecord]:
    """Parse a JSONL trace back into span records."""
    if isinstance(source, str):
        with open(source) as f:
            text = f.read()
    else:
        text = source.read()
    return [
        SpanRecord.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def span_tree_signature(
    spans: Sequence[SpanRecord],
) -> Tuple[TreeSignature, ...]:
    """Structure-only view of a span forest: nested ``(name, children)``.

    Durations, ids and tags are dropped, so two runs with the same seed
    produce identical signatures — the deterministic object golden tests
    assert on.
    """
    children: Dict[Any, List[SpanRecord]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    present = {s.span_id for s in spans}

    def build(span: SpanRecord) -> TreeSignature:
        kids = children.get(span.span_id, [])
        return (span.name, tuple(build(k) for k in kids))

    roots = [
        s for s in spans if s.parent_id is None or s.parent_id not in present
    ]
    return tuple(build(r) for r in roots)


def summarize_spans(
    spans: Sequence[SpanRecord],
) -> List[Dict[str, Any]]:
    """Aggregate spans by name: count, total/mean/max duration (ms).

    Rows come back sorted by total time descending (name as tiebreak), the
    natural "where did the time go" ordering.
    """
    acc: Dict[str, List[float]] = {}
    for span in spans:
        acc.setdefault(span.name, []).append(span.duration_ms)
    rows = [
        {
            "name": name,
            "count": len(values),
            "total_ms": sum(values),
            "mean_ms": sum(values) / len(values),
            "max_ms": max(values),
        }
        for name, values in acc.items()
    ]
    rows.sort(key=lambda r: (-r["total_ms"], r["name"]))
    return rows


def format_span_summary(spans: Sequence[SpanRecord], title: str = "") -> str:
    """Render :func:`summarize_spans` as an aligned text table."""
    rows = [
        (
            r["name"],
            r["count"],
            f"{r['total_ms']:.2f}",
            f"{r['mean_ms']:.3f}",
            f"{r['max_ms']:.3f}",
        )
        for r in summarize_spans(spans)
    ]
    return _table(
        ["span", "count", "total ms", "mean ms", "max ms"], rows, title
    )


def format_metrics_table(
    registry_or_export: Union[MetricsRegistry, Iterable[Dict[str, Any]]],
    title: str = "",
) -> str:
    """Render a registry export as an aligned text table."""
    if isinstance(registry_or_export, MetricsRegistry):
        entries = registry_or_export.export()
    else:
        entries = list(registry_or_export)
    rows = []
    for e in entries:
        labels = ",".join(f"{k}={v}" for k, v in sorted(e["labels"].items()))
        if e["kind"] == "histogram":
            value = (
                f"count={e['count']} mean={e['mean']:.3f} "
                f"p95={e['p95']:.3f} max={e['max']:.3f}"
            )
        else:
            value = f"{e['value']:g}"
        rows.append((e["kind"], e["name"], labels, value))
    return _table(["kind", "name", "labels", "value"], rows, title)


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Minimal aligned table (obs is a leaf package; no experiments dep)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in str_rows
    )
    return "\n".join(lines)
