"""Lightweight span tracing for the per-frame hot path.

A :class:`Tracer` records context-manager *spans* with parent/child
nesting, monotonic-clock timing and free-form tags (frame index, camera
id, policy, ...). Records are kept in start order, so a finished trace is
a pre-order traversal of the span forest and its *structure* (names,
nesting, counts) is deterministic for a seeded run even though the
measured durations are not.

Call sites never take a tracer parameter. They fetch the ambient tracer
via :func:`get_tracer`, which returns the shared :data:`NOOP_TRACER`
unless someone activated a real tracer with :func:`use_tracer`. The no-op
path allocates nothing and reuses a single stateless span object, so
instrumentation left in the hot path is effectively free when disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
import time
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)


@runtime_checkable
class Clock(Protocol):
    """The injectable-clock protocol: anything with ``now() -> float``.

    Satisfied by :class:`WallClock` (host time) and by the event
    kernel's :class:`~repro.runtime.events.SimulatedClock` (simulated
    time), so consumers never care which timebase they are on.
    """

    def now(self) -> float: ...


class WallClock:
    """The host's monotonic clock, behind the injectable-clock seam.

    Everything in the runtime that measures *host* time (span durations,
    per-frame wall time) reads it through a clock object rather than
    calling :func:`time.perf_counter` directly, so tests and the
    simulated-time event kernel can substitute a deterministic clock.
    This module is the only runtime home of the wall clock — it is on the
    reprolint RL002 allowlist precisely because host measurement is
    excluded from the determinism guarantee.
    """

    __slots__ = ()

    def now(self) -> float:
        """Monotonic seconds; only differences are meaningful."""
        return time.perf_counter()


#: The shared wall clock instance injected by default.
WALL_CLOCK = WallClock()


@dataclass
class SpanRecord:
    """One finished (or in-flight) span, as stored by the tracer."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start_ms: float  # offset from the tracer's epoch, monotonic clock
    duration_ms: float = 0.0
    tags: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (tags last, keys stable)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(
                None if data["parent_id"] is None else int(data["parent_id"])
            ),
            name=str(data["name"]),
            depth=int(data["depth"]),
            start_ms=float(data["start_ms"]),
            duration_ms=float(data["duration_ms"]),
            tags=dict(data.get("tags", {})),
        )


class _NoopSpan:
    """Reusable do-nothing span; the entire disabled-mode cost."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self

    @property
    def duration_ms(self) -> float:
        return 0.0


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager bound to one :class:`SpanRecord` of a live tracer."""

    __slots__ = ("_tracer", "_record", "_start")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._start = time.perf_counter()
        self._tracer._push(self._record, self._start)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._record.duration_ms = (time.perf_counter() - self._start) * 1e3
        self._tracer._pop(self._record)
        return False

    def set_tag(self, key: str, value: Any) -> "_ActiveSpan":
        self._record.tags[key] = value
        return self

    @property
    def duration_ms(self) -> float:
        return self._record.duration_ms


class NoopTracer:
    """Disabled tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, **tags: Any) -> _NoopSpan:
        return _NOOP_SPAN

    @property
    def records(self) -> List[SpanRecord]:
        return []


#: The process-wide disabled tracer; what :func:`get_tracer` returns by default.
NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects spans for one traced run."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._next_id = 0

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span; use as a context manager. Nesting follows the
        runtime call stack: the innermost open span is the parent."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            depth=0 if parent is None else parent.depth + 1,
            start_ms=0.0,
            tags=dict(tags),
        )
        self._next_id += 1
        return _ActiveSpan(self, record)

    @property
    def records(self) -> List[SpanRecord]:
        """All spans in start order (pre-order traversal of the forest)."""
        return list(self._records)

    @property
    def open_depth(self) -> int:
        """Number of currently open spans (0 when the trace is complete)."""
        return len(self._stack)

    # -- internal ------------------------------------------------------
    def _push(self, record: SpanRecord, start: float) -> None:
        record.start_ms = (start - self._epoch) * 1e3
        self._records.append(record)
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise RuntimeError(
                f"span {record.name!r} closed out of order; open stack: "
                f"{[r.name for r in self._stack]}"
            )
        self._stack.pop()


_current: Any = NOOP_TRACER


def get_tracer() -> Any:
    """The ambient tracer (the no-op tracer unless a run activated one)."""
    return _current


@contextmanager
def use_tracer(tracer: Any) -> Iterator[Any]:
    """Activate ``tracer`` as the ambient tracer for the enclosed block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
