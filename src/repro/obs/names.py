"""The registered inventory of span and metric names.

Every name passed to the tracer (``tracer.span(...)``) or the metrics
registry (``registry.counter/gauge/histogram(...)``) anywhere under
``src/repro`` must be a string literal listed here. The ``reprolint``
RL005 rule enforces that at lint time: the registry creates a series on
first use, so a typo'd name never raises — it silently forks a metric
into two series and golden-trace tests chase ghosts. Keeping the full
inventory in one module makes renames diffable and typos machine-caught.

To add a name: add the literal to the matching set below (keep the sets
sorted), then use the same literal at the call site. Dynamic span
families (``"fault." + kind``, ``"failover." + kind``) register their
*prefix* in :data:`SPAN_PREFIXES`.

This module is read *syntactically* by the linter (never imported), so
the sets must stay literal — no comprehensions, concatenation or
imports feeding them.
"""

from __future__ import annotations

#: Every static span name the tracer records.
SPAN_NAMES = frozenset(
    {
        "balb.central",
        "camera.detect",
        "camera.flow_predict",
        "camera.key_frame",
        "camera.new_regions",
        "camera.policy_select",
        "camera.regular_frame",
        "camera.slice",
        "camera.track_refresh",
        "central_stage",
        "distributed_stage",
        "failover.replicate",
        "frame",
        "gpu.execute",
        "ingest.coalesce",
        "ingest.degrade",
        "ingest.drop",
        "ingest.stall",
        "gpu.full_frame",
        "health.active",
        "health.probation",
        "health.quarantined",
        "health.refit",
        "health.suspect",
        "net.retry",
        "net.round_trip",
        "run",
        "scheduler.associate",
        "scheduler.comm",
        "scheduler.schedule",
        "scheduler.solve",
        "sim.advance",
        "wire.corrupt",
        "wire.duplicate",
        "wire.fenced",
        "wire.reorder",
    }
)

#: Registered prefixes for dynamic span families (prefix + enum value).
#: Only prefixes with a live ``"prefix" + value`` emission belong here —
#: the ingest.* and wire.* families emit literal names and are listed in
#: SPAN_NAMES above (reproflow RF005 enforces this).
SPAN_PREFIXES = frozenset(
    {
        "fault.",
        "failover.",
        "health.",
    }
)

#: Every metric (counter/gauge/histogram) name the registry serves.
METRIC_NAMES = frozenset(
    {
        "assignment_fallbacks_total",
        "assignment_staleness_horizons",
        "bytes_dropped_total",
        "cache_corrupt_total",
        "cache_hits_total",
        "cache_misses_total",
        "cache_puts_total",
        "camera_down_frames_total",
        "coverage_lost_object_frames_total",
        "experiment_wall_s",
        "experiments_total",
        "failover_fenced_total",
        "failover_handbacks_total",
        "failover_recovery_ms",
        "failover_replications_total",
        "failover_reunites_total",
        "failover_split_takeovers_total",
        "failover_stale_replicas_total",
        "failover_takeovers_total",
        "fault_events_total",
        "forced_key_frames_total",
        "clock_drift_lag_frames",
        "frame_wall_ms",
        "frames_total",
        "health_probation_frames_total",
        "health_probations_total",
        "health_quarantines_total",
        "health_readmissions_total",
        "health_score",
        "health_suspects_total",
        "inference_ms",
        "ingest_admitted_total",
        "ingest_coalesced_total",
        "ingest_degraded_frames_total",
        "ingest_dropped_total",
        "ingest_offered_total",
        "ingest_queue_peak_depth",
        "ingest_served_total",
        "ingest_staleness_frames",
        "ingest_stalled_frames_total",
        "key_frames_total",
        "link_giveups_total",
        "membership_epoch",
        "membership_refits_total",
        "message_retries_total",
        "messages_corrupted_total",
        "messages_dropped_total",
        "quality_fade_factor",
        "regular_frames_total",
        "scheduler_down_frames_total",
        "sensor_frozen_frames_total",
        "serving_cache_hits_total",
        "serving_cache_misses_total",
        "serving_requests_total",
        "serving_snapshots_total",
        "serving_staleness_frames",
        "skipped_key_frames_total",
        "slices_total",
        "wire_corrupt_dropped_total",
        "wire_duplicates_dropped_total",
        "wire_reordered_total",
    }
)
