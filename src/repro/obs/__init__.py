"""Observability: frame-level tracing, metrics registry and exporters.

This package is a leaf utility (it imports nothing else from ``repro``)
so any layer may instrument itself. The pipeline's hot path calls
:func:`get_tracer` which returns a shared no-op tracer unless a run has
activated a real one — tracing costs nothing when disabled.
"""

from repro.obs.export import (
    format_metrics_table,
    format_span_summary,
    read_spans_jsonl,
    span_tree_signature,
    spans_to_jsonl,
    summarize_spans,
    write_spans_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    NOOP_TRACER,
    SpanRecord,
    Tracer,
    get_tracer,
    use_tracer,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "NOOP_TRACER",
    "get_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "summarize_spans",
    "span_tree_signature",
    "format_span_summary",
    "format_metrics_table",
]
