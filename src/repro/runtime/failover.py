"""Scheduler failover: warm-standby election and takeover cost model.

The central BALB stage is a single point of failure: without this layer
a dead scheduler leaves every camera on its stale mask forever. The
:class:`FailoverManager` closes that gap with the heartbeat/lease
protocol of :mod:`repro.net.heartbeat`:

* While the primary answers heartbeats it also *replicates* a
  :class:`~repro.net.messages.SchedulerCheckpoint` (association state,
  last decision, priority order) to a deterministic warm-standby camera,
  piggybacked on that camera's assignment download.
* When the primary crashes, key frames are suppressed and cameras run
  the distributed stage on their last-known masks — degraded but alive.
* Once the lease expires (one missed heartbeat by default) the standby
  claims leadership: it restores from its replica, broadcasts a
  leadership claim over the real downlinks, and resumes central duty at
  a forced key frame. The whole takeover is modeled through the existing
  link/overhead models and surfaced as ``failover.*`` spans plus a
  recovery-time metric.
* When the primary rejoins, leadership hands back (the standby syncs its
  state up to the primary) at another forced key frame.

The standby order is deterministic — descending device capacity, camera
id as tie-break — so two same-seed runs elect the same leaders.

**Epoch fencing.** Every leadership change increments a monotonically
increasing *epoch*; assignments are sealed with the issuing authority's
epoch and cameras fence (drop) anything from an older epoch (see
:mod:`repro.net.envelope`). This is what makes *partitions* safe: a
``scheduler_partition`` fault cuts a camera subset off from the primary,
and once the cut side's lease expires its best standby claims leadership
over that side — two acting schedulers at once, each over its own
reachable set, but at *different* epochs. When the cut heals, the
primary's first fleet-wide broadcast still carries its old epoch (claim
propagation takes one frame), the cut side fences it, and on the next
frame the primary reunites the fleet at an epoch above the standby's.
With ``fencing=False`` (the legacy protocol) epochs stay at 0, both
sides act with the same authority, and the invariant monitor catches the
split-brain — the regression the fenced protocol exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.net.heartbeat import HeartbeatMonitor, LeaseConfig
from repro.net.link import DuplexChannel
from repro.net.messages import Heartbeat, SchedulerCheckpoint
from repro.runtime.overhead import OverheadModel

#: ``leader_id`` of the dedicated (primary) scheduler node.
PRIMARY = -1


@dataclass(frozen=True)
class FailoverTransition:
    """One leadership change, with its modeled cost.

    ``recovery_ms`` is the time from the scheduler crash until central
    scheduling is restored (detection latency plus takeover cost); it is
    ``None`` for a handback from a standby that was already leading,
    where central duty never lapsed. ``epoch`` is the term the new
    leader acts under (0 everywhere when fencing is off).
    """

    kind: str  # "takeover" | "handback" | "split_takeover" | "reunite"
    frame: int
    leader_id: int  # new leader: camera id, or PRIMARY
    cost_ms: float
    recovery_ms: Optional[float] = None
    replica_frame: Optional[int] = None  # checkpoint the leader restored
    epoch: int = 0


@dataclass(frozen=True)
class Authority:
    """One acting scheduler this frame: who, under which epoch, over whom."""

    leader_id: int  # camera id, or PRIMARY
    epoch: int
    reach: FrozenSet[int]  # cameras this authority can exchange with


class FailoverManager:
    """Frame-quantized failover state machine for one pipeline run."""

    def __init__(
        self,
        camera_ids: Sequence[int],
        capacities: Dict[int, float],
        lease: Optional[LeaseConfig] = None,
        frame_dt_s: float = 0.1,
        channels: Optional[Dict[int, DuplexChannel]] = None,
        overheads: Optional[OverheadModel] = None,
        fencing: bool = True,
    ) -> None:
        if frame_dt_s <= 0:
            raise ValueError("frame_dt_s must be positive")
        self.lease = lease or LeaseConfig()
        self.frame_dt_s = frame_dt_s
        self.channels = channels or {}
        self.overheads = overheads or OverheadModel()
        #: Deterministic standby election order: fastest device first.
        self.standby_order: Tuple[int, ...] = tuple(
            sorted(camera_ids, key=lambda c: (-capacities.get(c, 0.0), c))
        )
        self.primary_alive = True
        self.leader_camera: Optional[int] = None
        self.crash_frame: Optional[int] = None
        self.monitor = HeartbeatMonitor(self.lease)
        self.replica: Optional[SchedulerCheckpoint] = None
        self.replications = 0
        self.stale_replications = 0
        #: Epoch fencing: the current acting-leader term. With
        #: ``fencing=False`` (legacy protocol) every transition keeps
        #: epoch 0 — the split-brain-prone behaviour under partitions.
        self.fencing = fencing
        self.epoch = 0
        self._max_epoch = 0
        #: Partition (split-brain) state: the leader the cut side
        #: elected, its epoch, and its lease monitor.
        self.cut_leader: Optional[int] = None
        self.cut_epoch = 0
        self.cut_monitor: Optional[HeartbeatMonitor] = None
        self.cut_start_frame: Optional[int] = None
        self._heal_pending = False

    # ------------------------------------------------------------------
    @property
    def leader_id(self) -> int:
        """Who holds central duty right now (PRIMARY, or a camera id)."""
        return PRIMARY if self.primary_alive else (
            PRIMARY if self.leader_camera is None else self.leader_camera
        )

    @property
    def central_available(self) -> bool:
        """Can anyone run the central stage this frame?"""
        return self.primary_alive or self.leader_camera is not None

    def replication_target(self, live: Sequence[int]) -> Optional[int]:
        """The camera whose assignment download carries the checkpoint.

        The first live standby that is not currently leading — so a
        leading standby replicates onward to the next in line.
        """
        live_set = set(live)
        for cam in self.standby_order:
            if cam in live_set and cam != self.leader_camera:
                return cam
        return None

    def record_replication(
        self, checkpoint: SchedulerCheckpoint, delivered: bool
    ) -> None:
        """Account one piggybacked checkpoint transfer."""
        if delivered:
            self.replica = checkpoint
            self.replications += 1
        else:
            self.stale_replications += 1

    # ------------------------------------------------------------------
    def step(
        self, frame: int, scheduler_down: bool, live: Sequence[int]
    ) -> Optional[FailoverTransition]:
        """Advance the protocol one frame; return a transition if any."""
        if not scheduler_down:
            if self.primary_alive:
                self.monitor.observe(frame, True)
                return None
            return self._handback(frame)
        if self.primary_alive:
            # Crash instant: the lease is considered granted through this
            # frame, so detection lands on the next heartbeat boundary.
            # A crash supersedes any ongoing partition: the fleet-wide
            # election below owns leadership from here.
            self.primary_alive = False
            self.crash_frame = frame
            self.monitor = HeartbeatMonitor(self.lease)
            self.monitor.last_renewal_frame = frame
            self._clear_partition()
            return None
        if self.leader_camera is not None:
            if self.leader_camera in set(live):
                return None
            # The leading standby died too: re-elect immediately — the
            # fleet is already in failover mode, so no detection lag.
            return self._takeover(frame, live, redetection=False)
        self.monitor.observe(frame, False)
        if self.monitor.lease_expired:
            return self._takeover(frame, live, redetection=True)
        return None

    # ------------------------------------------------------------------
    def step_partition(
        self, frame: int, cut: Sequence[int], live: Sequence[int]
    ) -> Optional[FailoverTransition]:
        """Advance the partition (split-brain) machinery one frame.

        ``cut`` is the set of live cameras the primary cannot reach this
        frame (from ``FrameFaults.sched_partitioned``). While the cut
        side contains a standby candidate and its lease on the primary
        expires, that candidate claims leadership *over the cut side
        only* (``split_takeover``). When the cut heals, the reunite is
        two-phase: on the heal frame the primary's fleet-wide broadcast
        still carries its pre-split epoch — the cut side fences it — and
        on the next frame the primary reclaims the whole fleet at a
        fresh epoch (``reunite``). Call after :meth:`step`; a crashed
        primary makes partitions moot.
        """
        if not self.primary_alive:
            return None
        live_set = frozenset(live)
        cut_set = frozenset(cut) & live_set
        if self.cut_leader is None:
            if not cut_set:
                self.cut_monitor = None
                self.cut_start_frame = None
                return None
            candidate = next(
                (c for c in self.standby_order if c in cut_set), None
            )
            if candidate is None:
                return None
            if self.cut_monitor is None:
                # Cut instant: mirror the crash path — the lease is
                # granted through this frame, detection lands on the
                # next heartbeat boundary.
                self.cut_monitor = HeartbeatMonitor(self.lease)
                self.cut_monitor.last_renewal_frame = frame
                self.cut_start_frame = frame
                return None
            self.cut_monitor.observe(frame, False)
            if not self.cut_monitor.lease_expired:
                return None
            self.cut_leader = candidate
            self.cut_epoch = self._bump()
            cost = self._takeover_cost_ms(candidate, sorted(cut_set))
            recovery = cost
            if self.cut_start_frame is not None:
                recovery += (
                    (frame - self.cut_start_frame) * self.frame_dt_s * 1e3
                )
            return FailoverTransition(
                kind="split_takeover",
                frame=frame,
                leader_id=candidate,
                cost_ms=cost,
                recovery_ms=recovery,
                replica_frame=(
                    None if self.replica is None
                    else self.replica.frame_index
                ),
                epoch=self.cut_epoch,
            )
        if self.cut_leader in cut_set:
            return None  # split still in effect, both sides steady
        if not self._heal_pending:
            # Heal frame: the standby stands down on hearing the primary
            # again, but the primary's own claim — sealed before it saw
            # the standby's higher epoch — goes out under the old epoch
            # and the cut side fences it. The reunite lands next frame.
            self._heal_pending = True
            return None
        standby = self.cut_leader
        cost = 0.0
        if self.replica is not None:
            channel = self.channels.get(standby)
            if channel is not None:
                cost = channel.up.transfer_ms(self.replica.payload_bytes())
        self._clear_partition()
        self.epoch = self._bump()
        return FailoverTransition(
            kind="reunite",
            frame=frame,
            leader_id=PRIMARY,
            cost_ms=cost,
            recovery_ms=None,
            replica_frame=(
                None if self.replica is None else self.replica.frame_index
            ),
            epoch=self.epoch,
        )

    def authorities(
        self, live: Sequence[int], cut: Sequence[int]
    ) -> Tuple[Authority, ...]:
        """The acting schedulers this frame, each over its reachable set.

        At most two: the primary over the cameras it can reach, and —
        during a split — the cut side's elected standby over the cut.
        Cut cameras with no elected leader yet are in nobody's reach
        (they fall back to stale decisions). A camera-led fleet (after a
        full scheduler crash) is a single authority over every live
        camera.
        """
        live_set = frozenset(live)
        if not self.primary_alive:
            if self.leader_camera is None:
                return ()
            return (
                Authority(self.leader_camera, self.epoch, live_set),
            )
        cut_set = frozenset(cut) & live_set
        if self.cut_leader is not None and self.cut_leader in cut_set:
            return (
                Authority(PRIMARY, self.epoch, live_set - cut_set),
                Authority(self.cut_leader, self.cut_epoch, cut_set),
            )
        # Healed (including the fencing frame, when the primary still
        # broadcasts its pre-split epoch) or leaderless cut side.
        return (Authority(PRIMARY, self.epoch, live_set - cut_set),)

    @property
    def reclaim_pending(self) -> bool:
        """True on the heal frame: the primary re-broadcasts fleet-wide
        right away — still under its pre-split epoch, so the cut side
        fences the claim and the reunite lands next frame."""
        return self._heal_pending

    def _bump(self) -> int:
        """The next epoch — frozen at the current one when fencing is off."""
        if not self.fencing:
            return self.epoch
        self._max_epoch += 1
        return self._max_epoch

    def _clear_partition(self) -> None:
        self.cut_leader = None
        self.cut_monitor = None
        self.cut_start_frame = None
        self._heal_pending = False

    # ------------------------------------------------------------------
    def _takeover(
        self, frame: int, live: Sequence[int], redetection: bool
    ) -> Optional[FailoverTransition]:
        previous = self.leader_camera
        standby = next(
            (c for c in self.standby_order if c in set(live) and c != previous),
            None,
        )
        if standby is None:
            self.leader_camera = None
            return None
        self.leader_camera = standby
        self.epoch = self._bump()
        cost = self._takeover_cost_ms(standby, live)
        recovery = cost
        if redetection and self.crash_frame is not None:
            recovery += (frame - self.crash_frame) * self.frame_dt_s * 1e3
        return FailoverTransition(
            kind="takeover",
            frame=frame,
            leader_id=standby,
            cost_ms=cost,
            recovery_ms=recovery,
            replica_frame=(
                None if self.replica is None else self.replica.frame_index
            ),
            epoch=self.epoch,
        )

    def _takeover_cost_ms(self, standby: int, live: Sequence[int]) -> float:
        """Restore the replica, then broadcast the leadership claim.

        The claim rides the same downlinks the scheduler uses (cameras
        listen in parallel, so the worst link bounds the cost); restoring
        costs the fixed deserialize time plus one central-stage pass over
        the replicated association state.
        """
        n_objects = 0 if self.replica is None else self.replica.n_global_objects
        restore = self.lease.takeover_restore_ms + self.overheads.central_stage_ms(
            n_objects, len(live)
        )
        claim = Heartbeat(frame_index=0, leader_id=standby)
        broadcast = max(
            (
                self.channels[cam].down.transfer_ms(claim.payload_bytes())
                for cam in sorted(live)
                if cam != standby and cam in self.channels
            ),
            default=0.0,
        )
        return restore + broadcast

    def _handback(self, frame: int) -> FailoverTransition:
        """The primary rejoined: sync state back and return leadership."""
        standby = self.leader_camera
        cost = 0.0
        if standby is not None and self.replica is not None:
            channel = self.channels.get(standby)
            if channel is not None:
                cost = channel.up.transfer_ms(self.replica.payload_bytes())
        recovery: Optional[float] = None
        if standby is None and self.crash_frame is not None:
            # The outage ended before any takeover: central duty was down
            # from the crash until right now.
            recovery = (frame - self.crash_frame) * self.frame_dt_s * 1e3
        self.primary_alive = True
        self.leader_camera = None
        self.crash_frame = None
        self.monitor = HeartbeatMonitor(self.lease)
        self.monitor.last_renewal_frame = frame
        self.epoch = self._bump()
        return FailoverTransition(
            kind="handback",
            frame=frame,
            leader_id=PRIMARY,
            cost_ms=cost,
            recovery_ms=recovery,
            replica_frame=(
                None if self.replica is None else self.replica.frame_index
            ),
            epoch=self.epoch,
        )
