"""Scheduler failover: warm-standby election and takeover cost model.

The central BALB stage is a single point of failure: without this layer
a dead scheduler leaves every camera on its stale mask forever. The
:class:`FailoverManager` closes that gap with the heartbeat/lease
protocol of :mod:`repro.net.heartbeat`:

* While the primary answers heartbeats it also *replicates* a
  :class:`~repro.net.messages.SchedulerCheckpoint` (association state,
  last decision, priority order) to a deterministic warm-standby camera,
  piggybacked on that camera's assignment download.
* When the primary crashes, key frames are suppressed and cameras run
  the distributed stage on their last-known masks — degraded but alive.
* Once the lease expires (one missed heartbeat by default) the standby
  claims leadership: it restores from its replica, broadcasts a
  leadership claim over the real downlinks, and resumes central duty at
  a forced key frame. The whole takeover is modeled through the existing
  link/overhead models and surfaced as ``failover.*`` spans plus a
  recovery-time metric.
* When the primary rejoins, leadership hands back (the standby syncs its
  state up to the primary) at another forced key frame.

The standby order is deterministic — descending device capacity, camera
id as tie-break — so two same-seed runs elect the same leaders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.net.heartbeat import HeartbeatMonitor, LeaseConfig
from repro.net.link import DuplexChannel
from repro.net.messages import Heartbeat, SchedulerCheckpoint
from repro.runtime.overhead import OverheadModel

#: ``leader_id`` of the dedicated (primary) scheduler node.
PRIMARY = -1


@dataclass(frozen=True)
class FailoverTransition:
    """One leadership change, with its modeled cost.

    ``recovery_ms`` is the time from the scheduler crash until central
    scheduling is restored (detection latency plus takeover cost); it is
    ``None`` for a handback from a standby that was already leading,
    where central duty never lapsed.
    """

    kind: str  # "takeover" | "handback"
    frame: int
    leader_id: int  # new leader: camera id, or PRIMARY
    cost_ms: float
    recovery_ms: Optional[float] = None
    replica_frame: Optional[int] = None  # checkpoint the leader restored


class FailoverManager:
    """Frame-quantized failover state machine for one pipeline run."""

    def __init__(
        self,
        camera_ids: Sequence[int],
        capacities: Dict[int, float],
        lease: Optional[LeaseConfig] = None,
        frame_dt_s: float = 0.1,
        channels: Optional[Dict[int, DuplexChannel]] = None,
        overheads: Optional[OverheadModel] = None,
    ) -> None:
        if frame_dt_s <= 0:
            raise ValueError("frame_dt_s must be positive")
        self.lease = lease or LeaseConfig()
        self.frame_dt_s = frame_dt_s
        self.channels = channels or {}
        self.overheads = overheads or OverheadModel()
        #: Deterministic standby election order: fastest device first.
        self.standby_order: Tuple[int, ...] = tuple(
            sorted(camera_ids, key=lambda c: (-capacities.get(c, 0.0), c))
        )
        self.primary_alive = True
        self.leader_camera: Optional[int] = None
        self.crash_frame: Optional[int] = None
        self.monitor = HeartbeatMonitor(self.lease)
        self.replica: Optional[SchedulerCheckpoint] = None
        self.replications = 0
        self.stale_replications = 0

    # ------------------------------------------------------------------
    @property
    def leader_id(self) -> int:
        """Who holds central duty right now (PRIMARY, or a camera id)."""
        return PRIMARY if self.primary_alive else (
            PRIMARY if self.leader_camera is None else self.leader_camera
        )

    @property
    def central_available(self) -> bool:
        """Can anyone run the central stage this frame?"""
        return self.primary_alive or self.leader_camera is not None

    def replication_target(self, live: Sequence[int]) -> Optional[int]:
        """The camera whose assignment download carries the checkpoint.

        The first live standby that is not currently leading — so a
        leading standby replicates onward to the next in line.
        """
        live_set = set(live)
        for cam in self.standby_order:
            if cam in live_set and cam != self.leader_camera:
                return cam
        return None

    def record_replication(
        self, checkpoint: SchedulerCheckpoint, delivered: bool
    ) -> None:
        """Account one piggybacked checkpoint transfer."""
        if delivered:
            self.replica = checkpoint
            self.replications += 1
        else:
            self.stale_replications += 1

    # ------------------------------------------------------------------
    def step(
        self, frame: int, scheduler_down: bool, live: Sequence[int]
    ) -> Optional[FailoverTransition]:
        """Advance the protocol one frame; return a transition if any."""
        if not scheduler_down:
            if self.primary_alive:
                self.monitor.observe(frame, True)
                return None
            return self._handback(frame)
        if self.primary_alive:
            # Crash instant: the lease is considered granted through this
            # frame, so detection lands on the next heartbeat boundary.
            self.primary_alive = False
            self.crash_frame = frame
            self.monitor = HeartbeatMonitor(self.lease)
            self.monitor.last_renewal_frame = frame
            return None
        if self.leader_camera is not None:
            if self.leader_camera in set(live):
                return None
            # The leading standby died too: re-elect immediately — the
            # fleet is already in failover mode, so no detection lag.
            return self._takeover(frame, live, redetection=False)
        self.monitor.observe(frame, False)
        if self.monitor.lease_expired:
            return self._takeover(frame, live, redetection=True)
        return None

    # ------------------------------------------------------------------
    def _takeover(
        self, frame: int, live: Sequence[int], redetection: bool
    ) -> Optional[FailoverTransition]:
        previous = self.leader_camera
        standby = next(
            (c for c in self.standby_order if c in set(live) and c != previous),
            None,
        )
        if standby is None:
            self.leader_camera = None
            return None
        self.leader_camera = standby
        cost = self._takeover_cost_ms(standby, live)
        recovery = cost
        if redetection and self.crash_frame is not None:
            recovery += (frame - self.crash_frame) * self.frame_dt_s * 1e3
        return FailoverTransition(
            kind="takeover",
            frame=frame,
            leader_id=standby,
            cost_ms=cost,
            recovery_ms=recovery,
            replica_frame=(
                None if self.replica is None else self.replica.frame_index
            ),
        )

    def _takeover_cost_ms(self, standby: int, live: Sequence[int]) -> float:
        """Restore the replica, then broadcast the leadership claim.

        The claim rides the same downlinks the scheduler uses (cameras
        listen in parallel, so the worst link bounds the cost); restoring
        costs the fixed deserialize time plus one central-stage pass over
        the replicated association state.
        """
        n_objects = 0 if self.replica is None else self.replica.n_global_objects
        restore = self.lease.takeover_restore_ms + self.overheads.central_stage_ms(
            n_objects, len(live)
        )
        claim = Heartbeat(frame_index=0, leader_id=standby)
        broadcast = max(
            (
                self.channels[cam].down.transfer_ms(claim.payload_bytes())
                for cam in sorted(live)
                if cam != standby and cam in self.channels
            ),
            default=0.0,
        )
        return restore + broadcast

    def _handback(self, frame: int) -> FailoverTransition:
        """The primary rejoined: sync state back and return leadership."""
        standby = self.leader_camera
        cost = 0.0
        if standby is not None and self.replica is not None:
            channel = self.channels.get(standby)
            if channel is not None:
                cost = channel.up.transfer_ms(self.replica.payload_bytes())
        recovery: Optional[float] = None
        if standby is None and self.crash_frame is not None:
            # The outage ended before any takeover: central duty was down
            # from the crash until right now.
            recovery = (frame - self.crash_frame) * self.frame_dt_s * 1e3
        self.primary_alive = True
        self.leader_camera = None
        self.crash_frame = None
        self.monitor = HeartbeatMonitor(self.lease)
        self.monitor.last_renewal_frame = frame
        return FailoverTransition(
            kind="handback",
            frame=frame,
            leader_id=PRIMARY,
            cost_ms=cost,
            recovery_ms=recovery,
            replica_frame=(
                None if self.replica is None else self.replica.frame_index
            ),
        )
