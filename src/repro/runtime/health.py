"""Camera fleet health: per-camera scoring and quarantine lifecycle.

The paper's scheduler assumes every camera is a truthful, synchronized
peer. Real fleets degrade without dying: a sensor freezes and repeats
its last frame while heartbeating happily, a clock drifts until the
camera schedules against a stale world, a flaky power rail makes a node
leave and rejoin every few frames, a fouled lens fades detection recall.
None of these trip crash handling — the camera keeps talking — yet all
of them poison the cross-camera association and BALB's load balancing.

The :class:`FleetHealthWatchdog` is the scheduler-side defense. Each
frame it fuses four observable signals per camera into a health score
and a small hysteretic state machine::

    ACTIVE -> SUSPECT -> QUARANTINED -> PROBATION -> ACTIVE

* **heartbeat liveness** — is the camera responding at all? Rapid
  liveness *churn* (the flap signature) is tracked separately, so a
  camera that is up this frame but flapping is still unhealthy.
* **frame-content staleness** — a repeated frame-content token is the
  frozen-sensor signature (a live sensor never produces bit-identical
  consecutive frames of a moving scene).
* **timestamp skew** — lag frames beyond the configured tolerance mean
  the camera's clock has drifted off the fleet.
* **report quality** — the fraction of its visible objects a camera
  actually reported on its last key frame; decay is the fade signature.

Everything here is deterministic, RNG-free and picklable, so a
checkpointed run restores the watchdog mid-lifecycle bit-exactly, and
the state machine's hysteresis (consecutive-frame streaks, minimum
quarantine dwell, probation warm-up) guarantees a flapping camera cannot
thrash the scheduler's membership: there is **no** ``QUARANTINED ->
ACTIVE`` edge — readmission always passes through ``PROBATION``.

Membership epochs increase monotonically: every transition that changes
the scheduling membership (quarantine entry/exit, probation entry/exit)
bumps :attr:`FleetHealthWatchdog.membership_epoch`, which the invariant
monitor checks (R6) alongside "no assignment to a QUARANTINED camera"
(R5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence
import zlib


class HealthState(enum.Enum):
    """Lifecycle states of one camera in the fleet."""

    ACTIVE = "active"  # full member: reports, receives assignments
    SUSPECT = "suspect"  # unhealthy signals; still a full member
    QUARANTINED = "quarantined"  # out of the fleet; peers cover its region
    PROBATION = "probation"  # readmission warm-up; no shared-object authority


#: Transitions that change the scheduling membership (and bump the
#: membership epoch). ACTIVE <-> SUSPECT is observational only.
_MEMBERSHIP_EDGES = frozenset(
    [
        (HealthState.ACTIVE, HealthState.QUARANTINED),
        (HealthState.SUSPECT, HealthState.QUARANTINED),
        (HealthState.QUARANTINED, HealthState.PROBATION),
        (HealthState.PROBATION, HealthState.QUARANTINED),
        (HealthState.PROBATION, HealthState.ACTIVE),
    ]
)


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds of the watchdog's scoring and state machine.

    The defaults quarantine a frozen or drifting camera within
    ``suspect_after + quarantine_after`` frames of the signal appearing
    and readmit it no sooner than ``min_quarantine_frames +
    probation_frames`` frames after it recovers — small enough to react
    within one scheduling horizon, large enough that one glitchy frame
    changes nothing.
    """

    suspect_after: int = 2  # unhealthy frames before ACTIVE -> SUSPECT
    quarantine_after: int = 3  # further unhealthy frames before quarantine
    clear_after: int = 3  # healthy frames before SUSPECT -> ACTIVE
    min_quarantine_frames: int = 4  # minimum quarantine dwell
    probation_after: int = 2  # healthy frames before QUARANTINED -> PROBATION
    probation_frames: int = 4  # clean probation dwell before readmission
    skew_tolerance_frames: int = 2  # acceptable extra lag
    quality_floor: float = 0.7  # minimum key-frame report quality
    flap_window: int = 12  # frames over which liveness churn is counted
    flap_threshold: int = 3  # liveness transitions in window = flapping
    score_alpha: float = 0.3  # EWMA weight of the newest frame's signals

    def __post_init__(self) -> None:
        for name in ("suspect_after", "quarantine_after", "clear_after",
                     "min_quarantine_frames", "probation_after",
                     "probation_frames", "flap_window", "flap_threshold"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.skew_tolerance_frames < 0:
            raise ValueError("skew_tolerance_frames must be non-negative")
        if not 0.0 < self.quality_floor <= 1.0:
            raise ValueError("quality_floor must be in (0, 1]")
        if not 0.0 < self.score_alpha <= 1.0:
            raise ValueError("score_alpha must be in (0, 1]")


@dataclass(frozen=True)
class HealthSignals:
    """One camera's observable signals for one frame.

    ``quality`` is the fraction of its visible objects the camera
    reported on a key frame; ``None`` between key frames (the watchdog
    carries the last known value forward). ``content_token`` is a hash
    of the camera's frame content (see :func:`content_token`); it is
    ignored while the camera is down.
    """

    alive: bool
    content_token: int = 0
    skew_frames: int = 0
    quality: Optional[float] = None


@dataclass(frozen=True)
class HealthTransition:
    """One state-machine edge taken by one camera."""

    frame: int
    camera_id: int
    previous: HealthState
    state: HealthState
    reason: str
    epoch: int

    @property
    def membership_change(self) -> bool:
        """Does this edge change the scheduling membership?"""
        return (self.previous, self.state) in _MEMBERSHIP_EDGES


@dataclass
class _CameraHealth:
    """Mutable per-camera watchdog record (picklable)."""

    state: HealthState = HealthState.ACTIVE
    score: float = 1.0
    unhealthy_streak: int = 0
    healthy_streak: int = 0
    state_frames: int = 0  # frames spent in the current state
    last_token: Optional[int] = None
    token_repeats: int = 0
    last_alive: bool = True
    flap_marks: List[int] = field(default_factory=list)
    last_quality: Optional[float] = None
    last_reason: str = ""


def content_token(objects: Sequence[object]) -> int:
    """Deterministic content hash of one camera's observed frame.

    Stands in for hashing the raw sensor buffer: a frozen sensor
    repeats bits, so its token repeats; a live sensor watching a moving
    scene does not. Positions are quantized to a tenth of a unit so the
    token tracks actual scene motion, not float noise.
    """
    payload = ";".join(
        f"{o.object_id}:{round(o.x * 10)}:{round(o.y * 10)}"  # type: ignore[attr-defined]
        for o in objects
    )
    return zlib.crc32(payload.encode("ascii"))


class FleetHealthWatchdog:
    """Deterministic fleet-membership state machine over health signals.

    Feed :meth:`observe` once per frame with every camera's
    :class:`HealthSignals`; it returns the transitions taken this frame.
    Pure bookkeeping — no RNG, no spans, no clock — so identical signal
    sequences yield identical transitions and scores.
    """

    def __init__(
        self,
        camera_ids: Sequence[int],
        config: Optional[HealthConfig] = None,
    ) -> None:
        if not camera_ids:
            raise ValueError("watchdog needs at least one camera")
        self.config = config or HealthConfig()
        self._records: Dict[int, _CameraHealth] = {
            cam: _CameraHealth() for cam in sorted(camera_ids)
        }
        self._epoch = 0

    # ------------------------------------------------------------------
    @property
    def membership_epoch(self) -> int:
        """Monotonic count of membership-changing transitions."""
        return self._epoch

    def state_of(self, camera_id: int) -> HealthState:
        return self._records[camera_id].state

    def score_of(self, camera_id: int) -> float:
        return self._records[camera_id].score

    def quarantined(self) -> FrozenSet[int]:
        """Cameras currently out of the scheduling membership."""
        return frozenset(
            cam
            for cam, rec in self._records.items()
            if rec.state is HealthState.QUARANTINED
        )

    def in_probation(self) -> FrozenSet[int]:
        """Cameras readmitted on a warm-up leash."""
        return frozenset(
            cam
            for cam, rec in self._records.items()
            if rec.state is HealthState.PROBATION
        )

    def states(self) -> Dict[int, HealthState]:
        return {cam: rec.state for cam, rec in self._records.items()}

    # ------------------------------------------------------------------
    def observe(
        self, frame: int, signals: Mapping[int, HealthSignals]
    ) -> List[HealthTransition]:
        """Fold one frame of signals into every camera's lifecycle."""
        cfg = self.config
        transitions: List[HealthTransition] = []
        for cam in sorted(self._records):
            rec = self._records[cam]
            sig = signals.get(cam)
            if sig is None:
                continue
            # -- component signals ---------------------------------------
            if sig.alive != rec.last_alive:
                rec.flap_marks.append(frame)
                rec.last_alive = sig.alive
            rec.flap_marks = [
                f for f in rec.flap_marks if f > frame - cfg.flap_window
            ]
            flapping = len(rec.flap_marks) >= cfg.flap_threshold
            if sig.alive:
                if rec.last_token is not None and (
                    sig.content_token == rec.last_token
                ):
                    rec.token_repeats += 1
                else:
                    rec.token_repeats = 0
                rec.last_token = sig.content_token
            stale = rec.token_repeats >= 1
            skewed = sig.skew_frames > cfg.skew_tolerance_frames
            if sig.quality is not None:
                rec.last_quality = sig.quality
            low_quality = (
                rec.last_quality is not None
                and rec.last_quality < cfg.quality_floor
            )
            if not sig.alive:
                reason = "heartbeat"
            elif flapping:
                reason = "flap"
            elif stale:
                reason = "stale"
            elif skewed:
                reason = "skew"
            elif low_quality:
                reason = "quality"
            else:
                reason = ""
            healthy = not reason
            # -- fused score (EWMA; observability + monotonicity) --------
            quality_part = 1.0
            if rec.last_quality is not None:
                quality_part = min(
                    1.0, rec.last_quality / cfg.quality_floor
                )
            instant = (
                0.4 * (1.0 if sig.alive and not flapping else 0.0)
                + 0.2 * (0.0 if stale else 1.0)
                + 0.2 * (0.0 if skewed else 1.0)
                + 0.2 * quality_part
            )
            rec.score += cfg.score_alpha * (instant - rec.score)
            if healthy:
                rec.healthy_streak += 1
                rec.unhealthy_streak = 0
            else:
                rec.unhealthy_streak += 1
                rec.healthy_streak = 0
                rec.last_reason = reason
            rec.state_frames += 1
            # -- state machine -------------------------------------------
            previous = rec.state
            nxt = previous
            if previous is HealthState.ACTIVE:
                if rec.unhealthy_streak >= cfg.suspect_after:
                    nxt = HealthState.SUSPECT
            elif previous is HealthState.SUSPECT:
                if rec.unhealthy_streak >= (
                    cfg.suspect_after + cfg.quarantine_after
                ):
                    nxt = HealthState.QUARANTINED
                elif rec.healthy_streak >= cfg.clear_after:
                    nxt = HealthState.ACTIVE
            elif previous is HealthState.QUARANTINED:
                # Hysteresis: a quarantined camera must dwell, then show
                # sustained health, and even then only reaches PROBATION.
                if (
                    rec.state_frames >= cfg.min_quarantine_frames
                    and rec.healthy_streak >= cfg.probation_after
                ):
                    nxt = HealthState.PROBATION
            elif previous is HealthState.PROBATION:
                if rec.unhealthy_streak >= 1:
                    nxt = HealthState.QUARANTINED
                elif rec.state_frames >= cfg.probation_frames:
                    nxt = HealthState.ACTIVE
            if nxt is previous:
                continue
            rec.state = nxt
            rec.state_frames = 0
            if nxt is HealthState.ACTIVE:
                edge_reason = "readmitted"
            elif nxt is HealthState.PROBATION:
                edge_reason = "probation"
            else:
                edge_reason = rec.last_reason or reason or "unhealthy"
            if (previous, nxt) in _MEMBERSHIP_EDGES:
                self._epoch += 1
            transitions.append(
                HealthTransition(
                    frame=frame,
                    camera_id=cam,
                    previous=previous,
                    state=nxt,
                    reason=edge_reason,
                    epoch=self._epoch,
                )
            )
        return transitions
