"""Per-camera bounded frame queues with explicit backpressure policies.

Under ``--runtime event`` every camera's frames flow through a
:class:`BoundedFrameQueue` before the scheduler sees them. When ingest
keeps up the queue is a transparent one-in/one-out buffer; when an
``ingest_burst`` fault bunches arrivals, the queue overflows and a
pluggable :class:`IngestPolicy` decides what gives:

* ``drop-oldest`` — evict the oldest queued frame, strictly in arrival
  order (the classic ring-buffer camera feed; key frames are fair game).
* ``degrade-to-distributed`` — evict the oldest *non-key* frame and mark
  the camera degraded: it sits out its next central-stage participation
  (running distributed-only on its last-known mask) to catch up. Key
  frames are never evicted.
* ``coalesce-to-key-frame`` — never evict: fold the entire backlog into
  a single capsule promoted to a key frame, so the camera resynchronizes
  with one forced central pass. Nothing is dropped.

Accounting is conservation-exact. Every offered frame ends in exactly
one disposition — rejected at the door, served, evicted on overflow,
dropped stale at dispatch, folded (coalesced) into a served capsule, or
still queued — and :meth:`BoundedFrameQueue.check_conservation` asserts
the ledger balances, which the hypothesis property suite hammers under
arbitrary offer/poll interleavings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Optional, Tuple

__all__ = [
    "BoundedFrameQueue",
    "CoalesceToKeyFrame",
    "DegradeToDistributed",
    "DropOldest",
    "FrameCapsule",
    "INGEST_POLICIES",
    "IngestPolicy",
    "OfferOutcome",
    "PollOutcome",
    "make_ingest_policy",
]


@dataclass(frozen=True)
class FrameCapsule:
    """One camera frame in flight through the ingest edge.

    ``coalesced`` counts *earlier* frames folded into this capsule by the
    coalescing policy; a freshly offered capsule always carries 0.
    """

    camera_id: int
    frame_index: int
    arrival_s: float
    is_key: bool = False
    coalesced: int = 0

    def __post_init__(self) -> None:
        if self.frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if self.coalesced < 0:
            raise ValueError("coalesced must be non-negative")


@dataclass(frozen=True)
class OfferOutcome:
    """What happened to one offered capsule."""

    admitted: bool
    evicted: Tuple[FrameCapsule, ...] = ()
    folded: bool = False  # admitted by merging, not by occupying a slot


@dataclass(frozen=True)
class PollOutcome:
    """What one dispatch drained from the queue."""

    capsule: FrameCapsule
    stale_dropped: int = 0
    folded: int = 0
    staleness_frames: int = 0
    forced_key: bool = False  # backlog was coalesced into a key capsule


def _fold(into: FrameCapsule, absorbed: FrameCapsule) -> FrameCapsule:
    """Merge ``absorbed`` (an older frame) into ``into``; key-ness sticks."""
    return replace(
        into,
        is_key=into.is_key or absorbed.is_key,
        coalesced=into.coalesced + absorbed.coalesced + 1,
    )


class IngestPolicy:
    """Overflow and backlog strategy of one bounded queue."""

    #: Registry name (``PipelineConfig.ingest_policy`` value).
    name: str = ""
    #: Whether a served backlog is folded (True) or dropped stale (False).
    coalesce_backlog: bool = False
    #: Whether an overflow puts the camera into degraded mode.
    degrade_on_overflow: bool = False

    def on_overflow(
        self, queue: Deque[FrameCapsule], incoming: FrameCapsule
    ) -> OfferOutcome:
        """Resolve a full queue; mutate ``queue`` and report the outcome."""
        raise NotImplementedError


class DropOldest(IngestPolicy):
    """Evict the head — the oldest frame — strictly in arrival order."""

    name = "drop-oldest"

    def on_overflow(
        self, queue: Deque[FrameCapsule], incoming: FrameCapsule
    ) -> OfferOutcome:
        victim = queue.popleft()
        queue.append(incoming)
        return OfferOutcome(admitted=True, evicted=(victim,))


class DegradeToDistributed(IngestPolicy):
    """Evict the oldest non-key frame; degrade the camera to catch up."""

    name = "degrade-to-distributed"
    degrade_on_overflow = True

    def on_overflow(
        self, queue: Deque[FrameCapsule], incoming: FrameCapsule
    ) -> OfferOutcome:
        for i, capsule in enumerate(queue):
            if not capsule.is_key:
                del queue[i]
                queue.append(incoming)
                return OfferOutcome(admitted=True, evicted=(capsule,))
        # Every queued frame is a key frame. A key incoming merges into
        # the newest one (no key frame is ever lost); a regular incoming
        # is the only thing droppable, and is rejected at the door.
        if incoming.is_key:
            queue[-1] = _fold(incoming, queue[-1])
            return OfferOutcome(admitted=True, folded=True)
        return OfferOutcome(admitted=False)


class CoalesceToKeyFrame(IngestPolicy):
    """Fold the whole backlog into one capsule promoted to a key frame."""

    name = "coalesce-to-key-frame"
    coalesce_backlog = True

    def on_overflow(
        self, queue: Deque[FrameCapsule], incoming: FrameCapsule
    ) -> OfferOutcome:
        capacity = len(queue)  # the queue is exactly full on overflow
        merged = queue.popleft()
        while queue:
            merged = _fold(queue.popleft(), merged)
        merged = replace(merged, is_key=True)
        if capacity == 1:
            # No slot left for a separate backlog capsule: fold the
            # backlog into the incoming frame itself.
            queue.append(_fold(incoming, merged))
            return OfferOutcome(admitted=True, folded=True)
        queue.append(merged)
        queue.append(incoming)
        return OfferOutcome(admitted=True)


_POLICY_TYPES = (DropOldest, DegradeToDistributed, CoalesceToKeyFrame)

#: Registered ingest policy names, in documentation order.
INGEST_POLICIES: Tuple[str, ...] = tuple(p.name for p in _POLICY_TYPES)


def make_ingest_policy(name: str) -> IngestPolicy:
    """Instantiate a registered policy by name."""
    for policy_type in _POLICY_TYPES:
        if policy_type.name == name:
            return policy_type()
    raise ValueError(
        f"unknown ingest policy {name!r}; options: {INGEST_POLICIES}"
    )


class BoundedFrameQueue:
    """A capacity-bounded, conservation-audited per-camera frame queue."""

    def __init__(
        self, camera_id: int, capacity: int, policy: IngestPolicy
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.camera_id = camera_id
        self.capacity = capacity
        self.policy = policy
        self._queue: Deque[FrameCapsule] = deque()
        self.degraded = False
        # The conservation ledger (frame counts, folded frames included).
        self.offered = 0
        self.rejected = 0
        self.evicted = 0
        self.served = 0
        self.stale_dropped = 0
        self.coalesced = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def queued_frames(self) -> int:
        """Frames still in the queue, counting frames folded into capsules."""
        return sum(1 + c.coalesced for c in self._queue)

    @property
    def admitted(self) -> int:
        """Frames that made it past the door (conservation: + rejected
        == offered)."""
        return self.offered - self.rejected

    @property
    def dropped(self) -> int:
        """Frames lost outright: rejected, evicted, or dropped stale."""
        return self.rejected + self.evicted + self.stale_dropped

    def check_conservation(self) -> None:
        """Every offered frame has exactly one disposition."""
        total = (
            self.rejected
            + self.served
            + self.evicted
            + self.stale_dropped
            + self.coalesced
            + self.queued_frames
        )
        if total != self.offered:
            raise AssertionError(
                f"camera {self.camera_id}: conservation violated — "
                f"offered={self.offered} but dispositions sum to {total}"
            )

    # ------------------------------------------------------------------
    def offer(self, capsule: FrameCapsule) -> OfferOutcome:
        """Admit one arriving frame, applying the policy on overflow."""
        if capsule.camera_id != self.camera_id:
            raise ValueError(
                f"capsule for camera {capsule.camera_id} offered to "
                f"camera {self.camera_id}'s queue"
            )
        self.offered += 1
        if len(self._queue) < self.capacity:
            self._queue.append(capsule)
            self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
            return OfferOutcome(admitted=True)
        outcome = self.policy.on_overflow(self._queue, capsule)
        if len(self._queue) > self.capacity:
            raise AssertionError(
                f"policy {self.policy.name!r} left the queue over capacity"
            )
        if not outcome.admitted:
            self.rejected += 1
        for victim in outcome.evicted:
            self.evicted += 1
            self.coalesced += victim.coalesced
        # Folded admissions are accounted when their carrier capsule
        # leaves the queue (``coalesced`` rides on the capsule), so no
        # ledger movement happens here.
        if outcome.admitted and self.policy.degrade_on_overflow:
            self.degraded = True
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
        return outcome

    def poll_upto(self, frame_index: int) -> Optional[PollOutcome]:
        """Serve the freshest frame not newer than ``frame_index``.

        Consumes the whole eligible backlog: older capsules are folded
        into the served one (coalescing policy) or dropped stale (the
        others). Returns ``None`` — a stall — when nothing eligible has
        arrived yet.
        """
        eligible: list[FrameCapsule] = []
        while self._queue and self._queue[0].frame_index <= frame_index:
            eligible.append(self._queue.popleft())
        if not eligible:
            return None
        served = eligible[-1]
        backlog = eligible[:-1]
        stale = 0
        folded = 0
        forced_key = False
        if self.policy.coalesce_backlog:
            for capsule in backlog:
                served = _fold(served, capsule)
                folded += 1 + capsule.coalesced
            if backlog:
                served = replace(served, is_key=True)
                forced_key = True
        else:
            for capsule in backlog:
                if self.policy.degrade_on_overflow and capsule.is_key:
                    # The degrade policy never drops a key frame: fold it
                    # into the served capsule so its central
                    # resynchronization still happens (as a forced key).
                    served = _fold(served, capsule)
                    folded += 1 + capsule.coalesced
                    forced_key = True
                    continue
                stale += 1
                self.stale_dropped += 1
                self.coalesced += capsule.coalesced
        if served.coalesced:
            forced_key = forced_key or served.is_key
        self.served += 1
        self.coalesced += served.coalesced
        return PollOutcome(
            capsule=served,
            stale_dropped=stale,
            folded=folded,
            staleness_frames=frame_index - served.frame_index,
            forced_key=forced_key,
        )

    def count_lost_upstream(self) -> None:
        """Account a frame lost before it ever reached the queue.

        A burst window that outlasts the run swallows its frames: they
        are never offered, but the ledger still owes them a disposition,
        so they book as offered-and-rejected.
        """
        self.offered += 1
        self.rejected += 1

    def clear_degraded(self) -> None:
        """Exit degraded mode (the camera caught up / sat out one pass)."""
        self.degraded = False
