"""The central scheduler node.

Runs at every key frame: receives each camera's detected-object report,
associates them into global objects, solves the MVS instance with the
central-stage BALB algorithm (or the static-partitioning rule for the SP
baseline), and returns per-camera assignments, the camera priority order
and communication cost. Cell masks are computed once — they depend only on
the static camera poses, through the association models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.association.matcher import (
    CrossCameraMatcher,
    GlobalObject,
    LocalObservation,
)
from repro.association.pairwise import PairwiseAssociator
from repro.core.balb import balb_central
from repro.core.masks import CameraMask, build_camera_masks, capacity_owner
from repro.core.problem import MVSInstance, SchedObject
from repro.core.redundancy import balb_redundant
from repro.devices.profiler import DeviceProfile
from repro.geometry.box import BBox, quantize_size
from repro.net.envelope import ChannelGuard, Envelope
from repro.net.link import (
    DEFAULT_RETRY,
    DuplexChannel,
    LinkFault,
    RetryPolicy,
    TransferOutcome,
)
from repro.net.messages import (
    AssignmentMessage,
    DetectionReport,
    SchedulerCheckpoint,
)
from repro.obs.trace import get_tracer
from repro.runtime.overhead import OverheadModel

ReportEntry = Tuple[int, BBox, int]  # (track_id, bbox, gt_id)


@dataclass
class ScheduleDecision:
    """What the central scheduler sends back after a key frame."""

    assigned: Dict[int, List[int]]  # camera -> local track ids to inspect
    shadows: Dict[int, Dict[int, int]]  # camera -> {track_id: assigned_cam}
    priority_order: Tuple[int, ...]
    n_global_objects: int
    central_ms: float  # association + BALB, modeled
    comm_ms: float  # report upload + assignment download
    global_objects: List[GlobalObject] = field(default_factory=list)
    #: Cameras whose assignment download actually arrived. A camera not
    #: in this set must fall back to its stale decision.
    delivered: FrozenSet[int] = frozenset()
    #: Cameras whose report upload was lost (their objects were invisible
    #: to this round of association).
    dropped_reports: FrozenSet[int] = frozenset()
    #: Lost message attempts across the whole exchange (drops + give-ups).
    comm_retries: int = 0
    #: Failover replica piggybacked on one camera's assignment download
    #: (None unless the scheduler was asked to replicate this round).
    checkpoint: Optional[SchedulerCheckpoint] = None
    #: Per-camera download outcome for faulted channels: the wire-level
    #: duplicate/reorder/corruption record the receiver guard consumes.
    down_outcomes: Dict[int, TransferOutcome] = field(default_factory=dict)


class CentralScheduler:
    """Key-frame coordinator implementing the BALB central stage."""

    def __init__(
        self,
        profiles: Dict[int, DeviceProfile],
        associator: PairwiseAssociator,
        frame_sizes: Dict[int, Tuple[int, int]],
        typical_box_sizes: Dict[int, float],
        size_set: Sequence[int],
        mode: str = "balb",
        mask_grid: Tuple[int, int] = (16, 12),
        iou_threshold: float = 0.15,
        overhead_model: Optional[OverheadModel] = None,
        channels: Optional[Dict[int, DuplexChannel]] = None,
        redundancy: int = 1,
        camera_positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        if mode not in ("balb", "balb-cen", "sp"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        if set(profiles) != set(frame_sizes):
            raise ValueError("profiles and frame_sizes must cover the same cameras")
        self.profiles = dict(profiles)
        self.mode = mode
        self.size_set = tuple(sorted(size_set))
        self.matcher = CrossCameraMatcher(associator, iou_threshold)
        self.overheads = overhead_model or OverheadModel()
        self.channels = channels or {}
        self.redundancy = redundancy
        self.camera_positions = dict(camera_positions or {})
        # Mask-fit inputs are retained so membership reconfiguration can
        # re-fit the co-visibility structures over a camera subset.
        self._associator = associator
        self._frame_sizes = dict(frame_sizes)
        self._typical_box_sizes = dict(typical_box_sizes)
        self._mask_grid = mask_grid
        #: Cameras currently in the scheduling membership. Quarantined
        #: cameras are removed by :meth:`refit_members`; their reports
        #: are ignored and no assignment is issued to them.
        self.active_members: FrozenSet[int] = frozenset(profiles)
        self.masks: Dict[int, CameraMask] = build_camera_masks(
            frame_sizes, associator, typical_box_sizes, mask_grid
        )
        #: Receiver guards for the report uplinks: dedupe duplicated
        #: uploads and reject corrupted ones (one per camera, lazily).
        self.report_guards: Dict[int, ChannelGuard] = {}
        #: Processing power per camera (1 / full-frame time), the SP weight.
        self.capacities: Dict[int, float] = {
            cam: 1.0 / profile.t_full for cam, profile in profiles.items()
        }

    # ------------------------------------------------------------------
    def refit_members(self, members: Sequence[int]) -> float:
        """Re-fit the co-visibility structures over a camera subset.

        Called on every fleet-membership change (quarantine, probation
        re-entry, full readmission): rebuilds the ownership masks — the
        offline CrossRoI-style redundancy map — over exactly ``members``,
        so a quarantined camera's cells deterministically reassign to the
        overlapping peers that can still see them, and BALB's candidate
        set (the reports the next ``schedule`` round accepts) shrinks to
        the survivors. Returns the modeled re-fit cost in milliseconds,
        charged to the frame that reconfigured.
        """
        members = sorted(set(members) & set(self.profiles))
        if not members:
            raise ValueError("membership re-fit needs at least one camera")
        self.active_members = frozenset(members)
        sizes = {cam: self._frame_sizes[cam] for cam in members}
        typical = {
            cam: self._typical_box_sizes.get(cam, 60.0) for cam in members
        }
        self.masks.update(
            build_camera_masks(
                sizes, self._associator, typical, self._mask_grid
            )
        )
        return self.overheads.central_stage_ms(0, len(members))

    def schedule(
        self,
        reports: Dict[int, List[ReportEntry]],
        frame_index: int = 0,
        link_faults: Optional[Dict[int, LinkFault]] = None,
        retry: Optional[RetryPolicy] = None,
        replicate_to: Optional[int] = None,
        no_authority: FrozenSet[int] = frozenset(),
    ) -> ScheduleDecision:
        """One central-stage round over the key-frame reports.

        ``link_faults`` (camera -> :class:`LinkFault`) injects message
        loss / latency spikes into the exchange: a report whose upload
        fails after all retries is excluded from association, and a
        camera whose assignment download fails is left out of
        ``decision.delivered`` so the runtime falls back to its stale
        decision. Without faults the exchange is lossless and every
        reporting camera is delivered — the pre-fault behaviour.

        ``replicate_to`` piggybacks a :class:`SchedulerCheckpoint` of
        this round's state on that camera's assignment download (the
        failover warm standby); the extra bytes ride the same modeled
        transfer, and the checkpoint only counts as replicated if the
        download is delivered.

        ``no_authority`` (the probation set) demotes those cameras for
        shared objects: an object another member can also see is never
        assigned to a probation camera — it keeps authority only over
        objects nobody else covers.
        """
        retry = retry or DEFAULT_RETRY
        if len(self.active_members) != len(self.profiles):
            # Quarantined cameras are out of the membership: their
            # reports are not associated and they get no assignment.
            reports = {
                cam: entries
                for cam, entries in reports.items()
                if cam in self.active_members
            }
        faults = {
            cam: fault
            for cam, fault in (link_faults or {}).items()
            if not fault.is_clean
        }
        tracer = get_tracer()
        with tracer.span(
            "scheduler.schedule", frame=frame_index, mode=self.mode
        ) as sched_span:
            # Uplink phase: under faults, decide per camera whether the
            # report survived its (retried) upload before associating.
            up_outcomes: Dict[int, TransferOutcome] = {}
            delivered_reports = reports
            if faults and self.channels:
                delivered_reports = {}
                for cam in sorted(reports):
                    fault = faults.get(cam)
                    channel = self.channels.get(cam)
                    if fault is None or channel is None:
                        delivered_reports[cam] = reports[cam]
                        continue
                    report = self._report_message(
                        cam, reports[cam], frame_index
                    )
                    outcome = channel.up_transfer(
                        report.payload_bytes(), fault, retry
                    )
                    up_outcomes[cam] = outcome
                    if outcome.delivered and self._admit_report(
                        cam, report, outcome
                    ):
                        delivered_reports[cam] = reports[cam]
            with tracer.span("scheduler.associate") as assoc_span:
                observations = {
                    cam: [
                        LocalObservation(
                            camera_id=cam, track_id=tid, bbox=box, gt_id=gt
                        )
                        for tid, box, gt in entries
                    ]
                    for cam, entries in delivered_reports.items()
                }
                global_objects = self.matcher.associate(observations)
                assoc_span.set_tag("n_global_objects", len(global_objects))
            instance = self._build_instance(global_objects)

            with tracer.span("scheduler.solve", mode=self.mode):
                if self.mode in ("balb", "balb-cen"):
                    if self.redundancy > 1:
                        redundant = balb_redundant(
                            instance,
                            k=self.redundancy,
                            include_full_frame=True,
                            vantage_positions=self.camera_positions or None,
                        )
                        assignment = redundant.assignment
                        priority = redundant.priority_order
                    else:
                        result = balb_central(instance, include_full_frame=True)
                        assignment = result.assignment
                        priority = result.priority_order
                else:  # static partitioning
                    assignment = self._sp_assignment(global_objects)
                    priority = tuple(
                        sorted(
                            self.profiles,
                            key=lambda cam: (-self.capacities[cam], cam),
                        )
                    )

            if no_authority:
                self._demote_probation(
                    assignment, global_objects, no_authority
                )

            assigned: Dict[int, List[int]] = {cam: [] for cam in self.profiles}
            shadows: Dict[int, Dict[int, int]] = {
                cam: {} for cam in self.profiles
            }
            for obj in global_objects:
                chosen = assignment.get(obj.global_id)
                if chosen is None:
                    continue
                chosen_set = chosen if isinstance(chosen, tuple) else (chosen,)
                primary = chosen_set[0]
                for cam, obs in obj.members.items():
                    if cam in chosen_set:
                        assigned[cam].append(obs.track_id)
                    else:
                        shadows[cam][obs.track_id] = primary

            n_objects = len(global_objects)
            central_ms = self.overheads.central_stage_ms(
                n_objects, len(self.profiles)
            )
            checkpoint: Optional[SchedulerCheckpoint] = None
            extra_down: Dict[int, int] = {}
            if replicate_to is not None:
                checkpoint = self._build_checkpoint(
                    frame_index, priority, assigned, global_objects
                )
                extra_down[replicate_to] = checkpoint.payload_bytes()
            with tracer.span("scheduler.comm"):
                comm_ms, delivered, retries, down_outcomes = (
                    self._communication_ms(
                        reports, assigned, priority, frame_index,
                        faults, retry, up_outcomes, extra_down,
                    )
                )
            sched_span.set_tag("n_global_objects", n_objects)
        return ScheduleDecision(
            assigned=assigned,
            shadows=shadows,
            priority_order=priority,
            n_global_objects=n_objects,
            central_ms=central_ms,
            comm_ms=comm_ms,
            global_objects=global_objects,
            delivered=delivered,
            dropped_reports=frozenset(reports) - frozenset(delivered_reports),
            comm_retries=retries,
            checkpoint=checkpoint,
            down_outcomes=down_outcomes,
        )

    def _demote_probation(
        self,
        assignment: Dict[int, object],
        global_objects: Sequence[GlobalObject],
        no_authority: FrozenSet[int],
    ) -> None:
        """Strip probation cameras of authority over shared objects.

        For every object assigned to a probation camera that at least
        one full member also observes, the assignment deterministically
        moves to the highest-capacity full member (ties broken by camera
        id). Objects only the probation camera can see stay with it —
        demotion must never create coverage loss.
        """
        for obj in global_objects:
            chosen = assignment.get(obj.global_id)
            if chosen is None:
                continue
            chosen_tuple = isinstance(chosen, tuple)
            chosen_set = chosen if chosen_tuple else (chosen,)
            if not any(cam in no_authority for cam in chosen_set):
                continue
            alternates = [
                cam for cam in sorted(obj.members) if cam not in no_authority
            ]
            if not alternates:
                continue
            kept = tuple(c for c in chosen_set if c not in no_authority)
            if not kept:
                best = max(
                    alternates,
                    key=lambda c: (self.capacities.get(c, 0.0), -c),
                )
                kept = (best,)
            assignment[obj.global_id] = kept if chosen_tuple else kept[0]

    # ------------------------------------------------------------------
    def _build_instance(
        self, global_objects: Sequence[GlobalObject]
    ) -> MVSInstance:
        objects = []
        for obj in global_objects:
            target_sizes = {
                cam: quantize_size(
                    obs.bbox.expand(8.0).long_side, self.size_set
                )
                for cam, obs in obj.members.items()
            }
            objects.append(SchedObject(key=obj.global_id, target_sizes=target_sizes))
        return MVSInstance(profiles=self.profiles, objects=tuple(objects))

    def _sp_assignment(
        self, global_objects: Sequence[GlobalObject]
    ) -> Dict[int, int]:
        """SP: each object goes to the static owner of its position.

        Each observing camera checks its own mask; the owner among the
        observers wins. When no observer owns the object's cell (mask
        imperfection), the object is unassigned — the quality cost the
        paper attributes to SP under imperfect correlation models.
        """
        assignment: Dict[int, int] = {}
        for obj in global_objects:
            for cam in sorted(obj.members):
                obs = obj.members[cam]
                mask = self.masks[cam]
                cell = mask.cell_of(obs.bbox)
                coverage = mask.coverage_of(obs.bbox)
                if capacity_owner(coverage, self.capacities, cell, mask.nx) == cam:
                    assignment[obj.global_id] = cam
                    break
        return assignment

    def _admit_report(
        self, cam: int, report: DetectionReport, outcome: TransferOutcome
    ) -> bool:
        """Run one delivered report upload through the scheduler's guard.

        Corrupted attempts bounce off the checksum, a duplicated final
        copy is deduped, and a reordered report arrives after its key
        frame closed — the guard books its sequence number and the
        camera sits this association round out (exactly like a dropped
        report). Reports always travel at epoch 0: cameras are not
        leadership authorities on the uplink.
        """
        guard = self.report_guards.setdefault(cam, ChannelGuard())
        env = Envelope.seal(
            f"report:{cam}",
            report.frame_index,
            0,
            ",".join(str(t) for t in report.track_ids),
        )
        for _ in range(outcome.corrupt_attempts):
            guard.admit(env.corrupted())
        if outcome.reordered:
            return guard.hold_reordered(env).accepted
        admission = guard.admit(env)
        if outcome.duplicated:
            guard.admit(env)
        return admission.accepted

    def _report_message(
        self, cam: int, entries: List[ReportEntry], frame_index: int
    ) -> DetectionReport:
        return DetectionReport(
            camera_id=cam,
            frame_index=frame_index,
            boxes=tuple(b for _, b, _ in entries),
            track_ids=tuple(t for t, _, _ in entries),
            gt_ids=tuple(g for _, _, g in entries),
        )

    def _build_checkpoint(
        self,
        frame_index: int,
        priority: Tuple[int, ...],
        assigned: Dict[int, List[int]],
        global_objects: Sequence[GlobalObject],
    ) -> SchedulerCheckpoint:
        """Package this round's state for warm-standby replication."""
        return SchedulerCheckpoint(
            frame_index=frame_index,
            priority_order=tuple(priority),
            assigned={cam: tuple(v) for cam, v in sorted(assigned.items())},
            association={
                obj.global_id: tuple(
                    (cam, obj.members[cam].track_id)
                    for cam in sorted(obj.members)
                )
                for obj in global_objects
            },
        )

    def _communication_ms(
        self,
        reports: Dict[int, List[ReportEntry]],
        assigned: Dict[int, List[int]],
        priority: Tuple[int, ...],
        frame_index: int,
        faults: Dict[int, LinkFault],
        retry: RetryPolicy,
        up_outcomes: Dict[int, TransferOutcome],
        extra_down_bytes: Optional[Dict[int, int]] = None,
    ) -> Tuple[float, FrozenSet[int], int, Dict[int, TransferOutcome]]:
        """Max camera-to-scheduler round trip (cameras talk in parallel).

        Returns ``(worst_ms, delivered_cameras, lost_attempts,
        down_outcomes)``. For a faulted camera the round trip replays its
        recorded uplink outcome and simulates the (retried) assignment
        download; lost attempts surface as ``net.retry`` child spans and
        in the link drop counters, and the download's
        :class:`TransferOutcome` is returned so the receiver guard can
        consume its duplicate/reorder/corruption record. Cameras without
        a channel are delivered for free. ``extra_down_bytes`` (camera ->
        bytes) models piggybacked payload on that camera's download (the
        failover checkpoint replica).
        """
        extra = extra_down_bytes or {}
        down_outcomes: Dict[int, TransferOutcome] = {}
        if not self.channels:
            return 0.0, frozenset(reports), 0, down_outcomes
        tracer = get_tracer()
        worst = 0.0
        delivered = {cam for cam in reports if cam not in self.channels}
        lost_attempts = 0
        for cam in sorted(reports):
            channel = self.channels.get(cam)
            if channel is None:
                continue
            report = self._report_message(cam, reports[cam], frame_index)
            reply = AssignmentMessage(
                camera_id=cam,
                frame_index=frame_index,
                assigned_track_ids=tuple(assigned.get(cam, [])),
                camera_priority_order=priority,
                mask_cells=(),  # masks are static; sent once at startup
            )
            down_bytes = reply.payload_bytes() + extra.get(cam, 0)
            fault = faults.get(cam)
            if fault is None:
                worst = max(
                    worst,
                    channel.round_trip_ms(
                        report.payload_bytes(), down_bytes
                    ),
                )
                delivered.add(cam)
                continue
            up = up_outcomes[cam]
            with tracer.span(
                "net.round_trip",
                up_bytes=report.payload_bytes(),
                down_bytes=down_bytes,
                faulted=True,
            ) as span:
                total = up.elapsed_ms
                for _ in range(up.dropped):
                    with tracer.span("net.retry", direction="up"):
                        pass
                if up.delivered:
                    down = channel.down_transfer(
                        down_bytes, fault, retry
                    )
                    down_outcomes[cam] = down
                    total += down.elapsed_ms
                    for _ in range(down.dropped):
                        with tracer.span("net.retry", direction="down"):
                            pass
                    lost_attempts += down.dropped
                    if down.delivered:
                        delivered.add(cam)
                lost_attempts += up.dropped
                span.set_tag("delivered", cam in delivered)
            worst = max(worst, total)
        return worst, frozenset(delivered), lost_attempts, down_outcomes
