"""The central scheduler node.

Runs at every key frame: receives each camera's detected-object report,
associates them into global objects, solves the MVS instance with the
central-stage BALB algorithm (or the static-partitioning rule for the SP
baseline), and returns per-camera assignments, the camera priority order
and communication cost. Cell masks are computed once — they depend only on
the static camera poses, through the association models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.association.matcher import (
    CrossCameraMatcher,
    GlobalObject,
    LocalObservation,
)
from repro.association.pairwise import PairwiseAssociator
from repro.core.balb import balb_central
from repro.core.redundancy import balb_redundant
from repro.core.masks import CameraMask, build_camera_masks, capacity_owner
from repro.core.problem import MVSInstance, SchedObject
from repro.devices.profiler import DeviceProfile
from repro.geometry.box import BBox, quantize_size
from repro.net.link import DuplexChannel
from repro.net.messages import AssignmentMessage, DetectionReport
from repro.obs.trace import get_tracer
from repro.runtime.overhead import OverheadModel

ReportEntry = Tuple[int, BBox, int]  # (track_id, bbox, gt_id)


@dataclass
class ScheduleDecision:
    """What the central scheduler sends back after a key frame."""

    assigned: Dict[int, List[int]]  # camera -> local track ids to inspect
    shadows: Dict[int, Dict[int, int]]  # camera -> {track_id: assigned_cam}
    priority_order: Tuple[int, ...]
    n_global_objects: int
    central_ms: float  # association + BALB, modeled
    comm_ms: float  # report upload + assignment download
    global_objects: List[GlobalObject] = field(default_factory=list)


class CentralScheduler:
    """Key-frame coordinator implementing the BALB central stage."""

    def __init__(
        self,
        profiles: Dict[int, DeviceProfile],
        associator: PairwiseAssociator,
        frame_sizes: Dict[int, Tuple[int, int]],
        typical_box_sizes: Dict[int, float],
        size_set: Sequence[int],
        mode: str = "balb",
        mask_grid: Tuple[int, int] = (16, 12),
        iou_threshold: float = 0.15,
        overhead_model: Optional[OverheadModel] = None,
        channels: Optional[Dict[int, DuplexChannel]] = None,
        redundancy: int = 1,
        camera_positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        if mode not in ("balb", "balb-cen", "sp"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        if set(profiles) != set(frame_sizes):
            raise ValueError("profiles and frame_sizes must cover the same cameras")
        self.profiles = dict(profiles)
        self.mode = mode
        self.size_set = tuple(sorted(size_set))
        self.matcher = CrossCameraMatcher(associator, iou_threshold)
        self.overheads = overhead_model or OverheadModel()
        self.channels = channels or {}
        self.redundancy = redundancy
        self.camera_positions = dict(camera_positions or {})
        self.masks: Dict[int, CameraMask] = build_camera_masks(
            frame_sizes, associator, typical_box_sizes, mask_grid
        )
        #: Processing power per camera (1 / full-frame time), the SP weight.
        self.capacities: Dict[int, float] = {
            cam: 1.0 / profile.t_full for cam, profile in profiles.items()
        }

    # ------------------------------------------------------------------
    def schedule(
        self, reports: Dict[int, List[ReportEntry]], frame_index: int = 0
    ) -> ScheduleDecision:
        """One central-stage round over the key-frame reports."""
        tracer = get_tracer()
        with tracer.span(
            "scheduler.schedule", frame=frame_index, mode=self.mode
        ) as sched_span:
            with tracer.span("scheduler.associate") as assoc_span:
                observations = {
                    cam: [
                        LocalObservation(
                            camera_id=cam, track_id=tid, bbox=box, gt_id=gt
                        )
                        for tid, box, gt in entries
                    ]
                    for cam, entries in reports.items()
                }
                global_objects = self.matcher.associate(observations)
                assoc_span.set_tag("n_global_objects", len(global_objects))
            instance = self._build_instance(global_objects)

            with tracer.span("scheduler.solve", mode=self.mode):
                if self.mode in ("balb", "balb-cen"):
                    if self.redundancy > 1:
                        redundant = balb_redundant(
                            instance,
                            k=self.redundancy,
                            include_full_frame=True,
                            vantage_positions=self.camera_positions or None,
                        )
                        assignment = redundant.assignment
                        priority = redundant.priority_order
                    else:
                        result = balb_central(instance, include_full_frame=True)
                        assignment = result.assignment
                        priority = result.priority_order
                else:  # static partitioning
                    assignment = self._sp_assignment(global_objects)
                    priority = tuple(
                        sorted(
                            self.profiles,
                            key=lambda cam: (-self.capacities[cam], cam),
                        )
                    )

            assigned: Dict[int, List[int]] = {cam: [] for cam in self.profiles}
            shadows: Dict[int, Dict[int, int]] = {
                cam: {} for cam in self.profiles
            }
            for obj in global_objects:
                chosen = assignment.get(obj.global_id)
                if chosen is None:
                    continue
                chosen_set = chosen if isinstance(chosen, tuple) else (chosen,)
                primary = chosen_set[0]
                for cam, obs in obj.members.items():
                    if cam in chosen_set:
                        assigned[cam].append(obs.track_id)
                    else:
                        shadows[cam][obs.track_id] = primary

            n_objects = len(global_objects)
            central_ms = self.overheads.central_stage_ms(
                n_objects, len(self.profiles)
            )
            with tracer.span("scheduler.comm"):
                comm_ms = self._communication_ms(
                    reports, assigned, priority, frame_index
                )
            sched_span.set_tag("n_global_objects", n_objects)
        return ScheduleDecision(
            assigned=assigned,
            shadows=shadows,
            priority_order=priority,
            n_global_objects=n_objects,
            central_ms=central_ms,
            comm_ms=comm_ms,
            global_objects=global_objects,
        )

    # ------------------------------------------------------------------
    def _build_instance(
        self, global_objects: Sequence[GlobalObject]
    ) -> MVSInstance:
        objects = []
        for obj in global_objects:
            target_sizes = {
                cam: quantize_size(
                    obs.bbox.expand(8.0).long_side, self.size_set
                )
                for cam, obs in obj.members.items()
            }
            objects.append(SchedObject(key=obj.global_id, target_sizes=target_sizes))
        return MVSInstance(profiles=self.profiles, objects=tuple(objects))

    def _sp_assignment(
        self, global_objects: Sequence[GlobalObject]
    ) -> Dict[int, int]:
        """SP: each object goes to the static owner of its position.

        Each observing camera checks its own mask; the owner among the
        observers wins. When no observer owns the object's cell (mask
        imperfection), the object is unassigned — the quality cost the
        paper attributes to SP under imperfect correlation models.
        """
        assignment: Dict[int, int] = {}
        for obj in global_objects:
            for cam in sorted(obj.members):
                obs = obj.members[cam]
                mask = self.masks[cam]
                cell = mask.cell_of(obs.bbox)
                coverage = mask.coverage_of(obs.bbox)
                if capacity_owner(coverage, self.capacities, cell, mask.nx) == cam:
                    assignment[obj.global_id] = cam
                    break
        return assignment

    def _communication_ms(
        self,
        reports: Dict[int, List[ReportEntry]],
        assigned: Dict[int, List[int]],
        priority: Tuple[int, ...],
        frame_index: int,
    ) -> float:
        """Max camera-to-scheduler round trip (cameras talk in parallel)."""
        if not self.channels:
            return 0.0
        worst = 0.0
        for cam, channel in self.channels.items():
            entries = reports.get(cam, [])
            report = DetectionReport(
                camera_id=cam,
                frame_index=frame_index,
                boxes=tuple(b for _, b, _ in entries),
                track_ids=tuple(t for t, _, _ in entries),
                gt_ids=tuple(g for _, _, g in entries),
            )
            reply = AssignmentMessage(
                camera_id=cam,
                frame_index=frame_index,
                assigned_track_ids=tuple(assigned.get(cam, [])),
                camera_priority_order=priority,
                mask_cells=(),  # masks are static; sent once at startup
            )
            worst = max(
                worst,
                channel.round_trip_ms(
                    report.payload_bytes(), reply.payload_bytes()
                ),
            )
        return worst
