"""A smart camera node: detector + flow tracker + slicer + GPU executor.

One :class:`CameraNode` is the onboard software of one camera. At key
frames it runs a full-frame inspection and reports its tracks to the
central scheduler; at regular frames it flow-predicts its tracks, applies
the active :class:`~repro.runtime.policies.RegularFramePolicy` to decide
what to inspect, slices, batches, "executes" the batches on the simulated
GPU and refreshes its tracks from the resulting detections.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cameras.camera import Camera
from repro.devices.gpu import GPUExecutor, greedy_plan
from repro.devices.latency import LatencyModel
from repro.devices.profiler import DeviceProfile
from repro.geometry.box import BBox, iou_cost_rows, quantize_size
from repro.ml.hungarian import hungarian
from repro.net.envelope import ChannelGuard
from repro.obs.trace import get_tracer
from repro.runtime.overhead import OverheadModel
from repro.runtime.policies import RegularFramePolicy, TrackView
from repro.vision.detector import Detection, DetectorErrorModel, SimulatedDetector
from repro.vision.flow import FlowNoiseModel, FlowPredictor, find_new_regions
from repro.vision.slicing import Slice, TargetSizeBook, build_slices
from repro.world.entities import WorldObject


class TrackStatus(enum.Enum):
    ASSIGNED = "assigned"  # this camera inspects the track
    SHADOW = "shadow"  # tracked elsewhere; flow-predicted only


@dataclass(slots=True)
class NodeTrack:
    """One locally known object on this camera."""

    track_id: int
    bbox: BBox
    status: TrackStatus = TrackStatus.ASSIGNED
    assigned_camera: Optional[int] = None  # for shadows: who tracks it
    misses: int = 0
    last_gt_id: int = -1


@dataclass
class KeyFrameOutcome:
    inference_ms: float
    detections: List[Detection]
    report: List[Tuple[int, BBox, int]]  # (track_id, bbox, gt_id)
    tracking_ms: float = 0.0


@dataclass
class RegularFrameOutcome:
    inference_ms: float
    detections: List[Detection]
    n_slices: int
    n_new_regions: int
    n_takeovers: int
    tracking_ms: float = 0.0
    distributed_ms: float = 0.0
    batching_ms: float = 0.0


class CameraNode:
    """Onboard pipeline for one camera."""

    def __init__(
        self,
        camera: Camera,
        latency_model: LatencyModel,
        profile: DeviceProfile,
        seed: int = 0,
        detector_errors: Optional[DetectorErrorModel] = None,
        flow_noise: Optional[FlowNoiseModel] = None,
        gpu_jitter: float = 0.02,
        iou_match_threshold: float = 0.2,
        max_misses: int = 2,
        overhead_model: Optional[OverheadModel] = None,
        frame_dt: float = 0.1,
    ) -> None:
        self.camera = camera
        self.latency_model = latency_model
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self.detector = SimulatedDetector(
            camera, detector_errors, np.random.default_rng(seed + 1)
        )
        self.flow = FlowPredictor(flow_noise, np.random.default_rng(seed + 2))
        self.executor = GPUExecutor(
            latency_model, gpu_jitter, np.random.default_rng(seed + 3)
        )
        self.book = TargetSizeBook(latency_model.size_set)
        self.overheads = overhead_model or OverheadModel()
        self.iou_match_threshold = iou_match_threshold
        self.max_misses = max_misses
        self.frame_dt = frame_dt
        self.tracks: Dict[int, NodeTrack] = {}
        self._next_tid = camera.camera_id * 1_000_000
        #: Detector miss-probability multiplier from a ``quality_fade``
        #: fault (1.0 = healthy). Scales every object's miss probability
        #: without changing the detector's RNG draw count, so a factor of
        #: 1.0 is byte-identical to no fade at all.
        self.quality_fade = 1.0
        #: Receiver guard for the assignment downlink: drops corrupted
        #: messages, dedupes duplicated deliveries and fences assignments
        #: from a deposed scheduler epoch (see repro.net.envelope). Pure
        #: state — a clean channel admits everything unchanged.
        self.guard = ChannelGuard()

    # ------------------------------------------------------------------
    # Key frame
    # ------------------------------------------------------------------
    def process_key_frame(
        self,
        objects: Sequence[WorldObject],
        miss_multipliers: Optional[Dict[int, float]] = None,
        boxes: Optional[Dict[int, BBox]] = None,
    ) -> KeyFrameOutcome:
        """Full-frame inspection + authoritative track refresh.

        ``miss_multipliers`` (per ground-truth object id) scale detection
        miss probabilities — the occlusion model's hook. ``boxes`` is the
        frame's cached projection table for this camera, if available.
        """
        tracer = get_tracer()
        inference_ms = self.executor.execute_full_frame()
        with tracer.span("camera.detect"):
            detections = self.detector.detect_full_frame(
                objects,
                self._faded_multipliers(objects, miss_multipliers),
                boxes=boxes,
            )

        with tracer.span("camera.track_refresh"):
            predicted: Dict[int, BBox] = {}
            for tid, track in self.tracks.items():
                box = self.flow.predict(tid)
                predicted[tid] = box if box is not None else track.bbox

            matched, unmatched_dets = self._match_detections(
                predicted, detections
            )
            survivors: Dict[int, NodeTrack] = {}
            for tid, det in matched:
                track = self.tracks[tid]
                track.bbox = det.bbox
                track.last_gt_id = det.gt_object_id
                track.misses = 0
                survivors[tid] = track
                self.flow.observe(tid, det.bbox)
            # Full-frame inspection is authoritative: unseen tracks are gone.
            for tid in list(self.tracks):
                if tid not in survivors:
                    self.flow.drop(tid)
            for det in unmatched_dets:
                track = self._new_track(det)
                survivors[track.track_id] = track
            self.tracks = survivors
            self.book.reset()

        report = [
            (tid, t.bbox, t.last_gt_id) for tid, t in sorted(self.tracks.items())
        ]
        tracking_ms = self.overheads.tracking_ms(len(self.tracks))
        return KeyFrameOutcome(
            inference_ms=inference_ms,
            detections=detections,
            report=report,
            tracking_ms=tracking_ms,
        )

    def apply_schedule(
        self,
        assigned_track_ids: Sequence[int],
        shadow_assignments: Dict[int, int],
    ) -> None:
        """Install the central-stage decision for the new horizon.

        ``assigned_track_ids``: local tracks this camera must inspect.
        ``shadow_assignments``: local track id -> camera id tracking it.
        Tracks mentioned in neither (e.g. association false positives that
        the central stage merged away) stay assigned — losing them would
        silently drop coverage.
        """
        assigned = set(assigned_track_ids)
        for tid, track in self.tracks.items():
            if tid in assigned:
                track.status = TrackStatus.ASSIGNED
                track.assigned_camera = self.camera.camera_id
            elif tid in shadow_assignments:
                track.status = TrackStatus.SHADOW
                track.assigned_camera = shadow_assignments[tid]
            else:
                track.status = TrackStatus.ASSIGNED
                track.assigned_camera = self.camera.camera_id

    # ------------------------------------------------------------------
    # Regular frame
    # ------------------------------------------------------------------
    def process_regular_frame(
        self,
        objects: Sequence[WorldObject],
        policy: RegularFramePolicy,
        miss_multipliers: Optional[Dict[int, float]] = None,
        boxes: Optional[Dict[int, BBox]] = None,
    ) -> RegularFrameOutcome:
        """One regular-frame iteration under ``policy``."""
        tracer = get_tracer()
        # 1. Flow-predict every known track (assigned and shadow alike;
        #    optical flow runs on the whole frame anyway).
        with tracer.span("camera.flow_predict"):
            predicted: Dict[int, BBox] = {}
            flow_predict = self.flow.predict
            frame_w, frame_h = self.camera.frame_size
            for tid, track in list(self.tracks.items()):
                box = flow_predict(tid)
                if box is None:
                    box = track.bbox
                track.bbox = box
                # Inline _left_frame: centre outside the frame drops the
                # track (same grouping as BBox.center).
                cx = (box.x1 + box.x2) / 2.0
                cy = (box.y1 + box.y2) / 2.0
                if not (0.0 <= cx <= frame_w and 0.0 <= cy <= frame_h):
                    self._drop_track(tid)
                    continue
                predicted[tid] = box

        # 2. Policy decides the inspection set; shadow tracks that the
        #    policy claims are takeovers.
        with tracer.span("camera.policy_select"):
            inspect: List[int] = []
            n_takeovers = 0
            tracks = self.tracks
            assigned_status = TrackStatus.ASSIGNED
            shadow_status = TrackStatus.SHADOW
            own_camera_id = self.camera.camera_id
            inspect_track = policy.inspect_track
            for tid in sorted(predicted):
                track = tracks[tid]
                view = TrackView(
                    track_id=tid,
                    bbox=track.bbox,
                    is_assigned=track.status is assigned_status,
                    assigned_camera=track.assigned_camera,
                )
                if inspect_track(view):
                    if track.status is shadow_status:
                        track.status = assigned_status
                        track.assigned_camera = own_camera_id
                        n_takeovers += 1
                    inspect.append(tid)

        # 3. New-region detection (flow finds unexplained moving pixels).
        with tracer.span("camera.new_regions"):
            explained = list(predicted.values())
            regions = find_new_regions(
                self.camera,
                objects,
                explained,
                self._rng,
                noise=self.flow.noise,
                dt=self.frame_dt,
                boxes=boxes,
            )
            new_slices: List[Slice] = []
            for region in regions:
                if not policy.allow_new_region(region):
                    continue
                track = NodeTrack(track_id=self._alloc_tid(), bbox=region)
                self.tracks[track.track_id] = track
                size = quantize_size(region.long_side, self.book.size_set)
                self.book.assign(track.track_id, region)
                new_slices.append(
                    Slice(key=track.track_id, region=region, target_size=size)
                )

        # 4. Slice + batch + execute.
        with tracer.span("camera.slice") as slice_span:
            slices = build_slices(
                {tid: predicted[tid] for tid in inspect},
                self.book,
                self.camera.frame_size,
            )
            slices.extend(new_slices)
            counts: Dict[int, int] = {}
            for s in slices:
                counts[s.target_size] = counts.get(s.target_size, 0) + 1
            plan = greedy_plan(counts, self.latency_model)
            slice_span.set_tag("n_slices", len(slices))
        inference_ms = self.executor.execute(plan).total_ms if plan else 0.0

        # 5. Detect within the slices and refresh tracks.
        with tracer.span("camera.detect"):
            detections = self.detector.detect_regions(
                objects,
                [s.region for s in slices],
                self._faded_multipliers(objects, miss_multipliers),
                boxes=boxes,
            )
        with tracer.span("camera.track_refresh"):
            inspected_boxes = {s.key: s.region for s in slices}
            for tid in inspect:
                inspected_boxes[tid] = predicted[tid]
            matched, unmatched_dets = self._match_detections(
                inspected_boxes, detections
            )
            matched_tids = set()
            for tid, det in matched:
                track = self.tracks.get(tid)
                if track is None:
                    continue
                track.bbox = det.bbox
                track.last_gt_id = det.gt_object_id
                track.misses = 0
                matched_tids.add(tid)
                self.flow.observe(tid, det.bbox)
            # Inspected tracks with no detection accumulate misses.
            for s in slices:
                tid = s.key
                if tid in matched_tids or tid not in self.tracks:
                    continue
                track = self.tracks[tid]
                track.misses += 1
                if track.misses > self.max_misses:
                    self._drop_track(tid)

        total_mpx = sum(b.size * b.size * b.count for b in plan) / 1e6
        return RegularFrameOutcome(
            inference_ms=inference_ms,
            detections=detections,
            n_slices=len(slices),
            n_new_regions=len(new_slices),
            n_takeovers=n_takeovers,
            tracking_ms=self.overheads.tracking_ms(len(self.tracks)),
            distributed_ms=self.overheads.distributed_ms(len(predicted)),
            batching_ms=self.overheads.batching_ms(
                sum(counts.values()), len(plan), total_mpx
            ),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def set_quality_fade(self, factor: float) -> None:
        """Install this frame's ``quality_fade`` miss multiplier."""
        if factor < 1.0:
            raise ValueError("quality fade factor must be >= 1")
        self.quality_fade = factor

    def _faded_multipliers(
        self,
        objects: Sequence[WorldObject],
        miss_multipliers: Optional[Dict[int, float]],
    ) -> Optional[Dict[int, float]]:
        """Fold the quality-fade factor into the miss multipliers."""
        if self.quality_fade == 1.0:
            return miss_multipliers
        base = miss_multipliers or {}
        return {
            obj.object_id: self.quality_fade * base.get(obj.object_id, 1.0)
            for obj in objects
        }

    def assigned_track_count(self) -> int:
        """Number of tracks this camera currently inspects."""
        return sum(
            1 for t in self.tracks.values() if t.status is TrackStatus.ASSIGNED
        )

    def _match_detections(
        self,
        reference_boxes: Dict[int, BBox],
        detections: Sequence[Detection],
    ) -> Tuple[List[Tuple[int, Detection]], List[Detection]]:
        """Hungarian IoU matching of detections onto reference boxes."""
        if not reference_boxes or not detections:
            return [], list(detections)
        tids = sorted(reference_boxes)
        # Cost matrix as nested lists: iou_cost_rows is bit-identical to
        # the per-pair ``1.0 - BBox.iou`` loop it replaces, and the list
        # form feeds hungarian without an ndarray round-trip.
        cost = iou_cost_rows(
            [reference_boxes[tid] for tid in tids],
            [det.bbox for det in detections],
        )
        matched: List[Tuple[int, Detection]] = []
        used = set()
        for r, c in hungarian(cost):
            if cost[r][c] <= 1.0 - self.iou_match_threshold:
                matched.append((tids[r], detections[c]))
                used.add(c)
        unmatched = [d for i, d in enumerate(detections) if i not in used]
        return matched, unmatched

    def _new_track(self, det: Detection) -> NodeTrack:
        track = NodeTrack(
            track_id=self._alloc_tid(),
            bbox=det.bbox,
            last_gt_id=det.gt_object_id,
        )
        self.tracks[track.track_id] = track
        self.flow.observe(track.track_id, det.bbox)
        return track

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _drop_track(self, tid: int) -> None:
        self.tracks.pop(tid, None)
        self.flow.drop(tid)
        self.book.drop(tid)

    def _left_frame(self, box: BBox) -> bool:
        """Centre-outside-frame test (inlined on the regular-frame path)."""
        w, h = self.camera.frame_size
        cx, cy = box.center
        return not (0.0 <= cx <= w and 0.0 <= cy <= h)
