"""Per-camera regular-frame policies for the four scheduling modes.

A policy answers two questions each regular frame, per camera:

* ``inspect_track`` — should this camera spend DNN time on this track?
* ``allow_new_region`` — should this camera start tracking a new object
  that appeared at this location?

The four modes of the paper's evaluation map onto these hooks:
BALB (central + distributed), BALB-Cen (central only), BALB-Ind
(no coordination) and Static Partitioning.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.core.distributed import DistributedPolicy
from repro.core.masks import CameraMask, capacity_owner
from repro.geometry.box import BBox


class TrackView:
    """The minimal track info a policy sees (decouples policies from nodes)."""

    __slots__ = ("track_id", "bbox", "is_assigned", "assigned_camera")

    def __init__(
        self,
        track_id: int,
        bbox: BBox,
        is_assigned: bool,
        assigned_camera: Optional[int],
    ) -> None:
        self.track_id = track_id
        self.bbox = bbox
        self.is_assigned = is_assigned
        self.assigned_camera = assigned_camera


class RegularFramePolicy(abc.ABC):
    """Decision rules one camera applies on regular frames."""

    @abc.abstractmethod
    def inspect_track(self, track: TrackView) -> bool:
        """Spend DNN inspection on this track this frame?"""

    @abc.abstractmethod
    def allow_new_region(self, box: BBox) -> bool:
        """Start tracking a new object appearing at ``box``?"""


class BALBPolicy(RegularFramePolicy):
    """Full BALB: central assignment + the distributed stage rules."""

    def __init__(
        self, distributed: DistributedPolicy, enable_distributed: bool = True
    ) -> None:
        self.distributed = distributed
        self.enable_distributed = enable_distributed

    def inspect_track(self, track: TrackView) -> bool:
        if track.is_assigned:
            return True
        if not self.enable_distributed:
            return False
        # Shadow track: take over only when its assigned camera lost it
        # and this camera is the highest-priority remaining observer.
        if track.assigned_camera is None:
            return False
        return self.distributed.should_take_over(
            track.bbox, track.assigned_camera
        )

    def allow_new_region(self, box: BBox) -> bool:
        if not self.enable_distributed:
            return False
        return self.distributed.should_track_new_object(box)


class CentralOnlyPolicy(BALBPolicy):
    """BALB-Cen: the central assignment only, no distributed stage."""

    def __init__(self, distributed: DistributedPolicy) -> None:
        super().__init__(distributed, enable_distributed=False)


class IndependentPolicy(RegularFramePolicy):
    """BALB-Ind: no coordination; track everything this camera sees."""

    def inspect_track(self, track: TrackView) -> bool:
        return True

    def allow_new_region(self, box: BBox) -> bool:
        return True


class StaticPartitioningPolicy(RegularFramePolicy):
    """SP baseline: fixed capacity-proportional region ownership.

    A camera inspects exactly the objects whose current position falls in
    its statically allocated cells, regardless of load (Section IV-C).
    """

    def __init__(
        self,
        camera_id: int,
        mask: CameraMask,
        capacities: Dict[int, float],
    ) -> None:
        self.camera_id = camera_id
        self.mask = mask
        self.capacities = dict(capacities)

    def _owns(self, box: BBox) -> bool:
        cell = self.mask.cell_of(box)
        coverage = self.mask.coverage_of(box)
        return (
            capacity_owner(coverage, self.capacities, cell, self.mask.nx)
            == self.camera_id
        )

    def inspect_track(self, track: TrackView) -> bool:
        return self._owns(track.bbox)

    def allow_new_region(self, box: BBox) -> bool:
        return self._owns(box)
