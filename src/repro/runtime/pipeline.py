"""End-to-end pipeline: scenario -> trained models -> scheduled run.

This is the top-level entry point of the reproduction. Given a scenario
and a policy name it (1) trains the cross-camera association models on a
training segment of the simulated world (the paper's first-half-of-video
protocol), (2) profiles the devices offline, (3) replays a test segment
under the chosen scheduling policy, and (4) returns a
:class:`~repro.runtime.metrics.RunResult` with the recall/latency/overhead
metrics of Figures 12-14 and Table II.

Policies: ``full``, ``balb``, ``balb-cen``, ``balb-ind``, ``sp``.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
import pickle
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.association.pairwise import PairwiseAssociator
from repro.association.training import collect_association_dataset
from repro.cache import ArtifactCache, get_active_cache
from repro.cameras.occlusion import OcclusionModel, visible_fractions
from repro.cameras.projection import FrameProjectionCache
from repro.cameras.rig import CameraRig
from repro.checkpoint import RunCheckpoint, save_checkpoint
from repro.core.distributed import DistributedPolicy
from repro.devices.profiler import DeviceProfile, profile_device
from repro.devices.profiles import latency_model_for
from repro.faults.schedule import FaultSchedule, FrameFaults
from repro.faults.spec import resolve_faults
from repro.net.envelope import DROP_STALE_EPOCH, Envelope
from repro.net.heartbeat import LeaseConfig
from repro.net.link import DuplexChannel, RetryPolicy
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import WALL_CLOCK, Clock, Tracer, get_tracer, use_tracer
from repro.runtime.camera_node import CameraNode
from repro.runtime.events import EventQueue
from repro.runtime.failover import PRIMARY, Authority, FailoverManager
from repro.runtime.health import (
    FleetHealthWatchdog,
    HealthSignals,
    HealthState,
    content_token,
)
from repro.runtime.invariants import InvariantMonitor
from repro.runtime.ingest import (
    INGEST_POLICIES,
    BoundedFrameQueue,
    FrameCapsule,
    make_ingest_policy,
)
from repro.runtime.metrics import FrameRecord, RunResult
from repro.runtime.overhead import OverheadModel
from repro.runtime.policies import (
    BALBPolicy,
    CentralOnlyPolicy,
    IndependentPolicy,
    RegularFramePolicy,
    StaticPartitioningPolicy,
)
from repro.runtime.scheduler_node import CentralScheduler, ScheduleDecision
from repro.runtime.synchronization import (
    SkewModel,
    WorldHistory,
    drifted_lag,
    snapshot_objects,
)
from repro.scenarios.builder import Scenario
from repro.serving.edge import ServingEdge
from repro.world.world import World

POLICIES = ("full", "balb", "balb-cen", "balb-ind", "sp")
_CENTRALIZED = ("balb", "balb-cen", "sp")

#: Frame-loop implementations: the classic synchronous per-frame loop,
#: and the deterministic event kernel with a bounded ingest edge.
RUNTIMES = ("sync", "event")

#: Per-frame data paths: batched struct-of-arrays projections ("soa") or
#: the retained per-object scalar reference path ("scalar"). Bit-identical
#: by contract; see PipelineConfig.sim_path.
SIM_PATHS = ("soa", "scalar")

#: Event priorities: frame arrivals land in the ingest queues strictly
#: before the dispatch that may consume them at the same simulated time.
_EV_ARRIVAL = 0
_EV_DISPATCH = 1


#: Post-warmup world snapshots, keyed by (scenario identity, seed,
#: warmup_s, dt). Warming a world replays a few hundred identical
#: simulation steps before every run; the pickle round-trip restores
#: float64 coordinates and Generator state exactly, so a restored world
#: is interchangeable with a freshly warmed one. Every caller — the
#: first included — receives the round-tripped object, keeping run
#: provenance uniform. Bounded LRU so long test sessions with many
#: throwaway scenarios cannot accumulate snapshots.
_WARM_WORLD_CAP = 8
_WARM_WORLD_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()


def _warmed_world(
    scenario: Scenario, seed: int, warmup_s: float, dt: float
) -> World:
    """A freshly restored copy of the scenario's post-warmup world."""
    key = (id(scenario), seed, warmup_s, dt)
    entry = _WARM_WORLD_MEMO.get(key)
    # The held scenario reference pins its id; an identity mismatch means
    # the id was recycled after an eviction, so rebuild.
    if entry is None or entry[0] is not scenario:
        world = World(scenario.world_factory(seed))
        world.run(warmup_s, dt)
        entry = (scenario, pickle.dumps(world, pickle.HIGHEST_PROTOCOL))
        _WARM_WORLD_MEMO[key] = entry
        while len(_WARM_WORLD_MEMO) > _WARM_WORLD_CAP:
            _WARM_WORLD_MEMO.popitem(last=False)
    else:
        _WARM_WORLD_MEMO.move_to_end(key)
    return pickle.loads(entry[1])


def _split_coverage(objects, down, coverage_fn) -> Tuple[frozenset, frozenset]:
    """Split observable objects into (visible_gt, coverage_lost).

    ``coverage_fn(obj)`` yields the cameras that could observe ``obj``
    this frame. Objects whose entire coverage set is down are coverage
    loss — no scheduling decision can recover them — and are kept out of
    the recall denominator.
    """
    visible = set()
    lost = set()
    for o in objects:
        covered = coverage_fn(o)
        if not covered:
            continue
        if down and all(c in down for c in covered):
            lost.add(o.object_id)
        else:
            visible.add(o.object_id)
    return frozenset(visible), frozenset(lost)


@dataclass
class PipelineConfig:
    """Knobs of one pipeline run."""

    policy: str = "balb"
    horizon: int = 10  # frames per scheduling horizon (T)
    n_horizons: int = 30
    warmup_s: float = 20.0
    train_duration_s: float = 120.0
    seed: int = 0
    mask_grid: Tuple[int, int] = (16, 12)
    gpu_jitter: float = 0.02
    use_network: bool = True
    occlusion: bool = False  # inter-object occlusion in the detector
    redundancy: int = 1  # cameras per object (Section V extension)
    max_camera_lag_frames: int = 0  # imperfect synchronization (Section V)
    trace: bool = False  # collect a per-frame span trace into RunResult
    #: Fault injection: None (disabled), a spec string / chaos preset name
    #: (see repro.faults.spec), a FaultSchedule, or a FaultModel compiled
    #: against this run's seed. With None the fault-free code path is
    #: bit-identical to a build without fault support.
    faults: Optional[object] = None
    #: Report/assignment exchange resilience (only exercised under faults):
    #: per-attempt timeout, bounded retries, linear backoff — modeled in ms
    #: and charged to the key frame's communication latency.
    link_timeout_ms: float = 60.0
    link_max_retries: int = 3
    link_backoff_ms: float = 20.0
    #: Scheduler failover (only armed when the fault plan contains
    #: scheduler_crash events): heartbeat cadence and lease width of the
    #: warm-standby protocol. Detection latency is bounded by their
    #: product, in frames.
    failover_heartbeat_frames: int = 5
    failover_lease_misses: int = 1
    #: Epoch fencing: every leadership change bumps the scheduling epoch
    #: and receivers drop assignments from older epochs. ``False``
    #: selects the legacy protocol (everything stays at epoch 0), which
    #: is split-brain-prone under scheduler partitions — kept for the
    #: regression harness that proves the invariant monitor catches it.
    epoch_fencing: bool = True
    #: Always-on control-plane invariant monitor (repro.runtime.invariants):
    #: pure bookkeeping that raises InvariantViolation the moment a safety
    #: property breaks. Disable only to observe a violating run to its end.
    check_invariants: bool = True
    #: Crash-consistent checkpointing: with ``checkpoint_path`` set the
    #: run snapshots its full state there every ``checkpoint_every``
    #: frames (0 = only on interruption), and ``stop_after_frames``
    #: simulates an interruption — the run checkpoints and stops after
    #: that many frames. A resumed run is bit-identical to an
    #: uninterrupted one (wall-clock observations aside).
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    stop_after_frames: Optional[int] = None
    #: Frame-loop implementation. ``sync`` is the classic per-frame loop;
    #: ``event`` drives the same per-frame processing from a deterministic
    #: event kernel with per-camera bounded ingest queues. With no
    #: ingest_burst faults the two are byte-identical.
    runtime: str = "sync"
    #: Ingest edge (event runtime only): per-camera queue capacity and the
    #: backpressure policy applied when a burst overflows it.
    ingest_capacity: int = 4
    ingest_policy: str = "drop-oldest"
    #: Read-side serving edge: number of simulated live-state subscribers
    #: (0 = edge disabled) and the snapshot publication cadence in frames.
    serve_subscribers: int = 0
    serve_every: int = 1
    #: Fleet health watchdog (repro.runtime.health): armed only when the
    #: fault plan contains degraded-sensor events (freeze/drift/flap/fade),
    #: so every other run keeps its pre-watchdog byte-exact outputs.
    #: Disable to observe an unguarded fleet degrade.
    fleet_health: bool = True
    #: Per-frame data path. ``soa`` batches each camera's projections over
    #: a struct-of-arrays frame snapshot and shares the table across every
    #: consumer; ``scalar`` is the retained per-object reference path. The
    #: two are bit-identical (enforced by tests) — ``scalar`` exists as
    #: the equivalence oracle, not as a supported production mode.
    sim_path: str = "soa"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; options: {POLICIES}"
            )
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.n_horizons < 1:
            raise ValueError("n_horizons must be >= 1")
        if self.redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        if self.max_camera_lag_frames < 0:
            raise ValueError("max_camera_lag_frames must be non-negative")
        if self.gpu_jitter < 0:
            raise ValueError("gpu_jitter must be non-negative")
        if self.link_timeout_ms < 0:
            raise ValueError("link_timeout_ms must be non-negative")
        if self.link_max_retries < 1:
            raise ValueError("link_max_retries must be >= 1")
        if self.link_backoff_ms < 0:
            raise ValueError("link_backoff_ms must be non-negative")
        if self.failover_heartbeat_frames < 1:
            raise ValueError("failover_heartbeat_frames must be >= 1")
        if self.failover_lease_misses < 1:
            raise ValueError("failover_lease_misses must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.stop_after_frames is not None and self.stop_after_frames < 1:
            raise ValueError("stop_after_frames must be >= 1")
        if self.checkpoint_path is None and (
            self.checkpoint_every > 0 or self.stop_after_frames is not None
        ):
            raise ValueError(
                "checkpoint_every/stop_after_frames need checkpoint_path"
            )
        if self.runtime not in RUNTIMES:
            raise ValueError(
                f"unknown runtime {self.runtime!r}; options: {RUNTIMES}"
            )
        if self.sim_path not in SIM_PATHS:
            raise ValueError(
                f"unknown sim_path {self.sim_path!r}; options: {SIM_PATHS}"
            )
        if self.ingest_capacity < 1:
            raise ValueError("ingest_capacity must be >= 1")
        if self.ingest_policy not in INGEST_POLICIES:
            raise ValueError(
                f"unknown ingest policy {self.ingest_policy!r}; "
                f"options: {INGEST_POLICIES}"
            )
        if self.serve_subscribers < 0:
            raise ValueError("serve_subscribers must be non-negative")
        if self.serve_every < 1:
            raise ValueError("serve_every must be >= 1")
        if self.checkpoint_path is not None and self.runtime == "event":
            raise ValueError(
                "the event runtime does not checkpoint; use runtime='sync' "
                "for checkpoint/resume runs"
            )
        if self.checkpoint_path is not None and self.serve_subscribers > 0:
            raise ValueError(
                "the serving edge does not checkpoint; disable "
                "serve_subscribers for checkpoint/resume runs"
            )

    def retry_policy(self) -> RetryPolicy:
        """The link retry policy these knobs describe."""
        return RetryPolicy(
            max_attempts=self.link_max_retries,
            timeout_ms=self.link_timeout_ms,
            backoff_ms=self.link_backoff_ms,
        )


@dataclass
class TrainedModels:
    """Artifacts shared between runs of the same scenario/seed."""

    associator: Optional[PairwiseAssociator]
    typical_box_sizes: Dict[int, float]
    profiles: Dict[int, DeviceProfile]


@dataclass
class _RunState:
    """Everything mutable about a run in flight.

    This is the checkpoint payload: pickling one object keeps shared
    references (the scheduler's channels, the nodes' executors) shared
    on restore, which is what makes a resumed run bit-identical to an
    uninterrupted one. ``next_frame`` is the first frame the loop has
    not yet processed.
    """

    next_frame: int
    total_frames: int
    dt: float
    world: object
    rig: CameraRig
    nodes: Dict[int, CameraNode]
    scheduler: Optional[CentralScheduler]
    policies: Dict[int, RegularFramePolicy]
    result: RunResult
    registry: MetricsRegistry
    camera_ids: List[int]
    faults: Optional[FaultSchedule]
    retry: RetryPolicy
    prev_down: frozenset
    stale_horizons: Dict[int, int]
    central_amortized: float
    occlusion: Optional[OcclusionModel]
    history: Optional[WorldHistory]
    camera_lags: Dict[int, int]
    failover: Optional[FailoverManager]
    invariants: Optional[InvariantMonitor]
    #: Fleet health (armed only under degraded-sensor faults): the
    #: watchdog, the captured snapshot each frozen camera keeps seeing,
    #: and whether a membership change last frame wants an early key
    #: frame to re-run the central stage over the new membership.
    health: Optional[FleetHealthWatchdog] = None
    frozen_views: Dict[int, List[object]] = field(default_factory=dict)
    health_forced_key: bool = False


@dataclass
class _FrameIngest:
    """The ingest edge's view of one dispatched frame (event runtime).

    Built by draining the per-camera bounded queues at a dispatch tick.
    ``stalled`` cameras had nothing eligible to serve (their frame is
    held back by a burst); ``degraded`` cameras overflowed under the
    degrade policy and sit out their next central-stage participation;
    ``forced_key`` requests an early key frame because a coalesced
    backlog needs a central resynchronization. ``applied_degrades`` is
    written back by the frame processor so the event loop knows which
    queues to take out of degraded mode.
    """

    stalled: frozenset
    degraded: frozenset
    forced_key: bool
    stale_drops: Dict[int, int]
    folded: Dict[int, int]
    staleness: Dict[int, int]
    applied_degrades: set = field(default_factory=set)

    @property
    def any_active(self) -> bool:
        """False exactly when ingest was a transparent pass-through."""
        return bool(
            self.stalled or self.degraded or self.forced_key
            or self.stale_drops or self.folded or self.staleness
        )


def trained_models_key(
    cache: ArtifactCache,
    scenario: Scenario,
    config: PipelineConfig,
    need_association: bool = True,
) -> str:
    """Cache key of the :func:`train_models` artifact for these inputs.

    Only the config fields the offline stage actually reads participate,
    so runs that differ in policy/horizon/faults share one artifact.
    """
    return cache.key_for(
        kind="trained-models",
        scenario=scenario,
        seed=config.seed,
        warmup_s=config.warmup_s,
        train_duration_s=config.train_duration_s,
        need_association=need_association,
    )


def train_models(
    scenario: Scenario, config: PipelineConfig, need_association: bool = True
) -> TrainedModels:
    """Offline stage: fit association models and profile devices.

    When an artifact cache is active (:func:`repro.cache.use_cache`) the
    fitted models are loaded from / stored into it content-addressed, so
    repeated harness runs over the same (scenario, seed, training knobs)
    fit each artifact exactly once. Training is deterministic and the
    pickle round-trip is exact, so a cached artifact is interchangeable
    with a fresh fit.
    """
    cache = get_active_cache()
    if cache is None:
        return _train_models(scenario, config, need_association)
    key = trained_models_key(cache, scenario, config, need_association)
    cached = cache.get(key)
    if cached is not None:
        return cached
    trained = _train_models(scenario, config, need_association)
    cache.put(key, trained)
    return trained


def _train_models(
    scenario: Scenario, config: PipelineConfig, need_association: bool
) -> TrainedModels:
    device_map = scenario.device_map()
    profiles: Dict[int, DeviceProfile] = {}
    for cam in scenario.cameras:
        device = device_map[cam.camera_id]
        model = latency_model_for(
            device, full_frame=cam.frame_size
        )
        profiles[cam.camera_id] = profile_device(
            model, device.name, seed=config.seed + cam.camera_id
        )

    associator: Optional[PairwiseAssociator] = None
    typical: Dict[int, float] = {c.camera_id: 60.0 for c in scenario.cameras}
    if need_association:
        world, rig = scenario.build(seed=config.seed)
        world.run(config.warmup_s, scenario.frame_interval)
        dataset = collect_association_dataset(
            world, rig, duration_s=config.train_duration_s,
            dt=scenario.frame_interval,
        )
        associator = PairwiseAssociator().fit(dataset)
        typical.update(_typical_box_sizes(dataset, typical))
    return TrainedModels(
        associator=associator, typical_box_sizes=typical, profiles=profiles
    )


def _typical_box_sizes(dataset, default: Dict[int, float]) -> Dict[int, float]:
    """Median box side per source camera, from the training features."""
    per_cam: Dict[int, List[float]] = {}
    for (source, _), pair_ds in dataset.pairs.items():
        for feats in pair_ds.features:
            per_cam.setdefault(source, []).append(max(feats[2], feats[3]))
    return {
        cam: float(np.median(v)) for cam, v in per_cam.items() if v
    } or dict(default)


class Pipeline:
    """Runs one policy over one scenario and collects metrics."""

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[PipelineConfig] = None,
        trained: Optional[TrainedModels] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or PipelineConfig()
        need_assoc = self.config.policy in _CENTRALIZED
        self.trained = trained or train_models(
            scenario, self.config, need_association=need_assoc
        )
        if need_assoc and self.trained.associator is None:
            raise ValueError(
                f"policy {self.config.policy!r} needs trained association models"
            )
        self.overheads = OverheadModel()
        # Wall-clock observations (frame_wall_ms) go through an injectable
        # clock so tests can pin them and the event runtime could swap in
        # simulated time without touching the frame processor.
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        self.serving: Optional[ServingEdge] = None
        if self.config.serve_subscribers > 0:
            self.serving = ServingEdge(
                subscribers=self.config.serve_subscribers,
                publish_every=self.config.serve_every,
            )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the configured run and return its metrics.

        With ``config.trace`` the run activates a fresh
        :class:`~repro.obs.trace.Tracer` and threads the finished span
        forest into ``RunResult.spans``; otherwise whatever ambient tracer
        is active (normally the zero-cost no-op tracer) is left in place.
        A per-run metrics registry snapshot always lands in
        ``RunResult.metrics``.
        """
        config = self.config
        if config.trace:
            tracer = Tracer()
            activation = use_tracer(tracer)
        else:
            tracer = get_tracer()
            activation = nullcontext()
        registry = MetricsRegistry()
        with activation:
            state = self._init_state(registry)
            if config.runtime == "event":
                result = self._event_loop(state, tracer)
            else:
                result = self._frame_loop(state, tracer)
        if config.trace:
            result.spans = tracer.records
        result.metrics = registry.export()
        return result

    def resume_state(self, state: _RunState) -> RunResult:
        """Continue a checkpointed run from ``state`` to completion.

        The counterpart of :meth:`run` for a state restored by
        :func:`repro.checkpoint.resume_run`: same tracer/metrics
        plumbing, but the frame loop picks up at ``state.next_frame``
        with the checkpointed registry instead of a fresh one.
        """
        config = self.config
        if config.trace:
            tracer = Tracer()
            activation = use_tracer(tracer)
        else:
            tracer = get_tracer()
            activation = nullcontext()
        with activation:
            result = self._frame_loop(state, tracer)
        if config.trace:
            result.spans = tracer.records
        result.metrics = state.registry.export()
        return result

    def _init_state(self, registry: MetricsRegistry) -> _RunState:
        """Build the mutable run state the frame loop advances."""
        config = self.config
        scenario = self.scenario
        dt = scenario.frame_interval

        # Fresh test world, decorrelated from the training segment. The
        # post-warmup state comes from the snapshot memo; the rig is
        # rebuilt directly so its cameras stay the scenario's own
        # (static) camera objects, exactly as scenario.build does.
        world = _warmed_world(
            scenario, config.seed + 10_000, config.warmup_s, dt
        )
        rig = CameraRig(scenario.cameras)

        nodes = self._build_nodes(rig, dt)
        scheduler = self._build_scheduler(rig) if config.policy in _CENTRALIZED else None
        policies: Dict[int, RegularFramePolicy] = self._static_policies(rig, scheduler)

        result = RunResult(
            policy=config.policy,
            scenario=scenario.name,
            horizon=config.horizon,
        )
        total_frames = config.horizon * config.n_horizons
        camera_ids = [cam.camera_id for cam in rig]

        # Fault injection: compiled up front from its own seed stream, so
        # fault randomness never interleaves with the simulation RNGs. None
        # (the default) keeps every code path below byte-identical to a
        # fault-free build.
        faults: Optional[FaultSchedule] = resolve_faults(
            config.faults, camera_ids, total_frames, config.seed + 31_337
        )
        if (
            faults is not None
            and faults.has_ingest_bursts
            and config.runtime != "event"
        ):
            raise ValueError(
                "ingest_burst faults need the event runtime "
                "(runtime='event'): the sync loop has no ingest edge to "
                "absorb a burst"
            )
        stale_horizons: Dict[int, int] = {cam: 0 for cam in camera_ids}

        occlusion = OcclusionModel() if config.occlusion else None
        history: Optional[WorldHistory] = None
        camera_lags: Dict[int, int] = {cam.camera_id: 0 for cam in rig}
        if config.max_camera_lag_frames > 0:
            skew = SkewModel(max_lag_frames=config.max_camera_lag_frames)
            lag_rng = np.random.default_rng(config.seed + 777)
            camera_lags = skew.sample_lags(
                [cam.camera_id for cam in rig], lag_rng
            )
            history = WorldHistory(depth=config.max_camera_lag_frames + 1)
        # Clock drift generalizes the static skew: size the history for
        # the worst static + drifted lag any camera can reach this run.
        max_drift = (
            faults.max_drift_lag(total_frames) if faults is not None else 0
        )
        if max_drift > 0:
            history = WorldHistory(
                depth=config.max_camera_lag_frames + max_drift + 1
            )

        # The fleet health watchdog is armed only when the fault plan can
        # actually degrade a sensor: every other run keeps the
        # pre-watchdog code path (and its bit-exact outputs) untouched.
        health: Optional[FleetHealthWatchdog] = None
        if (
            config.fleet_health
            and faults is not None
            and faults.has_sensor_faults
        ):
            health = FleetHealthWatchdog(camera_ids)

        # Failover is armed only when the fault plan can actually take the
        # scheduler down: every other run keeps the pre-failover code path
        # (and its bit-exact outputs) untouched.
        failover: Optional[FailoverManager] = None
        if (
            scheduler is not None
            and faults is not None
            and faults.has_scheduler_faults
        ):
            failover = FailoverManager(
                camera_ids,
                scheduler.capacities,
                lease=LeaseConfig(
                    heartbeat_interval_frames=config.failover_heartbeat_frames,
                    lease_misses=config.failover_lease_misses,
                ),
                frame_dt_s=dt,
                channels=scheduler.channels,
                overheads=scheduler.overheads,
                fencing=config.epoch_fencing,
            )

        return _RunState(
            next_frame=0,
            total_frames=total_frames,
            dt=dt,
            world=world,
            rig=rig,
            nodes=nodes,
            scheduler=scheduler,
            policies=policies,
            result=result,
            registry=registry,
            camera_ids=camera_ids,
            faults=faults,
            retry=config.retry_policy(),
            prev_down=frozenset(),
            stale_horizons=stale_horizons,
            central_amortized=0.0,
            occlusion=occlusion,
            history=history,
            camera_lags=camera_lags,
            failover=failover,
            invariants=(
                InvariantMonitor() if config.check_invariants else None
            ),
            health=health,
        )

    def _save_state(self, state: _RunState) -> None:
        """Checkpoint the run as-of ``state.next_frame`` (atomic write)."""
        assert self.config.checkpoint_path is not None
        save_checkpoint(
            self.config.checkpoint_path,
            RunCheckpoint(
                scenario=self.scenario,
                config=self.config,
                trained=self.trained,
                state=state,
            ),
        )

    def _frame_loop(self, state: _RunState, tracer) -> RunResult:
        """Advance ``state`` frame by frame until the run completes.

        Everything the loop mutates lives on ``state``, so checkpointing
        mid-run is just pickling ``state`` between two frames.
        """
        config = self.config
        interrupted = False
        run_span = tracer.span(
            "run",
            policy=config.policy,
            scenario=self.scenario.name,
            horizon=config.horizon,
        )
        with run_span:
            for frame_idx in range(state.next_frame, state.total_frames):
                self._process_frame(state, tracer, frame_idx)
                # Between two frames the run is crash-consistent: snapshot
                # the state if the checkpoint cadence (or a simulated
                # interruption) says so.
                if config.checkpoint_path is not None:
                    done = state.next_frame
                    if (
                        config.stop_after_frames is not None
                        and done == config.stop_after_frames
                        and done < state.total_frames
                    ):
                        self._save_state(state)
                        interrupted = True
                        break
                    if (
                        config.checkpoint_every > 0
                        and done % config.checkpoint_every == 0
                    ):
                        self._save_state(state)
        if interrupted:
            # The post-run accounting must run exactly once per run, at
            # completion — the resumed continuation will do it.
            return state.result
        self._finalize(state)
        return state.result

    def _event_loop(self, state: _RunState, tracer) -> RunResult:
        """Advance the run on a deterministic event kernel.

        Frame arrivals (priority ``_EV_ARRIVAL``) flow into per-camera
        :class:`BoundedFrameQueue`s; frame dispatches (priority
        ``_EV_DISPATCH``) drain them and feed the exact same per-frame
        processing as the sync loop. ``ingest_burst`` faults defer
        arrivals to the end of their window, so a burst bunches frames
        and overflows the queues, exercising the configured backpressure
        policy. Without bursts every frame arrives exactly at its
        dispatch tick, queues never exceed one capsule, and the run is
        byte-identical to ``runtime='sync'``.
        """
        config = self.config
        faults = state.faults
        dt = state.dt
        total_frames = state.total_frames
        bursty = faults is not None and faults.has_ingest_bursts
        kernel = EventQueue()
        queues: Dict[int, BoundedFrameQueue] = {
            cam: BoundedFrameQueue(
                cam,
                config.ingest_capacity,
                make_ingest_policy(config.ingest_policy),
            )
            for cam in state.camera_ids
        }

        def make_arrival(
            queue: BoundedFrameQueue, capsule: FrameCapsule
        ) -> Callable[[], None]:
            def arrive() -> None:
                queue.offer(capsule)

            return arrive

        # Plan every arrival up front: deterministic, and burst windows
        # simply relocate arrival times. Frames inside a burst window are
        # released — bunched — at the first burst-free frame; a window
        # reaching the end of the run swallows its frames entirely.
        for frame_idx in range(state.next_frame, total_frames):
            for cam in state.camera_ids:
                release = frame_idx
                if bursty and faults.ingest_bursting(frame_idx, cam):
                    released = faults.burst_release_frame(
                        frame_idx, cam, total_frames
                    )
                    if released is None:
                        queues[cam].count_lost_upstream()
                        continue
                    release = released
                capsule = FrameCapsule(
                    camera_id=cam,
                    frame_index=frame_idx,
                    arrival_s=release * dt,
                    is_key=(
                        config.policy == "full"
                        or frame_idx % config.horizon == 0
                    ),
                )
                kernel.schedule_at(
                    release * dt,
                    make_arrival(queues[cam], capsule),
                    priority=_EV_ARRIVAL,
                )

        def dispatch(frame_idx: int) -> None:
            ingest: Optional[_FrameIngest] = None
            if bursty:
                ingest = self._drain_ingest(queues, frame_idx)
            else:
                # Transparent pass-through: every queue holds exactly the
                # frame that just arrived. Draining keeps the ledgers
                # honest without perturbing the processed frame.
                for cam in state.camera_ids:
                    queues[cam].poll_upto(frame_idx)
            self._process_frame(state, tracer, frame_idx, ingest)
            if ingest is not None:
                for cam in ingest.applied_degrades:
                    queues[cam].clear_degraded()

        for frame_idx in range(state.next_frame, total_frames):
            kernel.schedule_at(
                frame_idx * dt,
                (lambda f=frame_idx: dispatch(f)),
                priority=_EV_DISPATCH,
            )

        run_span = tracer.span(
            "run",
            policy=config.policy,
            scenario=self.scenario.name,
            horizon=config.horizon,
        )
        with run_span:
            kernel.run_until_idle()
        for cam in state.camera_ids:
            queues[cam].check_conservation()
        if bursty:
            self._export_ingest_counters(state.registry, queues)
        self._finalize(state)
        return state.result

    def _drain_ingest(
        self, queues: Dict[int, BoundedFrameQueue], frame_idx: int
    ) -> _FrameIngest:
        """Drain every camera's queue for one dispatch tick."""
        stalled = set()
        degraded = set()
        forced_key = False
        stale_drops: Dict[int, int] = {}
        folded: Dict[int, int] = {}
        staleness: Dict[int, int] = {}
        for cam_id in sorted(queues):
            queue = queues[cam_id]
            outcome = queue.poll_upto(frame_idx)
            if outcome is None:
                stalled.add(cam_id)
                continue
            if outcome.stale_dropped:
                stale_drops[cam_id] = outcome.stale_dropped
            if outcome.folded:
                folded[cam_id] = outcome.folded
            if outcome.staleness_frames:
                staleness[cam_id] = outcome.staleness_frames
            forced_key = forced_key or outcome.forced_key
            if queue.degraded:
                degraded.add(cam_id)
        return _FrameIngest(
            stalled=frozenset(stalled),
            degraded=frozenset(degraded),
            forced_key=forced_key,
            stale_drops=stale_drops,
            folded=folded,
            staleness=staleness,
        )

    def _record_ingest(
        self, tracer, registry: MetricsRegistry, ingest: _FrameIngest
    ) -> None:
        """Surface one frame's non-trivial ingest events: spans, counters."""
        for cam_id in sorted(ingest.stalled):
            with tracer.span("ingest.stall", camera=cam_id):
                pass
            registry.counter(
                "ingest_stalled_frames_total", camera=cam_id
            ).inc()
        for cam_id in sorted(ingest.stale_drops):
            with tracer.span(
                "ingest.drop", camera=cam_id,
                frames=ingest.stale_drops[cam_id],
            ):
                pass
        for cam_id in sorted(ingest.folded):
            with tracer.span(
                "ingest.coalesce", camera=cam_id,
                frames=ingest.folded[cam_id],
            ):
                pass
        for cam_id in sorted(ingest.staleness):
            registry.gauge(
                "ingest_staleness_frames", camera=cam_id
            ).set(ingest.staleness[cam_id])

    def _export_ingest_counters(
        self, registry: MetricsRegistry, queues: Dict[int, BoundedFrameQueue]
    ) -> None:
        """Publish each queue's conservation ledger at end of run."""
        for cam_id in sorted(queues):
            queue = queues[cam_id]
            registry.counter(
                "ingest_offered_total", camera=cam_id
            ).inc(queue.offered)
            registry.counter(
                "ingest_admitted_total", camera=cam_id
            ).inc(queue.admitted)
            registry.counter(
                "ingest_served_total", camera=cam_id
            ).inc(queue.served)
            registry.counter(
                "ingest_dropped_total", camera=cam_id
            ).inc(queue.dropped)
            registry.counter(
                "ingest_coalesced_total", camera=cam_id
            ).inc(queue.coalesced)
            registry.gauge(
                "ingest_queue_peak_depth", camera=cam_id
            ).set(queue.peak_occupancy)

    def _finalize(self, state: _RunState) -> None:
        """Post-run accounting, exactly once per completed run."""
        registry = state.registry
        if state.faults is not None and state.scheduler is not None:
            for cam_id, channel in state.scheduler.channels.items():
                if channel.messages_dropped:
                    registry.counter(
                        "messages_dropped_total", camera=cam_id
                    ).inc(channel.messages_dropped)
                    registry.counter(
                        "bytes_dropped_total", camera=cam_id
                    ).inc(channel.bytes_dropped)
                if channel.messages_corrupted:
                    registry.counter(
                        "messages_corrupted_total", camera=cam_id
                    ).inc(channel.messages_corrupted)
                if channel.giveups:
                    registry.counter(
                        "link_giveups_total", camera=cam_id
                    ).inc(channel.giveups)
            # Receiver-guard verdicts, both directions: the camera-side
            # assignment guards and the scheduler-side report guards.
            for cam_id in sorted(state.nodes):
                guards = [state.nodes[cam_id].guard]
                report_guard = state.scheduler.report_guards.get(cam_id)
                if report_guard is not None:
                    guards.append(report_guard)
                corrupt = sum(g.corrupt for g in guards)
                duplicates = sum(g.duplicates for g in guards)
                reordered = sum(g.reordered for g in guards)
                if corrupt:
                    registry.counter(
                        "wire_corrupt_dropped_total", camera=cam_id
                    ).inc(corrupt)
                if duplicates:
                    registry.counter(
                        "wire_duplicates_dropped_total", camera=cam_id
                    ).inc(duplicates)
                if reordered:
                    registry.counter(
                        "wire_reordered_total", camera=cam_id
                    ).inc(reordered)
        if self.serving is not None:
            self.serving.export_metrics(registry)

    def _process_frame(
        self,
        state: _RunState,
        tracer,
        frame_idx: int,
        ingest: Optional[_FrameIngest] = None,
    ) -> None:
        """Process one frame and fold the results back into ``state``.

        The single frame-processing path shared by both runtimes;
        ``ingest`` (event runtime only) carries the ingest edge's view of
        the frame. A trivial ingest view — or ``None`` — leaves every
        span, counter and RNG draw identical to the sync runtime.
        """
        config = self.config
        dt = state.dt
        world = state.world
        rig = state.rig
        nodes = state.nodes
        scheduler = state.scheduler
        policies = state.policies
        result = state.result
        registry = state.registry
        camera_ids = state.camera_ids
        faults = state.faults
        retry = state.retry
        stale_horizons = state.stale_horizons
        occlusion = state.occlusion
        history = state.history
        camera_lags = state.camera_lags
        failover = state.failover
        central_amortized = state.central_amortized
        prev_down = state.prev_down
        health = state.health

        # Membership view of this frame: transitions the watchdog took at
        # the end of frame N take effect on frame N+1, and the invariant
        # monitor sees the same view the frame is processed under (R5/R6).
        quarantined = (
            health.quarantined() if health is not None else frozenset()
        )
        probation = (
            health.in_probation() if health is not None else frozenset()
        )
        if health is not None and state.invariants is not None:
            state.invariants.observe_membership(
                frame_idx, quarantined, health.membership_epoch
            )

        in_horizon = frame_idx % config.horizon
        frame_faults: Optional[FrameFaults] = (
            faults.at(frame_idx, camera_ids)
            if faults is not None
            else None
        )
        down = (
            frame_faults.down
            if frame_faults is not None
            else frozenset()
        )
        # Cameras whose frame is stuck behind a burst process nothing this
        # tick, but they are *not* down: they still heartbeat and their
        # crash/rejoin membership is untouched.
        stalled = ingest.stalled if ingest is not None else frozenset()
        effective_down = down | stalled if stalled else down
        if quarantined:
            # A quarantined camera processes nothing: it is out of the
            # fleet until the watchdog walks it through probation.
            effective_down = effective_down | quarantined
        forced_key = False
        if faults is not None:
            # Camera crash/rejoin triggers an early key frame: the
            # central stage re-runs BALB on the surviving set so the
            # dead camera's shared objects are re-adopted (or the
            # rejoined camera is folded back in) immediately. A
            # quarantined camera's churn (the flap signature) is masked
            # out — its membership is the watchdog's to manage, and
            # reacting to its heartbeats is exactly the thrash the
            # quarantine exists to stop.
            visible_down = down - quarantined if quarantined else down
            membership_changed = visible_down != prev_down
            prev_down = visible_down
            forced_key = (
                scheduler is not None
                and membership_changed
                and config.policy != "full"
                and in_horizon != 0
            )
            if health is not None:
                # A watchdog membership change last frame re-runs the
                # central stage over the new membership now; probation
                # warm-up forces key frames for the whole dwell.
                if (
                    (state.health_forced_key or probation)
                    and scheduler is not None
                    and config.policy != "full"
                    and in_horizon != 0
                ):
                    forced_key = True
                state.health_forced_key = False
        # Scheduler failover: advance the heartbeat/lease protocol
        # one frame. A leadership change forces a key frame (the
        # new leader re-runs the central stage from its replica);
        # while nobody leads, key frames are suppressed and the
        # fleet runs distributed-only on last-known masks.
        transition = None
        partition_transition = None
        central_ok = True
        authorities: Optional[Tuple[Authority, ...]] = None
        if failover is not None:
            live = [c for c in camera_ids if c not in down]
            transition = failover.step(
                frame_idx,
                frame_faults is not None
                and frame_faults.scheduler_down,
                live,
            )
            central_ok = failover.central_available
            if transition is not None:
                forced_key = forced_key or in_horizon != 0
            if faults is not None and faults.has_scheduler_partitions:
                # Scheduler partition: the cut side may elect its own
                # leader (split-brain unless epochs fence it). The
                # per-authority scheduling below replaces the single
                # schedule() call only on this code path — runs without
                # partition faults keep the pre-partition behaviour.
                cut = sorted(
                    frame_faults.sched_partitioned & frozenset(live)
                    if frame_faults is not None
                    else frozenset()
                )
                partition_transition = failover.step_partition(
                    frame_idx, cut, live
                )
                if partition_transition is not None or (
                    failover.reclaim_pending
                ):
                    forced_key = forced_key or in_horizon != 0
                authorities = failover.authorities(live, cut)
        if (
            ingest is not None
            and ingest.forced_key
            and scheduler is not None
            and config.policy != "full"
            and in_horizon != 0
        ):
            # A coalesced backlog wants a central resynchronization.
            forced_key = True
        is_key = config.policy == "full" or (
            (in_horizon == 0 or forced_key) and central_ok
        )
        if (
            failover is not None
            and not central_ok
            and (in_horizon == 0 or forced_key)
        ):
            # A scheduled (or forced) key frame lands in the
            # outage window: skip it, everyone's decision goes
            # one horizon staler.
            registry.counter("skipped_key_frames_total").inc()
            for cam_id in camera_ids:
                if cam_id not in down:
                    stale_horizons[cam_id] += 1
                    registry.gauge(
                        "assignment_staleness_horizons",
                        camera=cam_id,
                    ).set(stale_horizons[cam_id])
        frame_start = self.clock.now()

        frame_tags = {"frame": frame_idx, "key": is_key}
        if faults is not None:
            frame_tags["forced"] = forced_key
        with tracer.span("frame", **frame_tags):
            if frame_faults is not None:
                self._apply_frame_faults(
                    tracer, registry, frame_faults, nodes, forced_key
                )
            if transition is not None:
                self._record_transition(tracer, registry, transition)
            if partition_transition is not None:
                self._record_transition(
                    tracer, registry, partition_transition
                )
            if ingest is not None and ingest.any_active:
                self._record_ingest(tracer, registry, ingest)
            with tracer.span("sim.advance"):
                world.step(dt)
                objects = world.objects
                if history is not None:
                    history.push(objects)
                drift_lags = (
                    frame_faults.drift_lags
                    if frame_faults is not None
                    else {}
                )
                lagged_objects = {
                    cam_id: (
                        history.view(
                            drifted_lag(
                                lag,
                                drift_lags.get(cam_id, 0),
                                history.depth,
                            )
                            if drift_lags
                            else lag
                        )
                        if history is not None
                        else objects
                    )
                    for cam_id, lag in camera_lags.items()
                }
                if faults is not None and faults.has_sensor_faults:
                    self._apply_frozen_views(
                        state, frame_faults, lagged_objects
                    )
                # One projection cache per frame: every consumer below
                # (occlusion, coverage, detection, new regions, health)
                # shares each camera's batched projection table instead
                # of re-projecting the same objects. sim_path="scalar"
                # keeps the per-object reference path as the
                # bit-identity oracle.
                cache = (
                    FrameProjectionCache(rig.cameras)
                    if config.sim_path == "soa"
                    else None
                )
                multipliers: Dict[int, Dict[int, float]] = {}
                if occlusion is not None:
                    fractions_by_cam = {
                        cam.camera_id: visible_fractions(
                            cam,
                            objects,
                            boxes=(
                                cache.boxes(cam, objects)
                                if cache is not None
                                else None
                            ),
                        )
                        for cam in rig
                    }
                    multipliers = {
                        cam_id: {
                            oid: occlusion.miss_multiplier(frac)
                            for oid, frac in fractions.items()
                        }
                        for cam_id, fractions in fractions_by_cam.items()
                    }
                    visible_gt, coverage_lost = _split_coverage(
                        objects,
                        effective_down,
                        lambda o: [
                            c
                            for c in fractions_by_cam
                            if occlusion.effectively_visible(
                                fractions_by_cam[c].get(
                                    o.object_id, 0.0
                                )
                            )
                        ],
                    )
                elif cache is not None:
                    # Whole-frame coverage in one table pull; its keys
                    # are exactly the ids some camera can observe, so
                    # the fault-free split needs no per-object calls.
                    table = cache.coverage_table(rig.cameras, objects)
                    if effective_down:
                        visible_gt, coverage_lost = _split_coverage(
                            objects,
                            effective_down,
                            lambda o: table.get(o.object_id, ()),
                        )
                    else:
                        visible_gt = frozenset(table)
                        coverage_lost = frozenset()
                else:
                    visible_gt, coverage_lost = _split_coverage(
                        objects,
                        effective_down,
                        rig.coverage_set,
                    )

            inference: Dict[int, float] = {}
            detected: set = set()
            overheads: Dict[str, float] = {}
            n_slices: Dict[int, int] = {}
            key_detected: Dict[int, int] = {}
            if transition is not None or partition_transition is not None:
                # Restore/sync/claim-broadcast time of the
                # leadership change, modeled through the link and
                # overhead models, lands on this frame.
                overheads["failover"] = sum(
                    t.cost_ms
                    for t in (transition, partition_transition)
                    if t is not None
                )

            if is_key:
                reports = {}
                tracking = []
                with tracer.span("central_stage"):
                    for cam_id, node in nodes.items():
                        if cam_id in effective_down:
                            continue
                        with tracer.span(
                            "camera.key_frame", camera=cam_id
                        ):
                            outcome = node.process_key_frame(
                                lagged_objects[cam_id],
                                multipliers.get(cam_id),
                                boxes=(
                                    cache.boxes(
                                        node.camera,
                                        lagged_objects[cam_id],
                                    )
                                    if cache is not None
                                    else None
                                ),
                            )
                        inference[cam_id] = outcome.inference_ms
                        detected.update(
                            d.gt_object_id
                            for d in outcome.detections
                            if d.gt_object_id >= 0
                        )
                        if health is not None:
                            # Report quality signal for the watchdog:
                            # distinct ground-truth objects this camera
                            # actually saw on its key frame.
                            key_detected[cam_id] = len(
                                {
                                    d.gt_object_id
                                    for d in outcome.detections
                                    if d.gt_object_id >= 0
                                }
                            )
                        if ingest is not None and cam_id in ingest.degraded:
                            # Degraded mode: the camera runs the frame
                            # locally but sits out the central stage to
                            # catch up; the stale-decision fallback below
                            # keeps it on its last-known mask.
                            with tracer.span("ingest.degrade", camera=cam_id):
                                pass
                            registry.counter(
                                "ingest_degraded_frames_total",
                                camera=cam_id,
                            ).inc()
                            ingest.applied_degrades.add(cam_id)
                            tracking.append(outcome.tracking_ms)
                            continue
                        reports[cam_id] = outcome.report
                        tracking.append(outcome.tracking_ms)
                    overheads["tracking"] = (
                        max(tracking) if tracking else 0.0
                    )
                    if scheduler is not None and reports:
                        link_faults = (
                            frame_faults.link_faults
                            if frame_faults is not None
                            else None
                        )
                        wire_active = faults is not None and (
                            faults.has_wire_faults
                            or faults.has_scheduler_partitions
                        )
                        #: camera -> (decision, issuing epoch)
                        assignments: Dict[
                            int, Tuple[ScheduleDecision, int]
                        ] = {}
                        total_retries = 0
                        if authorities is None:
                            replicate_to = (
                                failover.replication_target(
                                    sorted(reports)
                                )
                                if failover is not None
                                else None
                            )
                            decision = scheduler.schedule(
                                reports,
                                frame_idx,
                                link_faults=link_faults,
                                retry=retry,
                                replicate_to=replicate_to,
                                no_authority=probation,
                            )
                            if (
                                replicate_to is not None
                                and decision.checkpoint is not None
                            ):
                                self._record_replication(
                                    tracer,
                                    registry,
                                    failover,
                                    decision.checkpoint,
                                    replicate_to,
                                    replicate_to in decision.delivered,
                                )
                            issue_epoch = (
                                failover.epoch
                                if failover is not None
                                else 0
                            )
                            if state.invariants is not None:
                                state.invariants.observe_issue(
                                    frame_idx,
                                    issue_epoch,
                                    failover.leader_id
                                    if failover is not None
                                    else PRIMARY,
                                )
                            for cam_id in nodes:
                                assignments[cam_id] = (
                                    decision, issue_epoch
                                )
                            total_retries = decision.comm_retries
                            central_amortized = (
                                decision.central_ms + decision.comm_ms
                            ) / config.horizon
                        else:
                            # Split scheduling: each acting authority
                            # runs the central stage over its own
                            # reachable side of the cut, at its own
                            # epoch. Costs overlap in time (the sides
                            # are concurrent), so the amortized charge
                            # is the slower side's.
                            central_peak = 0.0
                            for authority in authorities:
                                auth_reports = {
                                    c: reports[c]
                                    for c in sorted(authority.reach)
                                    if c in reports
                                }
                                if not auth_reports:
                                    continue
                                replicate_to = (
                                    failover.replication_target(
                                        sorted(auth_reports)
                                    )
                                    if authority.leader_id == PRIMARY
                                    else None
                                )
                                decision = scheduler.schedule(
                                    auth_reports,
                                    frame_idx,
                                    link_faults=link_faults,
                                    retry=retry,
                                    replicate_to=replicate_to,
                                    no_authority=probation,
                                )
                                if (
                                    replicate_to is not None
                                    and decision.checkpoint is not None
                                ):
                                    self._record_replication(
                                        tracer,
                                        registry,
                                        failover,
                                        decision.checkpoint,
                                        replicate_to,
                                        replicate_to
                                        in decision.delivered,
                                    )
                                if state.invariants is not None:
                                    state.invariants.observe_issue(
                                        frame_idx,
                                        authority.epoch,
                                        authority.leader_id,
                                    )
                                for cam_id in sorted(authority.reach):
                                    assignments[cam_id] = (
                                        decision, authority.epoch
                                    )
                                total_retries += decision.comm_retries
                                central_peak = max(
                                    central_peak,
                                    decision.central_ms
                                    + decision.comm_ms,
                                )
                            central_amortized = (
                                central_peak / config.horizon
                            )
                        for cam_id, node in nodes.items():
                            if cam_id in down or cam_id in quarantined:
                                # R5: a quarantined camera is out of the
                                # membership — no assignment download may
                                # reach it until probation readmits it.
                                continue
                            entry = assignments.get(cam_id)
                            delivered_ok = (
                                entry is not None
                                and cam_id in entry[0].delivered
                            )
                            if delivered_ok and wire_active:
                                # Hardened wire protocol: the download
                                # passes the camera's receiver guard
                                # (checksum, dedupe, epoch fence)
                                # before it may be applied.
                                delivered_ok = self._admit_assignment(
                                    tracer,
                                    registry,
                                    node,
                                    cam_id,
                                    frame_idx,
                                    entry[1],
                                    entry[0],
                                )
                            if delivered_ok:
                                decision_c, epoch_c = entry
                                node.apply_schedule(
                                    decision_c.assigned.get(cam_id, []),
                                    decision_c.shadows.get(cam_id, {}),
                                )
                                if state.invariants is not None:
                                    state.invariants.observe_applied(
                                        frame_idx, cam_id, epoch_c
                                    )
                                stale_horizons[cam_id] = 0
                                if config.policy in ("balb", "balb-cen"):
                                    policies[cam_id] = (
                                        self._balb_policy_for(
                                            scheduler,
                                            cam_id,
                                            decision_c.priority_order,
                                        )
                                    )
                            else:
                                # Stale-decision fallback: the camera
                                # keeps the BALB distributed stage on
                                # its last-known mask and priority
                                # order.
                                stale_horizons[cam_id] += 1
                                registry.counter(
                                    "assignment_fallbacks_total",
                                    camera=cam_id,
                                ).inc()
                            if faults is not None:
                                registry.gauge(
                                    "assignment_staleness_horizons",
                                    camera=cam_id,
                                ).set(stale_horizons[cam_id])
                        if faults is not None and total_retries:
                            registry.counter(
                                "message_retries_total"
                            ).inc(total_retries)
                overheads["central"] = central_amortized
                registry.counter("key_frames_total").inc()
            else:
                tracking, distributed, batching = [], [], []
                with tracer.span("distributed_stage"):
                    for cam_id, node in nodes.items():
                        if cam_id in effective_down:
                            continue
                        with tracer.span(
                            "camera.regular_frame", camera=cam_id
                        ):
                            outcome = node.process_regular_frame(
                                lagged_objects[cam_id],
                                policies[cam_id],
                                multipliers.get(cam_id),
                                boxes=(
                                    cache.boxes(
                                        node.camera,
                                        lagged_objects[cam_id],
                                    )
                                    if cache is not None
                                    else None
                                ),
                            )
                        inference[cam_id] = outcome.inference_ms
                        detected.update(
                            d.gt_object_id
                            for d in outcome.detections
                            if d.gt_object_id >= 0
                        )
                        n_slices[cam_id] = outcome.n_slices
                        tracking.append(outcome.tracking_ms)
                        distributed.append(outcome.distributed_ms)
                        batching.append(outcome.batching_ms)
                overheads["tracking"] = (
                    max(tracking) if tracking else 0.0
                )
                overheads["distributed"] = (
                    max(distributed) if distributed else 0.0
                )
                overheads["batching"] = max(batching) if batching else 0.0
                overheads["central"] = central_amortized
                registry.counter("regular_frames_total").inc()
                registry.counter("slices_total").inc(
                    sum(n_slices.values())
                )

            if health is not None:
                self._observe_fleet_health(
                    state,
                    tracer,
                    frame_idx,
                    frame_faults,
                    down,
                    lagged_objects,
                    objects,
                    is_key,
                    key_detected,
                    overheads,
                    cache,
                )

        registry.counter("frames_total").inc()
        registry.histogram("frame_wall_ms").observe(
            (self.clock.now() - frame_start) * 1e3
        )
        for cam_id, ms in inference.items():
            registry.histogram("inference_ms", camera=cam_id).observe(
                ms
            )
        if faults is not None and coverage_lost:
            registry.counter(
                "coverage_lost_object_frames_total"
            ).inc(len(coverage_lost))
        record = FrameRecord(
            frame_index=frame_idx,
            is_key_frame=is_key,
            inference_ms=inference,
            visible_gt=visible_gt,
            detected_gt=frozenset(detected),
            overheads_ms=overheads,
            n_slices=n_slices,
            coverage_lost=coverage_lost,
        )
        if state.invariants is not None:
            state.invariants.observe_frame(
                frame_idx, visible_gt, coverage_lost
            )
        result.add(record)
        if self.serving is not None:
            self.serving.on_frame(record)
        # Fold the loop-local mutations back into the state: between two
        # frames the run is crash-consistent.
        state.next_frame = frame_idx + 1
        state.central_amortized = central_amortized
        state.prev_down = prev_down

    def _apply_frozen_views(
        self,
        state: _RunState,
        frame_faults: Optional[FrameFaults],
        lagged_objects: Dict[int, List],
    ) -> None:
        """Serve each frozen camera the snapshot it froze on, bit-exact.

        On the first frame of a ``sensor_freeze`` window the camera's
        current (lagged) view is captured; for the rest of the window the
        camera detects against that captured list, so its frame-content
        token repeats — the signature the watchdog keys on. When the
        freeze lifts, the capture is dropped and the live view resumes.
        """
        frozen = (
            frame_faults.frozen
            if frame_faults is not None
            else frozenset()
        )
        if not frozen and not state.frozen_views:
            return
        for cam_id in sorted(lagged_objects):
            if cam_id in frozen:
                if cam_id not in state.frozen_views:
                    state.frozen_views[cam_id] = snapshot_objects(
                        lagged_objects[cam_id]
                    )
                lagged_objects[cam_id] = state.frozen_views[cam_id]
            else:
                state.frozen_views.pop(cam_id, None)

    def _observe_fleet_health(
        self,
        state: _RunState,
        tracer,
        frame_idx: int,
        frame_faults: Optional[FrameFaults],
        down: frozenset,
        lagged_objects: Dict[int, List],
        objects,
        is_key: bool,
        key_detected: Dict[int, int],
        overheads: Dict[str, float],
        cache: Optional[FrameProjectionCache] = None,
    ) -> None:
        """End-of-frame health pass: signals -> watchdog -> membership.

        Builds every camera's :class:`HealthSignals` from what this frame
        actually exposed (liveness, the content token of the view the
        camera detected against, its drift skew, its key-frame report
        quality), folds them into the watchdog, and acts on the
        transitions: spans + counters always, and on a membership change
        a re-fit of the scheduler's association structures over the
        surviving members (charged to this frame's overhead ledger) plus
        an early key frame next frame.
        """
        health = state.health
        assert health is not None
        registry = state.registry
        visible: Dict[int, int] = {}
        if is_key:
            # Denominator of the report-quality signal: how many objects
            # each camera could have seen this frame.
            if cache is not None:
                coverage = cache.coverage_table(
                    state.rig.cameras, objects
                ).values()
            else:
                coverage = (
                    state.rig.coverage_set(obj) for obj in objects
                )
            for covered in coverage:
                for cam in covered:
                    visible[cam] = visible.get(cam, 0) + 1
        drift_lags = (
            frame_faults.drift_lags if frame_faults is not None else {}
        )
        signals: Dict[int, HealthSignals] = {}
        for cam in state.camera_ids:
            alive = cam not in down
            view = lagged_objects[cam]
            # An empty view carries no content to hash; feeding a
            # frame-unique token (negative, outside crc32's range) keeps
            # an empty scene from reading as a frozen sensor.
            token = content_token(view) if view else -frame_idx - 1
            quality: Optional[float] = None
            if is_key and cam in key_detected:
                quality = min(
                    1.0,
                    key_detected[cam] / max(1, visible.get(cam, 0)),
                )
            signals[cam] = HealthSignals(
                alive=alive,
                content_token=token,
                skew_frames=drift_lags.get(cam, 0),
                quality=quality,
            )
        transitions = health.observe(frame_idx, signals)
        for t in transitions:
            with tracer.span(
                "health." + t.state.value,
                camera=t.camera_id,
                reason=t.reason,
                epoch=t.epoch,
            ):
                pass
            if t.state is HealthState.QUARANTINED:
                registry.counter(
                    "health_quarantines_total", camera=t.camera_id
                ).inc()
            elif t.state is HealthState.SUSPECT:
                registry.counter(
                    "health_suspects_total", camera=t.camera_id
                ).inc()
            elif t.state is HealthState.PROBATION:
                registry.counter(
                    "health_probations_total", camera=t.camera_id
                ).inc()
            elif t.previous is HealthState.PROBATION:
                registry.counter(
                    "health_readmissions_total", camera=t.camera_id
                ).inc()
        if any(t.membership_change for t in transitions):
            state.health_forced_key = True
            registry.gauge("membership_epoch").set(
                health.membership_epoch
            )
            if state.scheduler is not None:
                members = [
                    c
                    for c in state.camera_ids
                    if c not in health.quarantined()
                ]
                if members:
                    # Deterministic membership re-fit: co-visibility
                    # masks and BALB's candidate set are rebuilt over
                    # the survivors; the quarantined camera's cells go
                    # to its overlapping peers. Modeled cost lands on
                    # this frame.
                    refit_ms = state.scheduler.refit_members(members)
                    overheads["refit"] = (
                        overheads.get("refit", 0.0) + refit_ms
                    )
                    with tracer.span(
                        "health.refit",
                        members=len(members),
                        epoch=health.membership_epoch,
                    ):
                        pass
                    registry.counter("membership_refits_total").inc()
        in_probation = health.in_probation()
        if in_probation:
            registry.counter("health_probation_frames_total").inc(
                len(in_probation)
            )
        for cam in state.camera_ids:
            registry.gauge("health_score", camera=cam).set(
                round(health.score_of(cam), 4)
            )

    def _apply_frame_faults(
        self,
        tracer,
        registry: MetricsRegistry,
        frame_faults: FrameFaults,
        nodes: Dict[int, CameraNode],
        forced_key: bool,
    ) -> None:
        """Surface this frame's fault state: spans, counters, GPU throttle."""
        for event in frame_faults.started:
            with tracer.span(
                "fault." + event.kind.value,
                camera=-1 if event.camera_id is None else event.camera_id,
                frames=0 if event.duration is None else event.duration,
                magnitude=event.magnitude,
            ):
                pass
            registry.counter(
                "fault_events_total", kind=event.kind.value
            ).inc()
        for cam_id, node in nodes.items():
            node.executor.set_slowdown(
                frame_faults.gpu_factor.get(cam_id, 1.0)
            )
            node.set_quality_fade(frame_faults.fade.get(cam_id, 1.0))
        for cam_id in sorted(frame_faults.down):
            registry.counter(
                "camera_down_frames_total", camera=cam_id
            ).inc()
        for cam_id in sorted(frame_faults.frozen):
            registry.counter(
                "sensor_frozen_frames_total", camera=cam_id
            ).inc()
        for cam_id in sorted(frame_faults.drift_lags):
            registry.gauge(
                "clock_drift_lag_frames", camera=cam_id
            ).set(frame_faults.drift_lags[cam_id])
        for cam_id in sorted(frame_faults.fade):
            registry.gauge(
                "quality_fade_factor", camera=cam_id
            ).set(round(frame_faults.fade[cam_id], 4))
        if frame_faults.scheduler_down:
            registry.counter("scheduler_down_frames_total").inc()
        if forced_key:
            registry.counter("forced_key_frames_total").inc()

    def _record_transition(self, tracer, registry, transition) -> None:
        """Surface one leadership change: span, counters, recovery time."""
        with tracer.span(
            "failover." + transition.kind,
            frame=transition.frame,
            leader=transition.leader_id,
            replica_frame=(
                -1
                if transition.replica_frame is None
                else transition.replica_frame
            ),
            epoch=transition.epoch,
        ):
            pass
        if transition.kind == "takeover":
            registry.counter("failover_takeovers_total").inc()
        elif transition.kind == "handback":
            registry.counter("failover_handbacks_total").inc()
        elif transition.kind == "split_takeover":
            registry.counter("failover_split_takeovers_total").inc()
        else:
            registry.counter("failover_reunites_total").inc()
        if transition.recovery_ms is not None:
            registry.histogram("failover_recovery_ms").observe(
                transition.recovery_ms
            )

    def _record_replication(
        self,
        tracer,
        registry,
        failover: FailoverManager,
        checkpoint,
        target: int,
        delivered: bool,
    ) -> None:
        """Account one piggybacked checkpoint replication attempt."""
        failover.record_replication(checkpoint, delivered)
        with tracer.span(
            "failover.replicate",
            target=target,
            delivered=delivered,
            bytes=checkpoint.payload_bytes(),
        ):
            pass
        registry.counter(
            "failover_replications_total"
            if delivered
            else "failover_stale_replicas_total"
        ).inc()

    def _admit_assignment(
        self,
        tracer,
        registry,
        node: CameraNode,
        cam_id: int,
        frame_idx: int,
        epoch: int,
        decision: ScheduleDecision,
    ) -> bool:
        """One delivered assignment download, through the receiver guard.

        The download is sealed into an :class:`Envelope` (channel
        ``assign:<cam>``, seq = frame index, the issuing authority's
        epoch) and replayed against the camera's :class:`ChannelGuard`
        together with its wire-level fault record: corrupted attempts
        bounce off the checksum, a duplicated final copy is deduped, a
        reordered delivery is held (the decision it carries is already
        superseded), and a stale-epoch claim from a deposed scheduler is
        fenced. Returns whether the assignment may be applied.
        """
        outcome = decision.down_outcomes.get(cam_id)
        env = Envelope.seal(
            f"assign:{cam_id}",
            frame_idx,
            epoch,
            ",".join(
                str(t) for t in decision.assigned.get(cam_id, ())
            ),
        )
        guard = node.guard
        if outcome is not None:
            for _ in range(outcome.corrupt_attempts):
                guard.admit(env.corrupted())
                with tracer.span("wire.corrupt", camera=cam_id):
                    pass
            if outcome.reordered:
                guard.hold_reordered(env)
                with tracer.span("wire.reorder", camera=cam_id):
                    pass
                return False
        admission = guard.admit(env)
        if outcome is not None and outcome.duplicated:
            guard.admit(env)
            with tracer.span("wire.duplicate", camera=cam_id):
                pass
        if admission.accepted:
            return True
        if admission.reason == DROP_STALE_EPOCH:
            with tracer.span(
                "wire.fenced", camera=cam_id, epoch=epoch
            ):
                pass
            registry.counter(
                "failover_fenced_total", camera=cam_id
            ).inc()
        return False

    # ------------------------------------------------------------------
    def _build_nodes(self, rig: CameraRig, dt: float) -> Dict[int, CameraNode]:
        device_map = self.scenario.device_map()
        nodes: Dict[int, CameraNode] = {}
        for cam in rig:
            device = device_map[cam.camera_id]
            model = latency_model_for(device, full_frame=cam.frame_size)
            nodes[cam.camera_id] = CameraNode(
                camera=cam,
                latency_model=model,
                profile=self.trained.profiles[cam.camera_id],
                seed=self.config.seed * 101 + cam.camera_id,
                gpu_jitter=self.config.gpu_jitter,
                overhead_model=self.overheads,
                frame_dt=dt,
            )
        return nodes

    def _build_scheduler(self, rig: CameraRig) -> CentralScheduler:
        assert self.trained.associator is not None
        channels = (
            {
                # Per-channel seed derived from the run seed: distinct
                # cameras get distinct, reproducible jitter/loss streams.
                cam.camera_id: DuplexChannel(
                    seed=self.config.seed + cam.camera_id
                )
                for cam in rig
            }
            if self.config.use_network
            else None
        )
        mode = self.config.policy if self.config.policy != "balb-cen" else "balb-cen"
        positions = {
            c.camera_id: (c.pose.x, c.pose.y) for c in rig
        }
        return CentralScheduler(
            profiles=self.trained.profiles,
            associator=self.trained.associator,
            frame_sizes={c.camera_id: c.frame_size for c in rig},
            typical_box_sizes=self.trained.typical_box_sizes,
            size_set=next(iter(self.trained.profiles.values())).size_set,
            mode=mode,
            mask_grid=self.config.mask_grid,
            overhead_model=self.overheads,
            channels=channels,
            redundancy=self.config.redundancy,
            camera_positions=positions,
        )

    def _static_policies(
        self, rig: CameraRig, scheduler: Optional[CentralScheduler]
    ) -> Dict[int, RegularFramePolicy]:
        policy_name = self.config.policy
        if policy_name == "sp":
            assert scheduler is not None
            return {
                cam.camera_id: StaticPartitioningPolicy(
                    camera_id=cam.camera_id,
                    mask=scheduler.masks[cam.camera_id],
                    capacities=scheduler.capacities,
                )
                for cam in rig
            }
        if policy_name in ("balb", "balb-cen") and scheduler is not None:
            # Placeholder priorities until the first key frame decides.
            order = tuple(sorted(c.camera_id for c in rig))
            return self._balb_policies(scheduler, order)
        return {cam.camera_id: IndependentPolicy() for cam in rig}

    def _balb_policy_for(
        self,
        scheduler: CentralScheduler,
        cam_id: int,
        priority_order: Tuple[int, ...],
    ) -> RegularFramePolicy:
        """Rebuild one camera's regular-frame policy from its current mask."""
        distributed = DistributedPolicy(
            camera_id=cam_id,
            mask=scheduler.masks[cam_id],
            priority_order=priority_order,
        )
        if self.config.policy == "balb":
            return BALBPolicy(distributed)
        return CentralOnlyPolicy(distributed)

    def _balb_policies(
        self, scheduler: CentralScheduler, priority_order: Tuple[int, ...]
    ) -> Dict[int, RegularFramePolicy]:
        return {
            cam_id: self._balb_policy_for(scheduler, cam_id, priority_order)
            for cam_id in scheduler.masks
        }


def run_policy(
    scenario: Scenario,
    policy: str,
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
) -> RunResult:
    """Convenience wrapper: run one policy with defaults."""
    if config is None:
        config = PipelineConfig(policy=policy)
    else:
        config = PipelineConfig(**{**config.__dict__, "policy": policy})
    return Pipeline(scenario, config, trained).run()
