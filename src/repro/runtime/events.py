"""Deterministic simulated-time event kernel for the runtime.

The kernel is the spine of ``--runtime event``: a priority queue of
``(time, priority, seq)``-ordered events over a :class:`SimulatedClock`.
Time is *simulated seconds* — the kernel never reads the wall clock
(reprolint RL002 holds for this module), so a seeded run dispatches the
exact same events in the exact same order on any machine, at any load.

Ordering is total and documented:

* earlier ``when`` fires first;
* at equal ``when``, lower ``priority`` fires first (ingest arrivals are
  scheduled at priority 0, frame dispatches at priority 1, so a frame's
  arrivals always land in the queues before that frame is served);
* at equal ``(when, priority)``, insertion order (``seq``) wins — FIFO.

An optional ``seed`` hands event *sources* a private
``numpy`` generator (e.g. for jittered arrival processes); the kernel
itself draws nothing from it. Constructing a jittered source without a
seed is an error — the no-silent-default-seed rule (RL004) applies.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import WALL_CLOCK, WallClock

__all__ = [
    "EventQueue",
    "SimulatedClock",
    "WALL_CLOCK",
    "WallClock",
]


class SimulatedClock:
    """A clock that only moves when the kernel dispatches an event.

    Exposes the same ``now()`` seam as
    :class:`~repro.obs.trace.WallClock`, so anything written against the
    injectable-clock protocol (per-frame wall timing, span durations in
    tests) can run on simulated time unchanged.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        """Move time forward (the kernel calls this; never backwards)."""
        if when < self._now:
            raise ValueError(
                f"simulated time cannot go backwards: {when} < {self._now}"
            )
        self._now = when


_Entry = Tuple[float, int, int, Callable[[], None]]


class EventQueue:
    """Seeded, deterministic discrete-event queue on simulated time."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.clock = SimulatedClock()
        self._heap: List[_Entry] = []
        self._seq = 0
        self._dispatched = 0
        self._rng: Optional[np.random.Generator] = (
            None if seed is None else np.random.default_rng(seed)
        )

    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """The kernel's seeded generator for stochastic event sources."""
        if self._rng is None:
            raise ValueError(
                "this EventQueue was built without a seed; stochastic "
                "event sources need EventQueue(seed=...)"
            )
        return self._rng

    @property
    def pending(self) -> int:
        """Events scheduled but not yet dispatched."""
        return len(self._heap)

    @property
    def dispatched(self) -> int:
        """Events dispatched since construction."""
        return self._dispatched

    # ------------------------------------------------------------------
    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Schedule ``callback`` at absolute simulated time ``when``.

        Scheduling in the past (before the clock's current time) is an
        error: the kernel never reorders history.
        """
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule at {when}; clock is at {self.clock.now()}"
            )
        heapq.heappush(self._heap, (float(when), priority, self._seq, callback))
        self._seq += 1

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Schedule ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.clock.now() + delay, callback, priority)

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Dispatch events in order until none remain; return the count.

        ``max_events`` bounds runaway self-scheduling loops (an event may
        schedule further events); exceeding it raises ``RuntimeError``
        rather than spinning forever.
        """
        count = 0
        while self._heap:
            if max_events is not None and count >= max_events:
                raise RuntimeError(
                    f"event kernel exceeded max_events={max_events}"
                )
            when, _, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            count += 1
            self._dispatched += 1
        return count
