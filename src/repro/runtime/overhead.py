"""Models of the framework's non-DNN overheads (Table II).

The paper reports per-frame overheads of four components measured on the
Jetson testbed: the central stage (cross-camera association + central
BALB, amortized over the horizon), optical-flow tracking, the distributed
BALB stage, and GPU task batching (tensor assembly/copies). Our substrate
does not run real optical flow or CUDA copies, so these costs are modelled
with simple size-dependent formulas calibrated to the magnitudes of
Table II (tracking ~12-21 ms, batching ~8-20 ms, central ~1-3 ms
amortized, distributed ~0.1-0.2 ms).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadModel:
    """Per-component cost formulas, all returning milliseconds."""

    # Optical flow on a full frame, plus per-track box propagation.
    tracking_base_ms: float = 9.0
    tracking_per_track_ms: float = 0.9
    # Central stage: association (pairwise KNN) + Algorithm 1.
    central_base_ms: float = 4.0
    central_per_pair_object_ms: float = 0.06
    # Distributed stage: O(N) mask lookups.
    distributed_base_ms: float = 0.05
    distributed_per_object_ms: float = 0.006
    # Batching: assembling resized crops into contiguous GPU tensors.
    batching_per_image_ms: float = 0.35
    batching_per_batch_ms: float = 1.2
    batching_per_mpx_ms: float = 9.0

    def tracking_ms(self, n_tracks: int) -> float:
        """Optical-flow tracking cost on one camera for one frame."""
        if n_tracks < 0:
            raise ValueError("n_tracks must be non-negative")
        return self.tracking_base_ms + self.tracking_per_track_ms * n_tracks

    def central_stage_ms(self, n_objects: int, n_cameras: int) -> float:
        """One central-stage invocation (association + BALB), not amortized."""
        if n_objects < 0 or n_cameras < 0:
            raise ValueError("counts must be non-negative")
        pairs = n_cameras * max(0, n_cameras - 1) / 2
        return self.central_base_ms + self.central_per_pair_object_ms * (
            n_objects * max(1.0, pairs)
        )

    def distributed_ms(self, n_objects: int) -> float:
        """One distributed-stage pass on one camera."""
        if n_objects < 0:
            raise ValueError("n_objects must be non-negative")
        return self.distributed_base_ms + self.distributed_per_object_ms * n_objects

    def batching_ms(self, n_images: int, n_batches: int, total_mpx: float) -> float:
        """Tensor assembly cost for one camera's frame plan."""
        if n_images < 0 or n_batches < 0 or total_mpx < 0:
            raise ValueError("counts must be non-negative")
        return (
            self.batching_per_image_ms * n_images
            + self.batching_per_batch_ms * n_batches
            + self.batching_per_mpx_ms * total_mpx
        )
