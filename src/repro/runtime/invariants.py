"""Always-on runtime invariant monitor for the control plane.

The partition-tolerant control plane rests on a handful of safety
properties that no amount of fault injection may break. The
:class:`InvariantMonitor` checks them on every frame of every run —
it is pure bookkeeping (no spans, no metrics, no RNG), so keeping it
on changes nothing about a run until something is actually wrong:

* **R1 — one acting scheduler per epoch.** At any frame, at most one
  authority may issue assignments in a given epoch. Two *concurrent*
  issuers sharing an epoch is the split-brain signature (the legacy,
  fencing-off protocol exhibits it under a scheduler partition; the
  epoch-fenced protocol cannot — every leadership change bumps the
  epoch, so concurrent authorities always differ).
* **R2 — monotonic applied epochs.** A camera never applies an
  assignment from an epoch below the newest one it has applied; the
  receiver guards fence stale epochs, so a violation means a fence was
  bypassed.
* **R3 — at-most-once dispatch.** A camera applies at most one
  assignment per frame; a duplicated wire delivery that slips past the
  guards would double-apply.
* **R4 — ledger conservation.** ``visible_gt`` and ``coverage_lost``
  partition the observable objects (never overlap), and the frame index
  only moves forward.
* **R5 — no assignment to a quarantined camera.** A camera the fleet
  health watchdog has quarantined is out of the scheduling membership;
  an assignment applied by one means the quarantine wasn't honored.
* **R6 — monotonic membership epochs.** The watchdog's membership epoch
  (bumped on every quarantine/readmission) never moves backwards —
  a regression would let a pre-quarantine view of the fleet resurface.

A violation raises :class:`InvariantViolation` immediately (fail fast:
the frame that broke the invariant is the one to debug) with the tail
of the active span trace inlined, or — in ``mode="record"``, which the
soak harness's shrinking loop uses — appends to :attr:`violations` and
keeps going.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.obs.trace import get_tracer

#: How many trailing span records a violation message inlines.
_EXCERPT_SPANS = 15


class InvariantViolation(RuntimeError):
    """A control-plane safety property was broken mid-run."""


class InvariantMonitor:
    """Per-run safety checker; pure picklable state.

    ``mode`` is ``"raise"`` (default: fail fast on the offending frame)
    or ``"record"`` (collect violation messages in :attr:`violations`,
    for harnesses that must observe a run to completion).
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"unknown invariant mode {mode!r}")
        self.mode = mode
        self.violations: List[str] = []
        #: R1: epoch -> the leader that issued in it, this frame.
        self._issuers_now: Dict[int, int] = {}
        #: R2: camera -> newest epoch it has applied.
        self._applied_epoch: Dict[int, int] = {}
        #: R3: (camera, frame) assignments applied on the current frame.
        self._applied_now: Set[Tuple[int, int]] = set()
        #: R5: cameras currently quarantined by the health watchdog.
        self._quarantined: frozenset = frozenset()
        #: R6: newest membership epoch observed.
        self._membership_epoch = 0
        self._frame = -1

    # ------------------------------------------------------------------
    def observe_issue(self, frame: int, epoch: int, leader_id: int) -> None:
        """An authority issued assignments at ``epoch`` this frame (R1)."""
        self._roll(frame)
        owner = self._issuers_now.setdefault(epoch, leader_id)
        if owner != leader_id:
            self._fail(
                f"R1 split-brain at frame {frame}: leader {leader_id} "
                f"issued assignments in epoch {epoch} concurrently with "
                f"leader {owner} — two acting schedulers share one epoch"
            )

    def observe_applied(self, frame: int, camera_id: int, epoch: int) -> None:
        """Camera ``camera_id`` applied an assignment (R2, R3, R5)."""
        if camera_id in self._quarantined:
            self._fail(
                f"R5 quarantine breached at frame {frame}: camera "
                f"{camera_id} applied an assignment while QUARANTINED — "
                "the watchdog's membership exclusion was bypassed"
            )
        newest = self._applied_epoch.get(camera_id, 0)
        if epoch < newest:
            self._fail(
                f"R2 stale epoch applied at frame {frame}: camera "
                f"{camera_id} applied epoch {epoch} after epoch {newest} "
                f"— a fenced message got through"
            )
        else:
            self._applied_epoch[camera_id] = epoch
        self._roll(frame)
        key = (camera_id, frame)
        if key in self._applied_now:
            self._fail(
                f"R3 duplicate dispatch at frame {frame}: camera "
                f"{camera_id} applied two assignments in one frame"
            )
        self._applied_now.add(key)

    def observe_membership(
        self, frame: int, quarantined: frozenset, epoch: int
    ) -> None:
        """The health watchdog's membership view for this frame (R5, R6)."""
        if epoch < self._membership_epoch:
            self._fail(
                f"R6 membership epoch moved backwards at frame {frame}: "
                f"epoch {epoch} after epoch {self._membership_epoch}"
            )
        else:
            self._membership_epoch = epoch
        self._quarantined = frozenset(quarantined)
        self._roll(frame)

    def observe_frame(
        self, frame: int, visible_gt: frozenset, coverage_lost: frozenset
    ) -> None:
        """End-of-frame ledger check (R4)."""
        overlap = visible_gt & coverage_lost
        if overlap:
            self._fail(
                f"R4 ledger overlap at frame {frame}: objects "
                f"{sorted(overlap)} counted both visible and "
                f"coverage-lost"
            )
        if frame < self._frame:
            self._fail(
                f"R4 frame ledger moved backwards: processed frame "
                f"{frame} after frame {self._frame}"
            )
        self._roll(frame)

    # ------------------------------------------------------------------
    def _roll(self, frame: int) -> None:
        """Advance the current-frame window for the R3 dispatch set."""
        if frame > self._frame:
            self._frame = frame
            self._applied_now.clear()
            self._issuers_now.clear()

    def _fail(self, message: str) -> None:
        if self.mode == "record":
            self.violations.append(message)
            return
        raise InvariantViolation(message + self._excerpt())

    def _excerpt(self) -> str:
        """The tail of the active span trace, for the violation report."""
        records = get_tracer().records
        if not records:
            return ""
        lines = []
        for span in records[-_EXCERPT_SPANS:]:
            tags = " ".join(
                f"{k}={v}" for k, v in sorted(span.tags.items())
            )
            lines.append(f"  {span.name}" + (f" [{tags}]" if tags else ""))
        return "\nlast spans:\n" + "\n".join(lines)
