"""Run metrics: object recall, latency statistics, overhead breakdown.

Implements the paper's evaluation metrics:

* **Object recall** (Figure 12): at every frame, a ground-truth object
  visible to at least one camera counts as a true positive if at least one
  camera detected it.
* **Per-frame inference latency** (Figure 13): for each scheduling
  horizon, the mean per-frame YOLO-equivalent inference time of the
  slowest camera (key-frame time averaged with regular frames).
* **Overhead breakdown** (Table II): per-frame maxima across cameras of
  the non-DNN pipeline components, averaged over frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List

import numpy as np

from repro.obs.trace import SpanRecord


@dataclass
class FrameRecord:
    """Everything measured at one frame."""

    frame_index: int
    is_key_frame: bool
    inference_ms: Dict[int, float]  # per camera
    visible_gt: FrozenSet[int]
    detected_gt: FrozenSet[int]
    overheads_ms: Dict[str, float] = field(default_factory=dict)
    n_slices: Dict[int, int] = field(default_factory=dict)
    #: Objects observable in principle but only from crashed cameras this
    #: frame — unrecoverable coverage, reported separately from misses.
    coverage_lost: FrozenSet[int] = frozenset()

    @property
    def recall_numerator(self) -> int:
        return len(self.visible_gt & self.detected_gt)

    @property
    def recall_denominator(self) -> int:
        return len(self.visible_gt)


@dataclass
class RunResult:
    """Aggregated outcome of one pipeline run."""

    policy: str
    scenario: str
    horizon: int
    frames: List[FrameRecord] = field(default_factory=list)
    #: Measured span forest of the run (empty unless ``config.trace``).
    spans: List[SpanRecord] = field(default_factory=list)
    #: Deterministically ordered metrics-registry snapshot of the run.
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, record: FrameRecord) -> None:
        """Append one frame record to the run."""
        self.frames.append(record)

    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def object_recall(self, count_lost_as_missed: bool = False) -> float:
        """Figure 12 metric over the whole run.

        Object-frames whose only observers were crashed cameras are
        excluded from the denominator (they are *coverage loss*, not
        scheduling misses). ``count_lost_as_missed`` folds them back in —
        the "naive" recall a fault-oblivious evaluation would report.
        """
        num = sum(f.recall_numerator for f in self.frames)
        den = sum(f.recall_denominator for f in self.frames)
        if count_lost_as_missed:
            den += sum(len(f.coverage_lost) for f in self.frames)
        return num / den if den else 1.0

    def coverage_loss(self) -> float:
        """Fraction of observable object-frames lost to dead cameras.

        Zero on fault-free runs. The denominator counts every
        object-frame that *some* camera (live or dead) could observe.
        """
        lost = sum(len(f.coverage_lost) for f in self.frames)
        den = sum(f.recall_denominator for f in self.frames) + lost
        return lost / den if den else 0.0

    def mean_slowest_latency(self) -> float:
        """Figure 13 metric: per-horizon slowest-camera mean, averaged.

        For each scheduling horizon, compute each camera's mean per-frame
        inference time (key + regular frames averaged), take the slowest
        camera, then average across horizons.
        """
        if not self.frames:
            return 0.0
        horizon_values: List[float] = []
        for start in range(0, len(self.frames), self.horizon):
            chunk = self.frames[start : start + self.horizon]
            per_cam: Dict[int, List[float]] = {}
            for f in chunk:
                for cam, ms in f.inference_ms.items():
                    per_cam.setdefault(cam, []).append(ms)
            if per_cam:
                horizon_values.append(
                    max(float(np.mean(v)) for v in per_cam.values())
                )
        return float(np.mean(horizon_values)) if horizon_values else 0.0

    def per_camera_mean_latency(self) -> Dict[int, float]:
        """Mean per-frame inference ms per camera over the run."""
        acc: Dict[int, List[float]] = {}
        for f in self.frames:
            for cam, ms in f.inference_ms.items():
                acc.setdefault(cam, []).append(ms)
        return {cam: float(np.mean(v)) for cam, v in acc.items()}

    def overhead_breakdown(self) -> Dict[str, float]:
        """Table II: mean per-frame overhead by component, plus total."""
        keys: set = set()
        for f in self.frames:
            keys.update(f.overheads_ms)
        breakdown = {
            key: float(np.mean([f.overheads_ms.get(key, 0.0) for f in self.frames]))
            for key in sorted(keys)
        }
        breakdown["total"] = float(sum(breakdown.values()))
        return breakdown

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """``{span_name: {count, total_ms, mean_ms}}`` over the trace."""
        acc: Dict[str, List[float]] = {}
        for span in self.spans:
            acc.setdefault(span.name, []).append(span.duration_ms)
        return {
            name: {
                "count": float(len(v)),
                "total_ms": float(sum(v)),
                "mean_ms": float(sum(v) / len(v)),
            }
            for name, v in acc.items()
        }

    def measured_stage_breakdown(self) -> Dict[str, float]:
        """Mean *measured* wall-clock per frame by pipeline stage (ms).

        The observed counterpart of :meth:`overhead_breakdown`, from the
        span trace: central stage, distributed stage and the whole frame.
        Empty when the run was not traced.
        """
        if not self.spans or not self.frames:
            return {}
        totals = self.span_totals()
        n = len(self.frames)
        out: Dict[str, float] = {}
        for stage, span_name in (
            ("central", "central_stage"),
            ("distributed", "distributed_stage"),
            ("frame", "frame"),
        ):
            if span_name in totals:
                out[stage] = totals[span_name]["total_ms"] / n
        return out

    def recall_over_time(self, window: int = 10) -> List[float]:
        """Windowed recall trace (diagnostics)."""
        out: List[float] = []
        for start in range(0, len(self.frames), window):
            chunk = self.frames[start : start + window]
            num = sum(f.recall_numerator for f in chunk)
            den = sum(f.recall_denominator for f in chunk)
            out.append(num / den if den else 1.0)
        return out


def speedup_vs(baseline: RunResult, improved: RunResult) -> float:
    """Multiplicative latency speedup of ``improved`` over ``baseline``."""
    lat = improved.mean_slowest_latency()
    if lat <= 0:
        raise ValueError("improved run has non-positive latency")
    return baseline.mean_slowest_latency() / lat
