"""End-to-end runtime: camera nodes, central scheduler, pipeline, metrics."""

from repro.obs.trace import SpanRecord, Tracer, get_tracer, use_tracer
from repro.runtime.camera_node import (
    CameraNode,
    KeyFrameOutcome,
    NodeTrack,
    RegularFrameOutcome,
    TrackStatus,
)
from repro.runtime.metrics import FrameRecord, RunResult, speedup_vs
from repro.runtime.overhead import OverheadModel
from repro.runtime.pipeline import (
    POLICIES,
    Pipeline,
    PipelineConfig,
    TrainedModels,
    run_policy,
    train_models,
)
from repro.runtime.policies import (
    BALBPolicy,
    CentralOnlyPolicy,
    IndependentPolicy,
    RegularFramePolicy,
    StaticPartitioningPolicy,
    TrackView,
)
from repro.runtime.scheduler_node import CentralScheduler, ScheduleDecision
from repro.runtime.synchronization import SkewModel, WorldHistory

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "use_tracer",
    "CameraNode",
    "NodeTrack",
    "TrackStatus",
    "KeyFrameOutcome",
    "RegularFrameOutcome",
    "FrameRecord",
    "RunResult",
    "speedup_vs",
    "OverheadModel",
    "Pipeline",
    "PipelineConfig",
    "TrainedModels",
    "train_models",
    "run_policy",
    "POLICIES",
    "RegularFramePolicy",
    "BALBPolicy",
    "CentralOnlyPolicy",
    "IndependentPolicy",
    "StaticPartitioningPolicy",
    "TrackView",
    "CentralScheduler",
    "ScheduleDecision",
    "SkewModel",
    "WorldHistory",
]
