"""Imperfect camera synchronization (paper Section V).

"The approach requires the cameras to be approximately synchronized ...
while some cameras are processing the 'current' scene, others might still
be working on older versions of the scene." This module models that
effect: each camera observes the world with a per-camera *lag* of whole
frames, drawn from a configurable skew model. The pipeline keeps a short
history of world snapshots so a lagging camera detects against the state
several frames old — which is exactly how handover anomalies arise (one
camera believes an object left while the lagging camera has not seen it
arrive yet).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence

import numpy as np

from repro.world.entities import WorldObject


@dataclass(frozen=True)
class SkewModel:
    """Per-camera processing lag, in whole frames.

    ``max_lag_frames`` bounds the skew; each camera is assigned a fixed
    lag sampled uniformly from ``[0, max_lag_frames]`` (static skew, the
    common case for mismatched pipeline depths), optionally with
    per-frame jitter of +/- 1 frame.
    """

    max_lag_frames: int = 2
    jitter: bool = False

    def __post_init__(self) -> None:
        if self.max_lag_frames < 0:
            raise ValueError("max_lag_frames must be non-negative")

    def sample_lags(
        self, camera_ids: Sequence[int], rng: np.random.Generator
    ) -> Dict[int, int]:
        """Draw a fixed per-camera lag for every camera id."""
        return {
            cam: int(rng.integers(0, self.max_lag_frames + 1))
            for cam in sorted(camera_ids)
        }

    def jittered_lag(self, base_lag: int, rng: np.random.Generator) -> int:
        """The per-frame lag with optional +/-1 frame jitter."""
        if not self.jitter:
            return base_lag
        return max(0, base_lag + int(rng.integers(-1, 2)))


def drifted_lag(static_lag: int, drift_lag: int, depth: int) -> int:
    """Effective observation lag of a camera whose clock is drifting.

    Generalizes the static :class:`SkewModel` lag to a time-varying one:
    the ``clock_drift`` fault adds ``drift_lag`` frames on top of the
    camera's fixed skew, clamped to what a history buffer of ``depth``
    snapshots can serve (``view`` clamps too, but clamping here keeps
    the effective lag — which the health watchdog reads as the
    timestamp-skew signal — honest about what the camera actually saw).
    """
    if static_lag < 0 or drift_lag < 0:
        raise ValueError("lags must be non-negative")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    return min(static_lag + drift_lag, depth - 1)


class WorldHistory:
    """A rolling buffer of world snapshots for lagged observation.

    Snapshots are deep-enough copies of the object list (positions and
    kinematics), so later world mutation does not alter history.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self._buffer: Deque[List[WorldObject]] = deque(maxlen=depth)

    def push(self, objects: Sequence[WorldObject]) -> None:
        """Record the current object list as the newest snapshot."""
        self._buffer.append([_copy_object(o) for o in objects])

    def view(self, lag_frames: int) -> List[WorldObject]:
        """The object list ``lag_frames`` ago (clamped to buffer depth).

        ``lag_frames = 0`` is the most recent snapshot. Before the buffer
        fills, the oldest available snapshot is returned.
        """
        if lag_frames < 0:
            raise ValueError("lag_frames must be non-negative")
        if not self._buffer:
            return []
        index = len(self._buffer) - 1 - lag_frames
        index = max(0, index)
        return self._buffer[index]

    def __len__(self) -> int:
        return len(self._buffer)


def snapshot_objects(objects: Sequence[WorldObject]) -> List[WorldObject]:
    """Deep-enough copies of ``objects`` (what the history buffer keeps).

    The ``sensor_freeze`` fault uses this to capture the frame a frozen
    camera keeps repeating: later world mutation must not leak into the
    frozen view, or the freeze would not actually repeat content.
    """
    return [_copy_object(o) for o in objects]


def _copy_object(obj: WorldObject) -> WorldObject:
    return WorldObject(
        object_id=obj.object_id,
        object_class=obj.object_class,
        x=obj.x,
        y=obj.y,
        heading=obj.heading,
        speed=obj.speed,
        length=obj.length,
        width=obj.width,
        height=obj.height,
        spawn_time=obj.spawn_time,
        route_id=obj.route_id,
        route_progress=obj.route_progress,
        alive=obj.alive,
        attributes=dict(obj.attributes),
    )
