"""The ``--faults`` spec DSL, chaos presets, and spec resolution.

Scripted events are semicolon-separated ``kind:key=value,...`` clauses::

    crash:cam=1,at=12,for=10        # camera 1 dead for frames [12, 22)
    partition:cam=0,at=8,for=6      # camera 0 unreachable for 6 frames
    loss:p=0.1                      # 10% message loss, all channels, whole run
    loss:p=0.3,cam=2,at=5,for=20    # scoped loss burst on camera 2's channel
    delay:ms=40,at=10,for=5         # +40 ms per message for 5 frames
    gpu:cam=0,x=3,at=5,for=25       # camera 0's GPU runs 3x slower
    sched_crash:at=12,for=15        # central scheduler dead for 15 frames
    sched_crash:at=12;sched_rejoin:at=30   # open-ended crash + explicit rejoin
    burst:cam=1,at=10,for=6         # camera 1's ingest stalls, then bunches
    burst:at=20,for=4               # fleet-wide ingest burst (event runtime)
    sched_partition:cam=2,at=10,for=8  # camera 2 cut off from the primary
    sched_partition:at=10,for=8     # whole fleet cut from the primary
    corrupt:p=0.05                  # 5% of messages damaged in flight
    dup:p=0.05,cam=1,at=5,for=20    # scoped duplicate delivery on camera 1
    reorder:p=0.03                  # 3% of messages delivered out of order
    freeze:cam=1,at=10,for=15       # camera 1 repeats its last frame
    drift:cam=2,rate=0.5,at=5,for=20  # camera 2's clock lags 0.5 frames/frame
    flap:cam=0,period=2,at=10,for=12  # camera 0 leaves/joins every 2 frames
    fade:cam=1,x=8,at=10,for=25     # camera 1's detector misses ramp to 8x

``at`` defaults to frame 0 and ``for`` to the rest of the run. A
``rand:`` clause instead builds a stochastic
:class:`~repro.faults.model.FaultModel` (rates per camera-frame)::

    rand:crash=0.01,outage=12,loss=0.05,gpu=0.003,gpu_x=2.5,sched=0.005

Chaos presets name curated models: ``--chaos heavy`` etc.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.faults.model import FaultModel
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

FaultInput = Union[None, str, FaultSchedule, FaultModel]

#: Curated stochastic fault mixes for chaos runs.
CHAOS_PRESETS: Dict[str, FaultModel] = {
    "light": FaultModel(
        crash_rate=0.002, mean_outage_frames=8.0,
        loss_prob=0.02,
        slowdown_rate=0.002, slowdown_factor=1.5,
        mean_slowdown_frames=10.0,
    ),
    "heavy": FaultModel(
        crash_rate=0.01, mean_outage_frames=15.0,
        partition_rate=0.005, mean_partition_frames=10.0,
        loss_prob=0.1,
        delay_spike_rate=0.01, delay_ms=60.0, mean_delay_frames=6.0,
        slowdown_rate=0.005, slowdown_factor=3.0,
        mean_slowdown_frames=20.0,
    ),
    "cameras": FaultModel(crash_rate=0.01, mean_outage_frames=12.0),
    "network": FaultModel(
        loss_prob=0.15,
        delay_spike_rate=0.02, delay_ms=80.0, mean_delay_frames=5.0,
        partition_rate=0.004, mean_partition_frames=8.0,
    ),
    "gpu": FaultModel(
        slowdown_rate=0.01, slowdown_factor=3.0, mean_slowdown_frames=25.0
    ),
    "scheduler": FaultModel(
        scheduler_crash_rate=0.01, mean_scheduler_outage_frames=15.0,
        loss_prob=0.05,
    ),
    "ingest": FaultModel(
        burst_rate=0.03, mean_burst_frames=5.0,
    ),
    "wire": FaultModel(
        loss_prob=0.05,
        corrupt_prob=0.04, duplicate_prob=0.04, reorder_prob=0.03,
        scheduler_partition_rate=0.01,
        mean_scheduler_partition_frames=8.0,
        scheduler_crash_rate=0.004, mean_scheduler_outage_frames=10.0,
    ),
    # Degraded sensors: cameras that lie rather than die. Exercises the
    # fleet-health watchdog's quarantine/probation lifecycle.
    "fleet": FaultModel(
        freeze_rate=0.012, mean_freeze_frames=10.0,
        clock_drift_rate=0.008, drift_slope=0.6, mean_drift_frames=12.0,
        flap_rate=0.006, flap_period_frames=2.0, mean_flap_frames=8.0,
        fade_rate=0.008, fade_factor=8.0, mean_fade_frames=15.0,
    ),
}

_EVENT_KINDS = {
    "crash": FaultKind.CAMERA_CRASH,
    "partition": FaultKind.PARTITION,
    "loss": FaultKind.LINK_LOSS,
    "delay": FaultKind.LINK_DELAY,
    "gpu": FaultKind.GPU_SLOWDOWN,
    "sched_crash": FaultKind.SCHEDULER_CRASH,
    "sched_rejoin": FaultKind.SCHEDULER_REJOIN,
    "burst": FaultKind.INGEST_BURST,
    "sched_partition": FaultKind.SCHEDULER_PARTITION,
    "corrupt": FaultKind.MSG_CORRUPT,
    "dup": FaultKind.MSG_DUPLICATE,
    "reorder": FaultKind.MSG_REORDER,
    "freeze": FaultKind.SENSOR_FREEZE,
    "drift": FaultKind.CLOCK_DRIFT,
    "flap": FaultKind.CAMERA_FLAP,
    "fade": FaultKind.QUALITY_FADE,
}

#: Clause name for each kind — the DSL table inverted, so events can be
#: rendered back to clause text (see :func:`render_clause`).
_CLAUSE_NAMES = {kind: name for name, kind in _EVENT_KINDS.items()}

#: Wire clauses whose magnitude is a required ``p=<prob>``.
_WIRE_CLAUSES = ("corrupt", "dup", "reorder")

#: ``rand:`` clause keys -> FaultModel fields.
_RAND_KEYS = {
    "crash": "crash_rate",
    "outage": "mean_outage_frames",
    "partition": "partition_rate",
    "partition_frames": "mean_partition_frames",
    "loss": "loss_prob",
    "delay": "delay_spike_rate",
    "delay_ms": "delay_ms",
    "delay_frames": "mean_delay_frames",
    "gpu": "slowdown_rate",
    "gpu_x": "slowdown_factor",
    "gpu_frames": "mean_slowdown_frames",
    "sched": "scheduler_crash_rate",
    "sched_frames": "mean_scheduler_outage_frames",
    "burst": "burst_rate",
    "burst_frames": "mean_burst_frames",
    "corrupt": "corrupt_prob",
    "dup": "duplicate_prob",
    "reorder": "reorder_prob",
    "sched_partition": "scheduler_partition_rate",
    "sched_partition_frames": "mean_scheduler_partition_frames",
    "freeze": "freeze_rate",
    "freeze_frames": "mean_freeze_frames",
    "drift": "clock_drift_rate",
    "drift_slope": "drift_slope",
    "drift_frames": "mean_drift_frames",
    "flap": "flap_rate",
    "flap_period": "flap_period_frames",
    "flap_frames": "mean_flap_frames",
    "fade": "fade_rate",
    "fade_x": "fade_factor",
    "fade_frames": "mean_fade_frames",
}


def _parse_kv(body: str, clause: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    if not body.strip():
        return out
    for item in body.split(","):
        if "=" not in item:
            raise ValueError(
                f"malformed fault clause {clause!r}: expected key=value, "
                f"got {item!r}"
            )
        key, value = item.split("=", 1)
        key, value = key.strip(), value.strip()
        if key in out:
            raise ValueError(f"duplicate key {key!r} in clause {clause!r}")
        out[key] = value
    return out


def _int_field(kv: Dict[str, str], key: str, clause: str) -> Optional[int]:
    if key not in kv:
        return None
    try:
        return int(kv.pop(key))
    except ValueError:
        raise ValueError(
            f"fault clause {clause!r}: {key} must be an integer"
        ) from None


def _float_field(kv: Dict[str, str], key: str, clause: str) -> Optional[float]:
    if key not in kv:
        return None
    try:
        return float(kv.pop(key))
    except ValueError:
        raise ValueError(f"fault clause {clause!r}: {key} must be a number") from None


def _parse_event(name: str, kv: Dict[str, str], clause: str) -> FaultEvent:
    kind = _EVENT_KINDS[name]
    if kind in (FaultKind.SCHEDULER_CRASH, FaultKind.SCHEDULER_REJOIN):
        if "cam" in kv:
            raise ValueError(
                f"fault clause {clause!r}: {name} targets the central "
                "node and takes no cam="
            )
        if kind is FaultKind.SCHEDULER_REJOIN and "for" in kv:
            raise ValueError(
                f"fault clause {clause!r}: sched_rejoin is instantaneous "
                "and takes no for="
            )
    camera = _int_field(kv, "cam", clause)
    start = _int_field(kv, "at", clause)
    duration = _int_field(kv, "for", clause)
    # Range checks with the clause in the message, so the CLI surfaces
    # the same clean one-line error as unknown keys (a negative for=
    # used to silently produce a nonsense schedule).
    if camera is not None and camera < 0:
        raise ValueError(
            f"fault clause {clause!r}: cam= must be non-negative"
        )
    if start is not None and start < 0:
        raise ValueError(
            f"fault clause {clause!r}: at= must be non-negative"
        )
    if duration is not None and duration < 1:
        raise ValueError(
            f"fault clause {clause!r}: for= must be >= 1 frame"
        )
    start = start or 0
    magnitude = 0.0
    if kind is FaultKind.LINK_LOSS or name in _WIRE_CLAUSES:
        p = _float_field(kv, "p", clause)
        if p is None:
            raise ValueError(f"fault clause {clause!r}: {name} needs p=<prob>")
        magnitude = p
    elif kind is FaultKind.LINK_DELAY:
        ms = _float_field(kv, "ms", clause)
        if ms is None:
            raise ValueError(f"fault clause {clause!r}: delay needs ms=<ms>")
        magnitude = ms
    elif kind is FaultKind.GPU_SLOWDOWN:
        x = _float_field(kv, "x", clause)
        if x is None:
            raise ValueError(f"fault clause {clause!r}: gpu needs x=<factor>")
        magnitude = x
    elif kind is FaultKind.CLOCK_DRIFT:
        rate = _float_field(kv, "rate", clause)
        if rate is None:
            raise ValueError(
                f"fault clause {clause!r}: drift needs rate=<frames/frame>"
            )
        magnitude = rate
    elif kind is FaultKind.CAMERA_FLAP:
        period = _float_field(kv, "period", clause)
        magnitude = 2.0 if period is None else period
    elif kind is FaultKind.QUALITY_FADE:
        x = _float_field(kv, "x", clause)
        if x is None:
            raise ValueError(
                f"fault clause {clause!r}: fade needs x=<multiplier>"
            )
        magnitude = x
    if kv:
        raise ValueError(
            f"fault clause {clause!r}: unknown keys {sorted(kv)}"
        )
    return FaultEvent(
        kind=kind,
        start_frame=start,
        duration=duration,
        camera_id=camera,
        magnitude=magnitude,
    )


def _parse_model(kv: Dict[str, str], clause: str) -> FaultModel:
    fields: Dict[str, float] = {}
    for key in list(kv):
        if key not in _RAND_KEYS:
            raise ValueError(
                f"fault clause {clause!r}: unknown rand key {key!r}; "
                f"options: {sorted(_RAND_KEYS)}"
            )
        value = _float_field(kv, key, clause)
        assert value is not None
        fields[_RAND_KEYS[key]] = value
    return FaultModel(**fields)


def parse_fault_spec(spec: str) -> Union[FaultSchedule, FaultModel]:
    """Parse a ``--faults`` spec into a schedule (or stochastic model).

    A spec either scripts concrete events (any mix of ``crash`` /
    ``partition`` / ``loss`` / ``delay`` / ``gpu`` clauses) or is a
    single ``rand:`` clause describing a :class:`FaultModel`; the two
    forms cannot be combined.
    """
    clauses = [c.strip() for c in spec.split(";") if c.strip()]
    if not clauses:
        raise ValueError("empty fault spec")
    events: List[FaultEvent] = []
    for clause in clauses:
        name, _, body = clause.partition(":")
        name = name.strip()
        kv = _parse_kv(body, clause)
        if name == "rand":
            if len(clauses) != 1:
                raise ValueError(
                    "a rand: clause must be the whole spec (got "
                    f"{len(clauses)} clauses)"
                )
            return _parse_model(kv, clause)
        if name not in _EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {name!r} in clause {clause!r}; "
                f"valid clauses: {', '.join(sorted(_EVENT_KINDS))}, or rand"
            )
        events.append(_parse_event(name, kv, clause))
    return FaultSchedule(events)


#: Magnitude key each clause renders with (absent = magnitude unused).
_MAGNITUDE_KEYS = {
    FaultKind.LINK_LOSS: "p",
    FaultKind.MSG_CORRUPT: "p",
    FaultKind.MSG_DUPLICATE: "p",
    FaultKind.MSG_REORDER: "p",
    FaultKind.LINK_DELAY: "ms",
    FaultKind.GPU_SLOWDOWN: "x",
    FaultKind.CLOCK_DRIFT: "rate",
    FaultKind.CAMERA_FLAP: "period",
    FaultKind.QUALITY_FADE: "x",
}


def render_clause(event: FaultEvent) -> str:
    """Render one event back to DSL clause text.

    The exact inverse of :func:`parse_fault_spec` for a single clause:
    ``parse_fault_spec(render_clause(e))`` yields a schedule containing
    exactly ``e``. Keeps the DSL table honest — a kind that can't render
    has silently drifted from the parser.
    """
    name = _CLAUSE_NAMES.get(event.kind)
    if name is None:
        raise ValueError(f"{event.kind.value} has no DSL clause")
    parts = []
    if event.camera_id is not None:
        parts.append(f"cam={event.camera_id}")
    magnitude_key = _MAGNITUDE_KEYS.get(event.kind)
    if magnitude_key is not None:
        parts.append(f"{magnitude_key}={event.magnitude:g}")
    if event.start_frame:
        parts.append(f"at={event.start_frame}")
    if event.duration is not None:
        parts.append(f"for={event.duration}")
    return f"{name}:{','.join(parts)}" if parts else name + ":"


def validate_fault_spec(spec: str) -> None:
    """Raise ``ValueError`` if ``spec`` is not parseable (CLI fail-fast)."""
    parse_fault_spec(spec)


def spec_carries_ingest_bursts(faults: FaultInput) -> bool:
    """Can this fault input ever stall ingest?

    Ingest bursts only have meaning under the event runtime, so the CLI
    and pipeline use this to fail fast when ``--runtime sync`` is paired
    with a burst-carrying spec, schedule, model, or chaos preset.
    """
    if faults is None:
        return False
    if isinstance(faults, str):
        text = faults.strip()
        if not text:
            return False
        if text in CHAOS_PRESETS:
            faults = CHAOS_PRESETS[text]
        else:
            faults = parse_fault_spec(text)
    if isinstance(faults, FaultModel):
        return faults.burst_rate > 0.0
    if isinstance(faults, FaultSchedule):
        return faults.has_ingest_bursts
    return False


def resolve_faults(
    faults: FaultInput,
    camera_ids: Sequence[int],
    n_frames: int,
    seed: int,
) -> Optional[FaultSchedule]:
    """Turn a config-level fault input into a concrete schedule.

    Accepts ``None`` / empty (faults disabled), a spec string, a preset
    name from :data:`CHAOS_PRESETS`, a ready :class:`FaultSchedule`, or
    a :class:`FaultModel` to compile for this run. Returns ``None``
    whenever nothing can ever fire, so the pipeline keeps its pristine
    fault-free code path.
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        text = faults.strip()
        if not text:
            return None
        if text in CHAOS_PRESETS:
            faults = CHAOS_PRESETS[text]
        else:
            faults = parse_fault_spec(text)
    if isinstance(faults, FaultModel):
        if faults.is_null:
            return None
        faults = faults.compile(camera_ids, n_frames, seed)
    if not isinstance(faults, FaultSchedule):
        raise TypeError(
            "faults must be None, a spec string, a FaultSchedule or a "
            f"FaultModel; got {type(faults).__name__}"
        )
    return faults if faults else None
