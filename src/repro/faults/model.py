"""Stochastic fault processes, compiled ahead of time.

A :class:`FaultModel` describes *rates* — crash probability per
camera-frame, steady link loss, thermal-throttling onset rate — and
turns them into a concrete :class:`~repro.faults.schedule.FaultSchedule`
with :meth:`FaultModel.compile`. Compiling up front (rather than drawing
faults during the run) keeps fault randomness out of the simulation's
RNG streams: the same seed always yields the same schedule, and a
zero-rate model compiles to an empty schedule.

Outage/throttle durations are geometric with the configured means, the
standard memoryless failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule


@dataclass(frozen=True)
class FaultModel:
    """Rate-based description of an unreliable deployment.

    All ``*_rate`` fields are per camera per frame onset probabilities;
    ``loss_prob`` is a steady per-message loss applied to every channel
    for the whole run. Durations are mean frames of the geometric
    outage/throttle windows.
    """

    crash_rate: float = 0.0
    mean_outage_frames: float = 10.0
    partition_rate: float = 0.0
    mean_partition_frames: float = 8.0
    loss_prob: float = 0.0
    delay_spike_rate: float = 0.0
    delay_ms: float = 50.0
    mean_delay_frames: float = 5.0
    slowdown_rate: float = 0.0
    slowdown_factor: float = 2.0
    mean_slowdown_frames: float = 20.0
    scheduler_crash_rate: float = 0.0
    mean_scheduler_outage_frames: float = 12.0
    burst_rate: float = 0.0
    mean_burst_frames: float = 5.0
    #: Byzantine wire faults: steady per-message probabilities applied
    #: to every channel for the whole run, like ``loss_prob``.
    corrupt_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    #: Scheduler partition: per-frame onset probability of a cut that
    #: severs a random camera subset from the primary for a geometric
    #: window (then heals, forcing the split-brain reunite path).
    scheduler_partition_rate: float = 0.0
    mean_scheduler_partition_frames: float = 8.0
    #: Degraded-sensor processes: the camera keeps heartbeating but its
    #: output lies. Onset rates are per camera-frame like ``crash_rate``.
    freeze_rate: float = 0.0
    mean_freeze_frames: float = 10.0
    clock_drift_rate: float = 0.0
    drift_slope: float = 0.5  # lag frames gained per frame while drifting
    mean_drift_frames: float = 15.0
    flap_rate: float = 0.0
    flap_period_frames: float = 2.0  # leave/join phase length
    mean_flap_frames: float = 10.0
    fade_rate: float = 0.0
    fade_factor: float = 8.0  # miss-probability multiplier at full fade
    mean_fade_frames: float = 20.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "partition_rate", "delay_spike_rate",
                     "slowdown_rate", "loss_prob", "scheduler_crash_rate",
                     "burst_rate", "corrupt_prob", "duplicate_prob",
                     "reorder_prob", "scheduler_partition_rate",
                     "freeze_rate", "clock_drift_rate", "flap_rate",
                     "fade_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        for name in ("mean_outage_frames", "mean_partition_frames",
                     "mean_delay_frames", "mean_slowdown_frames",
                     "mean_scheduler_outage_frames", "mean_burst_frames",
                     "mean_scheduler_partition_frames",
                     "mean_freeze_frames", "mean_drift_frames",
                     "mean_flap_frames", "mean_fade_frames"):
            if getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be >= 1 frame")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        if self.slowdown_factor <= 0:
            raise ValueError("slowdown_factor must be positive")
        if self.drift_slope <= 0:
            raise ValueError("drift_slope must be positive")
        if self.flap_period_frames < 1.0:
            raise ValueError("flap_period_frames must be >= 1 frame")
        if self.fade_factor < 1.0:
            raise ValueError("fade_factor must be >= 1")

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire (compiles to empty)."""
        return (
            self.crash_rate == 0.0
            and self.partition_rate == 0.0
            and self.loss_prob == 0.0
            and self.delay_spike_rate == 0.0
            and self.slowdown_rate == 0.0
            and self.scheduler_crash_rate == 0.0
            and self.burst_rate == 0.0
            and self.corrupt_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.reorder_prob == 0.0
            and self.scheduler_partition_rate == 0.0
            and self.freeze_rate == 0.0
            and self.clock_drift_rate == 0.0
            and self.flap_rate == 0.0
            and self.fade_rate == 0.0
        )

    # ------------------------------------------------------------------
    def compile(
        self, camera_ids: Sequence[int], n_frames: int, seed: int
    ) -> FaultSchedule:
        """Draw a concrete schedule for one run, deterministically.

        Cameras are processed in sorted order and kinds in a fixed
        order, so the schedule depends only on ``(model, camera set,
        n_frames, seed)``. A camera never re-enters a fault kind while a
        previous window of that kind is still open.
        """
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        # Steady fleet-wide events consume no RNG, so appending new
        # kinds here never perturbs the drawn processes below.
        steady = (
            (FaultKind.LINK_LOSS, self.loss_prob),
            (FaultKind.MSG_CORRUPT, self.corrupt_prob),
            (FaultKind.MSG_DUPLICATE, self.duplicate_prob),
            (FaultKind.MSG_REORDER, self.reorder_prob),
        )
        for kind, prob in steady:
            if prob > 0.0:
                events.append(
                    FaultEvent(
                        kind=kind,
                        start_frame=0,
                        duration=n_frames,
                        camera_id=None,
                        magnitude=prob,
                    )
                )
        processes = (
            (FaultKind.CAMERA_CRASH, self.crash_rate,
             self.mean_outage_frames, 0.0),
            (FaultKind.PARTITION, self.partition_rate,
             self.mean_partition_frames, 0.0),
            (FaultKind.LINK_DELAY, self.delay_spike_rate,
             self.mean_delay_frames, self.delay_ms),
            (FaultKind.GPU_SLOWDOWN, self.slowdown_rate,
             self.mean_slowdown_frames, self.slowdown_factor),
            # Drawn last per camera so burst-free models compile to
            # exactly the schedules they did before the kind existed.
            (FaultKind.INGEST_BURST, self.burst_rate,
             self.mean_burst_frames, 0.0),
        )
        for cam in sorted(camera_ids):
            for kind, rate, mean_frames, magnitude in processes:
                if rate <= 0.0:
                    continue
                frame = 0
                while frame < n_frames:
                    if rng.random() < rate:
                        duration = int(rng.geometric(1.0 / mean_frames))
                        duration = max(1, min(duration, n_frames - frame))
                        events.append(
                            FaultEvent(
                                kind=kind,
                                start_frame=frame,
                                duration=duration,
                                camera_id=cam,
                                magnitude=magnitude,
                            )
                        )
                        frame += duration
                    else:
                        frame += 1
        # The scheduler-crash process is drawn *after* every per-camera
        # process, so models without scheduler faults compile to exactly
        # the schedules they did before the kind existed.
        if self.scheduler_crash_rate > 0.0:
            frame = 0
            while frame < n_frames:
                if rng.random() < self.scheduler_crash_rate:
                    duration = int(
                        rng.geometric(1.0 / self.mean_scheduler_outage_frames)
                    )
                    duration = max(1, min(duration, n_frames - frame))
                    events.append(
                        FaultEvent(
                            kind=FaultKind.SCHEDULER_CRASH,
                            start_frame=frame,
                            duration=duration,
                        )
                    )
                    frame += duration
                else:
                    frame += 1
        # The scheduler-partition process draws *after* the crash
        # process for the same reason: models without partitions compile
        # byte-identically to the pre-partition schedules. Each onset
        # cuts a random nonempty camera subset from the primary for one
        # geometric window, then heals — the split-brain stressor.
        if self.scheduler_partition_rate > 0.0:
            cams = sorted(camera_ids)
            frame = 0
            while frame < n_frames:
                if rng.random() < self.scheduler_partition_rate:
                    duration = int(
                        rng.geometric(
                            1.0 / self.mean_scheduler_partition_frames
                        )
                    )
                    duration = max(1, min(duration, n_frames - frame))
                    k = int(rng.integers(1, len(cams) + 1))
                    chosen = rng.choice(len(cams), size=k, replace=False)
                    for idx in sorted(int(i) for i in chosen):
                        events.append(
                            FaultEvent(
                                kind=FaultKind.SCHEDULER_PARTITION,
                                start_frame=frame,
                                duration=duration,
                                camera_id=cams[idx],
                            )
                        )
                    frame += duration
                else:
                    frame += 1
        # Degraded-sensor processes draw after *every* pre-existing
        # process (per-camera, scheduler-crash and scheduler-partition
        # alike), so sensor-free models compile to exactly the schedules
        # they did before these kinds existed.
        sensor_processes = (
            (FaultKind.SENSOR_FREEZE, self.freeze_rate,
             self.mean_freeze_frames, 0.0),
            (FaultKind.CLOCK_DRIFT, self.clock_drift_rate,
             self.mean_drift_frames, self.drift_slope),
            (FaultKind.CAMERA_FLAP, self.flap_rate,
             self.mean_flap_frames, self.flap_period_frames),
            (FaultKind.QUALITY_FADE, self.fade_rate,
             self.mean_fade_frames, self.fade_factor),
        )
        for cam in sorted(camera_ids):
            for kind, rate, mean_frames, magnitude in sensor_processes:
                if rate <= 0.0:
                    continue
                frame = 0
                while frame < n_frames:
                    if rng.random() < rate:
                        duration = int(rng.geometric(1.0 / mean_frames))
                        duration = max(1, min(duration, n_frames - frame))
                        events.append(
                            FaultEvent(
                                kind=kind,
                                start_frame=frame,
                                duration=duration,
                                camera_id=cam,
                                magnitude=magnitude,
                            )
                        )
                        frame += duration
                    else:
                        frame += 1
        return FaultSchedule(events)
