"""Deterministic fault injection for the multi-view runtime.

The paper's evaluation assumes every camera, link and GPU stays healthy
for the whole run. This package models the ways a deployment actually
breaks — camera crash/rejoin, link message loss and latency spikes,
network partition of a camera from the scheduler, GPU thermal
throttling — and drives them deterministically from the run seed, so a
faulted run is exactly as reproducible as a clean one.

Two front doors:

* :class:`FaultSchedule` — scripted events (``FaultEvent`` list), built
  directly or parsed from the compact spec DSL (:func:`parse_fault_spec`).
* :class:`FaultModel` — stochastic processes (crash rate, loss
  probability, ...) that *compile* into a concrete ``FaultSchedule``
  ahead of the run, so fault randomness never interleaves with the
  simulation's own RNG streams.

The runtime consumes per-frame :class:`FrameFaults` snapshots via
``FaultSchedule.at``.
"""

from repro.faults.model import FaultModel
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FrameFaults,
)
from repro.faults.spec import (
    CHAOS_PRESETS,
    parse_fault_spec,
    render_clause,
    resolve_faults,
    validate_fault_spec,
)

__all__ = [
    "CHAOS_PRESETS",
    "FaultEvent",
    "FaultKind",
    "FaultModel",
    "FaultSchedule",
    "FrameFaults",
    "parse_fault_spec",
    "render_clause",
    "resolve_faults",
    "validate_fault_spec",
]
