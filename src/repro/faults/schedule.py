"""Scripted fault events and their per-frame runtime view.

A :class:`FaultSchedule` is an immutable list of :class:`FaultEvent`
windows over the frame index axis. The pipeline asks it once per frame
for a :class:`FrameFaults` snapshot — who is down, who is partitioned,
what each camera's link loss/delay and GPU slowdown are — and for the
events *starting* at that frame, which it emits as trace spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
import math
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.net.link import LinkFault

#: Hard ceiling on clock-drift lag, in frames. Bounds the world-history
#: depth the pipeline must retain no matter how long a drift window runs.
DRIFT_LAG_CAP = 12

#: Frames over which a quality fade ramps from 1.0 to its full factor.
FADE_RAMP_FRAMES = 10


class FaultKind(enum.Enum):
    """The fault taxonomy the runtime knows how to degrade under."""

    CAMERA_CRASH = "camera_crash"  # node stops processing frames entirely
    PARTITION = "partition"  # node runs, but cannot reach the scheduler
    LINK_LOSS = "link_loss"  # probabilistic message loss on the channel
    LINK_DELAY = "link_delay"  # additive per-message latency spike (ms)
    GPU_SLOWDOWN = "gpu_slowdown"  # thermal throttling: latency multiplier
    SCHEDULER_CRASH = "scheduler_crash"  # central node stops scheduling
    SCHEDULER_REJOIN = "scheduler_rejoin"  # central node comes back (instant)
    INGEST_BURST = "ingest_burst"  # frame arrivals stall, then bunch up
    SCHEDULER_PARTITION = "scheduler_partition"  # cameras cut off from primary
    MSG_CORRUPT = "msg_corrupt"  # in-flight bit damage (checksum rejects)
    MSG_DUPLICATE = "msg_duplicate"  # wire delivers a second copy
    MSG_REORDER = "msg_reorder"  # wire delivers out of order
    SENSOR_FREEZE = "sensor_freeze"  # heartbeats fine, repeats its last frame
    CLOCK_DRIFT = "clock_drift"  # per-camera lag grows over the window
    CAMERA_FLAP = "camera_flap"  # rapid leave/join membership churn
    QUALITY_FADE = "quality_fade"  # detector recall decays (lens fouling)


#: Degraded-sensor kinds: the camera keeps talking but lies. These arm
#: the fleet-health watchdog rather than the crash/partition machinery.
_SENSOR_KINDS = (FaultKind.SENSOR_FREEZE, FaultKind.CLOCK_DRIFT,
                 FaultKind.CAMERA_FLAP, FaultKind.QUALITY_FADE)

#: Kinds that require a concrete camera id (link faults may be fleet-wide).
_CAMERA_REQUIRED = (FaultKind.CAMERA_CRASH, FaultKind.PARTITION,
                    FaultKind.GPU_SLOWDOWN) + _SENSOR_KINDS

#: Kinds affecting the central node itself: never bound to a camera.
_SCHEDULER_KINDS = (FaultKind.SCHEDULER_CRASH, FaultKind.SCHEDULER_REJOIN)

#: Byzantine wire faults: per-message probabilities, like LINK_LOSS.
_WIRE_KINDS = (FaultKind.MSG_CORRUPT, FaultKind.MSG_DUPLICATE,
               FaultKind.MSG_REORDER)


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: ``kind`` on ``camera_id`` over frame range.

    ``duration`` is in frames; ``None`` means "until the end of the run".
    ``magnitude`` is kind-specific: loss probability for ``LINK_LOSS``,
    extra milliseconds for ``LINK_DELAY``, latency multiplier for
    ``GPU_SLOWDOWN``; unused (0.0) for crash/partition.
    ``camera_id=None`` applies a link fault to every channel.
    """

    kind: FaultKind
    start_frame: int
    duration: Optional[int] = None
    camera_id: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.start_frame < 0:
            raise ValueError("start_frame must be non-negative")
        if self.duration is not None and self.duration < 1:
            raise ValueError("duration must be >= 1 frame (or None)")
        if self.camera_id is None and self.kind in _CAMERA_REQUIRED:
            raise ValueError(f"{self.kind.value} events need a camera_id")
        if self.camera_id is not None and self.kind in _SCHEDULER_KINDS:
            raise ValueError(
                f"{self.kind.value} affects the central node; camera_id "
                "must be None"
            )
        if self.kind is FaultKind.SCHEDULER_REJOIN and self.duration is not None:
            raise ValueError(
                "scheduler_rejoin is instantaneous; it takes no duration"
            )
        if self.kind is FaultKind.LINK_LOSS and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError("link_loss magnitude is a probability in [0, 1]")
        if self.kind in _WIRE_KINDS and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError(
                f"{self.kind.value} magnitude is a probability in [0, 1]"
            )
        if self.kind is FaultKind.LINK_DELAY and self.magnitude < 0:
            raise ValueError("link_delay magnitude (ms) must be non-negative")
        if self.kind is FaultKind.GPU_SLOWDOWN and self.magnitude <= 0:
            raise ValueError("gpu_slowdown magnitude (factor) must be positive")
        if self.kind is FaultKind.CLOCK_DRIFT and self.magnitude <= 0:
            raise ValueError(
                "clock_drift magnitude (lag frames gained per frame) must "
                "be positive"
            )
        if self.kind is FaultKind.CAMERA_FLAP and self.magnitude < 1:
            raise ValueError(
                "camera_flap magnitude (phase period in frames) must be >= 1"
            )
        if self.kind is FaultKind.QUALITY_FADE and self.magnitude < 1:
            raise ValueError(
                "quality_fade magnitude (miss-probability multiplier) must "
                "be >= 1"
            )

    @property
    def end_frame(self) -> Optional[int]:
        """Exclusive end of the window (``None`` = open-ended)."""
        if self.duration is None:
            return None
        return self.start_frame + self.duration

    def active_at(self, frame: int) -> bool:
        """Is this event in effect at ``frame``?"""
        if frame < self.start_frame:
            return False
        end = self.end_frame
        return end is None or frame < end

    def applies_to(self, camera_id: int) -> bool:
        """Does this event affect ``camera_id`` (fleet-wide counts)?"""
        return self.camera_id is None or self.camera_id == camera_id


@dataclass(frozen=True)
class FrameFaults:
    """Resolved fault state of one frame, per camera."""

    frame: int
    down: FrozenSet[int]
    partitioned: FrozenSet[int]
    gpu_factor: Dict[int, float]  # camera -> multiplier (absent = 1.0)
    link_faults: Dict[int, LinkFault]  # camera -> loss/delay (absent = clean)
    started: Tuple[FaultEvent, ...]  # events whose window opens this frame
    scheduler_down: bool = False  # central node unavailable this frame
    bursting: FrozenSet[int] = frozenset()  # cameras in an ingest burst
    #: Cameras the *primary scheduler* cannot reach this frame. Unlike
    #: ``partitioned`` (camera cut off from everyone), these cameras can
    #: still talk to a standby on their side of the cut — the substrate
    #: of the split-brain scenario.
    sched_partitioned: FrozenSet[int] = frozenset()
    #: Cameras whose sensor repeats its last frame (still heartbeating).
    frozen: FrozenSet[int] = frozenset()
    #: Extra lag frames accumulated by drifting clocks (absent = 0).
    drift_lags: Dict[int, int] = field(default_factory=dict)
    #: Detector miss-probability multipliers from quality fades
    #: (absent = 1.0).
    fade: Dict[int, float] = field(default_factory=dict)

    @property
    def any_active(self) -> bool:
        return bool(
            self.down or self.partitioned or self.gpu_factor
            or self.link_faults or self.started or self.scheduler_down
            or self.bursting or self.sched_partitioned
            or self.frozen or self.drift_lags or self.fade
        )


class FaultSchedule:
    """An immutable set of fault events, queried frame by frame."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(
                events,
                key=lambda e: (
                    e.start_frame,
                    e.kind.value,
                    -1 if e.camera_id is None else e.camera_id,
                ),
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------
    def down_cameras(self, frame: int) -> FrozenSet[int]:
        """Cameras crashed (not processing at all) at ``frame``.

        Includes the down phases of ``CAMERA_FLAP`` windows: a flapping
        camera alternates leave/join every ``magnitude`` frames, opening
        with a leave, which is exactly the churn that thrashes naive
        membership handling.
        """
        crashed = set(
            e.camera_id
            for e in self.events
            if e.kind is FaultKind.CAMERA_CRASH
            and e.active_at(frame)
            and e.camera_id is not None
        )
        for e in self.events:
            if (
                e.kind is FaultKind.CAMERA_FLAP
                and e.active_at(frame)
                and e.camera_id is not None
            ):
                period = max(1, int(e.magnitude))
                if ((frame - e.start_frame) // period) % 2 == 0:
                    crashed.add(e.camera_id)
        return frozenset(crashed)

    def partitioned_cameras(self, frame: int) -> FrozenSet[int]:
        """Cameras running but cut off from the scheduler at ``frame``."""
        return frozenset(
            e.camera_id
            for e in self.events
            if e.kind is FaultKind.PARTITION
            and e.active_at(frame)
            and e.camera_id is not None
        )

    def scheduler_partitioned_cameras(
        self, frame: int, camera_ids: Sequence[int]
    ) -> FrozenSet[int]:
        """Cameras the primary scheduler cannot reach at ``frame``.

        A ``SCHEDULER_PARTITION`` event with ``camera_id=None`` cuts the
        whole fleet; a camera-scoped one cuts that camera. The cut side
        can still reach a standby among themselves, so this is the
        split-brain substrate rather than plain unreachability.
        """
        cut = set()
        for e in self.events:
            if e.kind is not FaultKind.SCHEDULER_PARTITION:
                continue
            if not e.active_at(frame):
                continue
            if e.camera_id is None:
                cut.update(camera_ids)
            else:
                cut.add(e.camera_id)
        return frozenset(cut) & frozenset(camera_ids)

    @property
    def has_scheduler_faults(self) -> bool:
        """Can any event change who holds central-scheduling duty?

        Covers crash/rejoin of the central node *and* scheduler
        partitions — a cut camera subset may elect its own leader, so
        partitions arm the failover machinery too.
        """
        return any(
            e.kind in _SCHEDULER_KINDS
            or e.kind is FaultKind.SCHEDULER_PARTITION
            for e in self.events
        )

    @property
    def has_scheduler_partitions(self) -> bool:
        """Does any event cut cameras off from the primary scheduler?"""
        return any(
            e.kind is FaultKind.SCHEDULER_PARTITION for e in self.events
        )

    @property
    def has_wire_faults(self) -> bool:
        """Does any event corrupt, duplicate or reorder messages?"""
        return any(e.kind in _WIRE_KINDS for e in self.events)

    @property
    def has_ingest_bursts(self) -> bool:
        """Does any event stall frame ingest (event runtime only)?"""
        return any(
            e.kind is FaultKind.INGEST_BURST for e in self.events
        )

    @property
    def has_sensor_faults(self) -> bool:
        """Can any event degrade a sensor without killing the camera?

        Freeze/drift/flap/fade events arm the fleet-health watchdog;
        without them the pipeline keeps its pristine code path and
        fault-free golden traces stay byte-identical.
        """
        return any(e.kind in _SENSOR_KINDS for e in self.events)

    def frozen_cameras(self, frame: int) -> FrozenSet[int]:
        """Cameras whose sensor repeats its last frame at ``frame``."""
        return frozenset(
            e.camera_id
            for e in self.events
            if e.kind is FaultKind.SENSOR_FREEZE
            and e.active_at(frame)
            and e.camera_id is not None
        )

    def drift_lag(self, frame: int, camera_id: int) -> int:
        """Extra lag frames a drifting clock has accumulated at ``frame``.

        Each active ``CLOCK_DRIFT`` event contributes
        ``floor(rate * elapsed)`` lag frames, where ``rate`` is its
        magnitude; the sum is capped at :data:`DRIFT_LAG_CAP` so history
        depth stays bounded.
        """
        lag = 0
        for e in self.events:
            if (
                e.kind is FaultKind.CLOCK_DRIFT
                and e.active_at(frame)
                and e.camera_id == camera_id
            ):
                lag += int(math.floor(e.magnitude * (frame - e.start_frame + 1)))
        return min(lag, DRIFT_LAG_CAP)

    def max_drift_lag(self, n_frames: int) -> int:
        """Largest drift lag any camera can reach within ``n_frames``.

        The pipeline sizes its world-history buffer from this before the
        run starts, so drifting cameras always find their lagged view.
        """
        worst = 0
        cams = set(
            e.camera_id
            for e in self.events
            if e.kind is FaultKind.CLOCK_DRIFT and e.camera_id is not None
        )
        for cam in cams:
            for e in self.events:
                if e.kind is not FaultKind.CLOCK_DRIFT or e.camera_id != cam:
                    continue
                last = n_frames - 1
                if e.end_frame is not None:
                    last = min(last, e.end_frame - 1)
                if last >= e.start_frame:
                    worst = max(worst, self.drift_lag(last, cam))
        return min(worst, DRIFT_LAG_CAP)

    def fade_factor(self, frame: int, camera_id: int) -> float:
        """Combined detector miss-probability multiplier for one camera.

        A fade ramps linearly from 1.0 to its full magnitude over the
        first :data:`FADE_RAMP_FRAMES` frames of the window — recall
        *decays* rather than falling off a cliff — then holds.
        """
        factor = 1.0
        for e in self.events:
            if (
                e.kind is FaultKind.QUALITY_FADE
                and e.active_at(frame)
                and e.camera_id == camera_id
            ):
                elapsed = frame - e.start_frame + 1
                ramp = min(1.0, elapsed / float(FADE_RAMP_FRAMES))
                factor *= 1.0 + (e.magnitude - 1.0) * ramp
        return factor

    def ingest_bursting(self, frame: int, camera_id: int) -> bool:
        """Is ``camera_id``'s frame ingest stalled by a burst at ``frame``?"""
        return any(
            e.kind is FaultKind.INGEST_BURST
            and e.active_at(frame)
            and e.applies_to(camera_id)
            for e in self.events
        )

    def burst_release_frame(
        self, frame: int, camera_id: int, n_frames: int
    ) -> Optional[int]:
        """First frame at/after ``frame`` where ingest flows again.

        A frame produced inside a burst window is held back and released
        (bunched with the rest of the window's frames) at the returned
        frame. ``None`` means the burst extends past the end of the run:
        the frame never arrives.
        """
        release = frame
        while release < n_frames and self.ingest_bursting(release, camera_id):
            release += 1
        return release if release < n_frames else None

    def scheduler_down(self, frame: int) -> bool:
        """Is the central scheduler node crashed at ``frame``?

        A ``SCHEDULER_CRASH`` window ends at its explicit duration, at the
        first ``SCHEDULER_REJOIN`` event after its start, or never (an
        open-ended crash with no rejoin lasts the rest of the run).
        """
        rejoins = sorted(
            e.start_frame
            for e in self.events
            if e.kind is FaultKind.SCHEDULER_REJOIN
        )
        for e in self.events:
            if e.kind is not FaultKind.SCHEDULER_CRASH:
                continue
            end = e.end_frame
            if end is None:
                end = next(
                    (r for r in rejoins if r > e.start_frame), None
                )
            if frame >= e.start_frame and (end is None or frame < end):
                return True
        return False

    def gpu_factor(self, frame: int, camera_id: int) -> float:
        """Combined (multiplicative) GPU slowdown for one camera."""
        factor = 1.0
        for e in self.events:
            if (
                e.kind is FaultKind.GPU_SLOWDOWN
                and e.active_at(frame)
                and e.applies_to(camera_id)
            ):
                factor *= e.magnitude
        return factor

    def loss_prob(self, frame: int, camera_id: int) -> float:
        """Combined link-loss probability: ``1 - prod(1 - p_i)``."""
        return self._combined_prob(FaultKind.LINK_LOSS, frame, camera_id)

    def wire_prob(
        self, kind: FaultKind, frame: int, camera_id: int
    ) -> float:
        """Combined per-message probability of one Byzantine wire kind."""
        if kind not in _WIRE_KINDS:
            raise ValueError(f"{kind.value} is not a wire fault kind")
        return self._combined_prob(kind, frame, camera_id)

    def _combined_prob(
        self, kind: FaultKind, frame: int, camera_id: int
    ) -> float:
        survive = 1.0
        for e in self.events:
            if (
                e.kind is kind
                and e.active_at(frame)
                and e.applies_to(camera_id)
            ):
                survive *= 1.0 - e.magnitude
        return 1.0 - survive

    def extra_delay_ms(self, frame: int, camera_id: int) -> float:
        """Summed per-message latency spike for one camera's channel."""
        return sum(
            e.magnitude
            for e in self.events
            if e.kind is FaultKind.LINK_DELAY
            and e.active_at(frame)
            and e.applies_to(camera_id)
        )

    def started_at(self, frame: int) -> Tuple[FaultEvent, ...]:
        """Events whose window opens exactly at ``frame``."""
        return tuple(e for e in self.events if e.start_frame == frame)

    # ------------------------------------------------------------------
    def at(self, frame: int, camera_ids: Sequence[int]) -> FrameFaults:
        """Resolve the full per-camera fault state of one frame."""
        cams = sorted(camera_ids)
        partitioned = self.partitioned_cameras(frame) & frozenset(cams)
        gpu = {}
        link: Dict[int, LinkFault] = {}
        drift_lags: Dict[int, int] = {}
        fade: Dict[int, float] = {}
        for cam in cams:
            lag = self.drift_lag(frame, cam)
            if lag > 0:
                drift_lags[cam] = lag
            fade_x = self.fade_factor(frame, cam)
            if fade_x != 1.0:
                fade[cam] = fade_x
        for cam in cams:
            factor = self.gpu_factor(frame, cam)
            if factor != 1.0:
                gpu[cam] = factor
            # A partitioned camera is unreachable: total loss both ways.
            loss = 1.0 if cam in partitioned else self.loss_prob(frame, cam)
            delay = self.extra_delay_ms(frame, cam)
            corrupt = self.wire_prob(FaultKind.MSG_CORRUPT, frame, cam)
            duplicate = self.wire_prob(FaultKind.MSG_DUPLICATE, frame, cam)
            reorder = self.wire_prob(FaultKind.MSG_REORDER, frame, cam)
            if loss > 0.0 or delay > 0.0 or corrupt > 0.0 \
                    or duplicate > 0.0 or reorder > 0.0:
                link[cam] = LinkFault(
                    loss_prob=loss,
                    extra_delay_ms=delay,
                    corrupt_prob=corrupt,
                    duplicate_prob=duplicate,
                    reorder_prob=reorder,
                )
        return FrameFaults(
            frame=frame,
            down=self.down_cameras(frame) & frozenset(cams),
            partitioned=partitioned,
            gpu_factor=gpu,
            link_faults=link,
            started=self.started_at(frame),
            scheduler_down=self.scheduler_down(frame),
            bursting=frozenset(
                cam for cam in cams if self.ingest_bursting(frame, cam)
            ),
            sched_partitioned=self.scheduler_partitioned_cameras(
                frame, cams
            ),
            frozen=self.frozen_cameras(frame) & frozenset(cams),
            drift_lags=drift_lags,
            fade=fade,
        )
