"""Hot-path microbenchmarks with a regression gate.

``repro bench`` times the kernels the vectorization work targets — the
central BALB assignment, the Hungarian solver, single and batched KNN
association queries, `BALBResult.priority_of`, and camera-mask
construction — and writes per-benchmark median milliseconds to a JSON
file (``BENCH_micro.json``). Passing ``--baseline`` compares each median
against a checked-in baseline and fails (exit 1) when any benchmark is
more than ``--max-regression`` times slower, which is the CI perf-smoke
gate.

Every benchmark builds its inputs from fixed seeds, so the *work* is
identical run to run; only machine speed moves the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's timing summary."""

    name: str
    median_ms: float
    rounds: int
    iterations: int


# ----------------------------------------------------------------------
# Benchmark bodies (each returns a zero-argument callable to time)
# ----------------------------------------------------------------------


def _setup_balb_central(n_objects: int) -> Callable[[], object]:
    from repro.core.balb import balb_central
    from repro.experiments.ablations import jetson_fleet_profiles, random_instance

    profiles = jetson_fleet_profiles(0)
    instance = random_instance(profiles, n_objects, np.random.default_rng(0))
    return lambda: balb_central(instance)


def _setup_priority_of() -> Callable[[], object]:
    from repro.core.balb import balb_central
    from repro.experiments.ablations import jetson_fleet_profiles, random_instance

    profiles = jetson_fleet_profiles(0)
    instance = random_instance(profiles, 40, np.random.default_rng(0))
    result = balb_central(instance)
    cams = sorted(result.camera_latencies)

    def body() -> int:
        total = 0
        for cam in cams:
            total += result.priority_of(cam)
        return total

    return body


def _setup_hungarian(n: int) -> Callable[[], object]:
    from repro.ml.hungarian import hungarian

    cost = np.random.default_rng(1).random((n, n))
    return lambda: hungarian(cost)


def _trained_associator():
    """A two-camera associator fitted on synthetic correspondences."""
    from repro.association.pairwise import PairwiseAssociator
    from repro.association.training import AssociationDataset
    from repro.geometry.box import BBox

    rng = np.random.default_rng(2)
    dataset = AssociationDataset()
    fwd = dataset.pair(0, 1)
    back = dataset.pair(1, 0)
    for _ in range(800):
        cx = float(rng.uniform(0.0, 1000.0))
        cy = float(rng.uniform(0.0, 600.0))
        w = float(rng.uniform(30.0, 80.0))
        src = BBox.from_xywh(cx, cy, w, w * 0.7)
        dst = src.translate(150.0, 0.0) if cx < 500.0 else None
        fwd.add(src, dst)
        back.add(dst if dst is not None else src, None if dst is None else src)
    return PairwiseAssociator().fit(dataset)


def _setup_knn_query() -> Callable[[], object]:
    from repro.geometry.box import BBox

    assoc = _trained_associator()
    probe = BBox.from_xywh(250.0, 300.0, 50.0, 35.0)

    def body() -> object:
        assoc.predict_visible(0, 1, probe)
        return assoc.predict_box(0, 1, probe)

    return body


def _setup_knn_query_batch(n_probes: int) -> Callable[[], object]:
    from repro.geometry.box import BBox

    assoc = _trained_associator()
    model = assoc.model(0, 1)
    assert model is not None
    rng = np.random.default_rng(3)
    probes = [
        BBox.from_xywh(
            float(rng.uniform(0.0, 1000.0)), float(rng.uniform(0.0, 600.0)),
            50.0, 35.0,
        )
        for _ in range(n_probes)
    ]

    def body() -> object:
        model.predict_visible_batch(probes)
        return model.predict_boxes(probes)

    return body


def _setup_serving_fanout(subscribers: int) -> Callable[[], object]:
    from repro.net.messages import SnapshotMessage
    from repro.serving.edge import SnapshotCache

    cache = SnapshotCache()
    state = {"version": 0}

    def body() -> object:
        # One publication (cache miss + encode) fanned out to the whole
        # simulated fleet; serve_many keeps the fan-out O(1) in n.
        version = state["version"]
        state["version"] = version + 1
        cache.put(
            SnapshotMessage(
                version=version, frame_index=version,
                is_key_frame=version % 5 == 0, n_visible=12, n_detected=11,
            )
        )
        return cache.serve_many(subscribers)

    return body


#: Frames each ``event_pipeline_burst`` iteration processes (for the
#: sustained frames/sec figure derived from its median).
EVENT_BURST_FRAMES = 12


def _setup_event_pipeline_burst() -> Callable[[], object]:
    from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
    from repro.scenarios.aic21 import get_scenario
    from repro.scenarios.bursts import fleet_burst_spec

    config = PipelineConfig(
        policy="balb", horizon=4, n_horizons=3, warmup_s=6.0,
        train_duration_s=12.0, seed=0, runtime="event", ingest_capacity=2,
        ingest_policy="coalesce-to-key-frame",
        faults=fleet_burst_spec(4, EVENT_BURST_FRAMES),
    )
    scenario = get_scenario("S2", seed=0)
    trained = train_models(scenario, config)
    return lambda: run_policy(scenario, "balb", config, trained)


#: Frames each ``e2e_frames_per_sec_*`` iteration simulates (horizon ×
#: n_horizons of the benchmark config), for the frames/sec figure.
E2E_FRAMES = 40


def _setup_e2e_frames(scenario_name: str) -> Callable[[], object]:
    """End-to-end sync-runtime frame loop on one scenario.

    Training happens in setup so the timed body is exactly the per-frame
    hot path: world stepping, projection, detection, tracking, and BALB
    scheduling over ``E2E_FRAMES`` frames of the golden S1 shape.
    """
    from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
    from repro.scenarios.aic21 import get_scenario

    config = PipelineConfig(
        policy="balb", horizon=5, n_horizons=8, warmup_s=20.0,
        train_duration_s=60.0, seed=0,
    )
    scenario = get_scenario(scenario_name, seed=0)
    trained = train_models(scenario, config)
    return lambda: run_policy(scenario, "balb", config, trained)


#: Fleet size and frames each ``fleet_health_overhead`` iteration drives
#: through the watchdog (the per-frame cost the scheduler pays under a
#: sensor-fault preset, amortized over a representative episode).
HEALTH_CAMERAS = 16
HEALTH_FRAMES = 60


def _setup_fleet_health() -> Callable[[], object]:
    from repro.runtime.health import FleetHealthWatchdog, HealthSignals

    cams = list(range(HEALTH_CAMERAS))

    def body() -> object:
        watchdog = FleetHealthWatchdog(cams)
        transitions = 0
        for frame in range(HEALTH_FRAMES):
            signals = {}
            for cam in cams:
                # Camera 0 freezes mid-episode (its token repeats),
                # camera 1 drifts off the fleet clock, camera 2 flaps;
                # the rest stay healthy behind a scene-varying token —
                # a full quarantine/readmission lifecycle per iteration.
                token = frame * 31 + cam
                alive = True
                skew = 0
                if cam == 0 and 20 <= frame < 40:
                    token = 20 * 31
                elif cam == 1:
                    skew = frame // 12
                elif cam == 2:
                    alive = frame % 2 == 0
                signals[cam] = HealthSignals(
                    alive=alive,
                    content_token=token,
                    skew_frames=skew,
                    quality=1.0 if frame % 5 == 0 else None,
                )
            transitions += len(watchdog.observe(frame, signals))
        return transitions

    return body


def _setup_mask_build() -> Callable[[], object]:
    # Times the classifier sweep itself, bypassing the per-associator
    # memo build_camera_masks consults on the runtime path.
    from repro.core.masks import _build_camera_masks_uncached

    assoc = _trained_associator()
    frame_sizes = {0: (1280, 704), 1: (1280, 704)}
    sizes = {0: 55.0, 1: 55.0}
    return lambda: _build_camera_masks_uncached(
        frame_sizes, assoc, sizes, grid=(8, 6)
    )


BENCHMARKS: Dict[str, Tuple[Callable[[], Callable[[], object]], int]] = {
    # name -> (setup factory, inner iterations per round)
    "balb_central_40obj": (lambda: _setup_balb_central(40), 20),
    "balb_priority_of": (_setup_priority_of, 2000),
    "fleet_health_overhead": (_setup_fleet_health, 20),
    "hungarian_20x20": (lambda: _setup_hungarian(20), 20),
    "knn_pair_query": (_setup_knn_query, 50),
    "knn_pair_query_batch64": (lambda: _setup_knn_query_batch(64), 50),
    "mask_build_2cam": (_setup_mask_build, 5),
    "serving_fanout": (lambda: _setup_serving_fanout(1_000_000), 200),
    "event_pipeline_burst": (_setup_event_pipeline_burst, 1),
    "e2e_frames_per_sec_s1": (lambda: _setup_e2e_frames("S1"), 1),
    "e2e_frames_per_sec_s2": (lambda: _setup_e2e_frames("S2"), 1),
    "e2e_frames_per_sec_s3": (lambda: _setup_e2e_frames("S3"), 1),
}


def run_benchmark(
    name: str, rounds: int, iterations: Optional[int] = None
) -> BenchResult:
    """Time one named benchmark and return its median round time."""
    setup, default_iters = BENCHMARKS[name]
    iters = default_iters if iterations is None else iterations
    body = setup()
    body()  # warm caches, JIT-free but allocator/worker state matters
    samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            body()
        elapsed = time.perf_counter() - start
        samples.append(elapsed / iters * 1e3)
    return BenchResult(
        name=name,
        median_ms=float(np.median(samples)),
        rounds=rounds,
        iterations=iters,
    )


def run_suite(quick: bool = False) -> List[BenchResult]:
    """Run every benchmark; ``quick`` trims rounds for smoke runs."""
    rounds = 3 if quick else 5
    return [run_benchmark(name, rounds) for name in sorted(BENCHMARKS)]


def results_payload(results: List[BenchResult]) -> Dict[str, object]:
    """The ``BENCH_micro.json`` document for a set of results."""
    return {
        "version": SCHEMA_VERSION,
        "benchmarks": {
            r.name: {
                "median_ms": r.median_ms,
                "rounds": r.rounds,
                "iterations": r.iterations,
            }
            for r in results
        },
    }


def check_against_baseline(
    results: List[BenchResult],
    baseline: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """Regression messages for benchmarks slower than the allowed ratio.

    Benchmarks absent from the baseline are skipped (new benchmarks must
    not fail the gate before a baseline exists for them).
    """
    known = baseline.get("benchmarks")
    if not isinstance(known, dict):
        raise ValueError("malformed baseline: missing 'benchmarks' mapping")
    failures = []
    for result in results:
        entry = known.get(result.name)
        if not entry:
            continue
        base_ms = float(entry["median_ms"])
        if base_ms <= 0:
            continue
        ratio = result.median_ms / base_ms
        if ratio > max_regression:
            failures.append(
                f"{result.name}: {result.median_ms:.3f} ms vs baseline "
                f"{base_ms:.3f} ms ({ratio:.2f}x > {max_regression:.2f}x)"
            )
    return failures


def profile_benchmark(name: str, top: int = 20) -> None:
    """Run one named benchmark under cProfile and print hot functions.

    The setup phase is excluded so the profile covers only the timed
    body, sorted by cumulative time (top ``top`` rows).
    """
    import cProfile
    import pstats

    setup, iters = BENCHMARKS[name]
    body = setup()
    body()  # warm caches outside the profile, same as run_benchmark
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(iters):
        body()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run hot-path microbenchmarks and emit BENCH_micro.json.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer rounds (CI smoke mode)"
    )
    parser.add_argument(
        "--out", default="BENCH_micro.json", help="output JSON path"
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON to gate against (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail when median exceeds baseline by this ratio (default 2.0)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="NAME", choices=sorted(BENCHMARKS),
        help="profile one benchmark under cProfile (top-20 cumulative) "
        "instead of running the suite",
    )
    args = parser.parse_args(argv)

    if args.profile:
        profile_benchmark(args.profile)
        return 0

    results = run_suite(quick=args.quick)
    for result in results:
        print(f"{result.name:28s} {result.median_ms:10.3f} ms/iter")
        if result.name == "event_pipeline_burst" and result.median_ms > 0:
            fps = EVENT_BURST_FRAMES / (result.median_ms / 1e3)
            print(f"{'  sustained under burst':28s} {fps:10.1f} frames/s")
        elif result.name.startswith("e2e_frames_per_sec") and result.median_ms > 0:
            fps = E2E_FRAMES / (result.median_ms / 1e3)
            print(f"{'  end-to-end throughput':28s} {fps:10.1f} frames/s")
    payload = results_payload(results)
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        failures = check_against_baseline(
            results, baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
