"""Crash-consistent checkpoint/resume for pipeline runs.

A checkpoint is one atomic file capturing *everything* mutable about a
run in flight — world RNG states, tracker and scheduler state, the
metrics registry, the fault-schedule position — so a run interrupted
and resumed from it is bit-identical to the same run left uninterrupted.
The only values outside the guarantee are wall-clock observations
(``frame_wall_ms``, span durations): they measure the host, not the
modeled system.

File layout: a magic header line, the hex SHA-256 of the payload, then
the pickled :class:`RunCheckpoint`. Writes go to a temp file in the same
directory followed by ``os.replace`` — a crash mid-write leaves either
the previous checkpoint or none, never a torn one. Loads verify the
digest and raise :class:`CheckpointError` on any mismatch, so a resumed
run never silently starts from corrupted state.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
import os
import pickle
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.runtime.metrics import RunResult

MAGIC = b"repro-checkpoint-v1\n"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, torn, or fails its digest check."""


@dataclass(frozen=True)
class RunCheckpoint:
    """A pipeline run frozen between two frames.

    ``state`` is the pipeline's internal run state
    (:class:`repro.runtime.pipeline._RunState`); ``scenario``, ``config``
    and ``trained`` are everything needed to rebuild the
    :class:`~repro.runtime.pipeline.Pipeline` around it without
    re-training.
    """

    scenario: Any
    config: Any
    trained: Any
    state: Any

    @property
    def next_frame(self) -> int:
        return int(self.state.next_frame)

    @property
    def total_frames(self) -> int:
        return int(self.state.total_frames)


def save_checkpoint(path: str, checkpoint: RunCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path`` (temp file + rename)."""
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(digest + b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_checkpoint(path: str) -> RunCheckpoint:
    """Read and digest-verify a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise CheckpointError(f"{path!r} is not a repro checkpoint (bad magic)")
    rest = blob[len(MAGIC):]
    sep = rest.find(b"\n")
    if sep != 64:  # hex-encoded sha256
        raise CheckpointError(f"{path!r}: malformed digest header")
    digest, payload = rest[:sep], rest[sep + 1:]
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != digest:
        raise CheckpointError(
            f"{path!r}: digest mismatch — truncated or corrupted checkpoint"
        )
    try:
        checkpoint = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise CheckpointError(
            f"{path!r}: cannot unpickle checkpoint: {exc}"
        ) from exc
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(
            f"{path!r}: unexpected payload type {type(checkpoint).__name__}"
        )
    return checkpoint


def resume_run(path: str) -> "RunResult":
    """Resume the run checkpointed at ``path`` and run it to completion.

    Returns the same :class:`~repro.runtime.metrics.RunResult` the
    uninterrupted run would have produced (bit-identical, wall-clock
    observations aside).
    """
    from repro.runtime.pipeline import Pipeline  # deferred: import cycle

    checkpoint = load_checkpoint(path)
    pipeline = Pipeline(
        checkpoint.scenario, checkpoint.config, trained=checkpoint.trained
    )
    return pipeline.resume_state(checkpoint.state)
