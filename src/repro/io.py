"""Persistence: save/load profiles, association datasets, and GT traces.

A deployed system profiles its devices and trains its association models
*once*, offline, then reuses the artifacts (Section IV-A3: profiles are
stored "as input to the BALB scheduling algorithm"). This module provides
that storage layer:

* device profiles   <-> JSON (human-inspectable),
* association datasets <-> ``.npz`` (compact arrays; models are refit on
  load — KNN "fitting" is just storing the data),
* ground-truth traces  -> CSV (for external analysis or as a synthetic
  stand-in for the AIC21 label files).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.association.training import AssociationDataset, PairDataset
from repro.cameras.rig import CameraRig
from repro.devices.profiler import DeviceProfile
from repro.world.world import World

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Device profiles <-> JSON
# ----------------------------------------------------------------------
def profile_to_dict(profile: DeviceProfile) -> dict:
    """JSON-serializable form of a device profile."""
    return {
        "device_name": profile.device_name,
        "size_set": list(profile.size_set),
        "t_full": profile.t_full,
        "batch_latency_ms": {str(k): v for k, v in profile.batch_latency_ms.items()},
        "batch_limits": {str(k): v for k, v in profile.batch_limits.items()},
    }


def profile_from_dict(data: dict) -> DeviceProfile:
    """Inverse of :func:`profile_to_dict`."""
    return DeviceProfile(
        device_name=data["device_name"],
        size_set=tuple(int(s) for s in data["size_set"]),
        t_full=float(data["t_full"]),
        batch_latency_ms={
            int(k): float(v) for k, v in data["batch_latency_ms"].items()
        },
        batch_limits={int(k): int(v) for k, v in data["batch_limits"].items()},
    )


def save_profiles(profiles: Dict[int, DeviceProfile], path: PathLike) -> None:
    """Write a fleet's profiles to a JSON file keyed by camera id."""
    payload = {str(cam): profile_to_dict(p) for cam, p in profiles.items()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_profiles(path: PathLike) -> Dict[int, DeviceProfile]:
    """Read a fleet profile file written by :func:`save_profiles`."""
    payload = json.loads(Path(path).read_text())
    return {int(cam): profile_from_dict(d) for cam, d in payload.items()}


# ----------------------------------------------------------------------
# Association datasets <-> npz
# ----------------------------------------------------------------------
def save_association_dataset(
    dataset: AssociationDataset, path: PathLike
) -> None:
    """Store every pair's arrays in one compressed ``.npz`` archive."""
    arrays: Dict[str, np.ndarray] = {}
    for (source, target), pair_ds in dataset.pairs.items():
        prefix = f"pair_{source}_{target}"
        arrays[f"{prefix}_features"] = np.asarray(pair_ds.features, dtype=float)
        arrays[f"{prefix}_labels"] = np.asarray(
            pair_ds.visible_labels, dtype=float
        )
        arrays[f"{prefix}_reg_features"] = np.asarray(
            pair_ds.target_features, dtype=float
        )
        arrays[f"{prefix}_reg_targets"] = np.asarray(pair_ds.targets, dtype=float)
    np.savez_compressed(Path(path), **arrays)


def load_association_dataset(path: PathLike) -> AssociationDataset:
    """Read an archive written by :func:`save_association_dataset`."""
    archive = np.load(Path(path))
    dataset = AssociationDataset()
    prefixes = sorted(
        {name.rsplit("_", 1)[0].replace("_features", "").replace("_labels", "")
         for name in archive.files if name.endswith("_features")
         and not name.endswith("_reg_features")}
    )
    for name in archive.files:
        if not name.endswith("_labels"):
            continue
        prefix = name[: -len("_labels")]
        _, source, target = prefix.split("_")
        pair_ds = PairDataset(pair=(int(source), int(target)))
        pair_ds.features = archive[f"{prefix}_features"].tolist()
        pair_ds.visible_labels = [
            int(v) for v in archive[f"{prefix}_labels"].tolist()
        ]
        reg_features = archive[f"{prefix}_reg_features"]
        reg_targets = archive[f"{prefix}_reg_targets"]
        pair_ds.target_features = (
            reg_features.tolist() if reg_features.size else []
        )
        pair_ds.targets = reg_targets.tolist() if reg_targets.size else []
        dataset.pairs[pair_ds.pair] = pair_ds
    return dataset


# ----------------------------------------------------------------------
# Ground-truth traces -> CSV
# ----------------------------------------------------------------------
def export_ground_truth_csv(
    world: World,
    rig: CameraRig,
    path: PathLike,
    duration_s: float,
    dt: float = 0.1,
) -> int:
    """Simulate and dump per-frame, per-camera box labels as CSV.

    Columns: ``frame, time_s, camera_id, object_id, object_class, x1, y1,
    x2, y2``. Returns the number of rows written. The format mirrors
    what multi-camera tracking datasets ship as label files.
    """
    if duration_s <= 0 or dt <= 0:
        raise ValueError("duration_s and dt must be positive")
    rows = 0
    with open(Path(path), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["frame", "time_s", "camera_id", "object_id", "object_class",
             "x1", "y1", "x2", "y2"]
        )
        n_frames = int(round(duration_s / dt))
        for frame in range(n_frames):
            world.step(dt)
            projections = rig.project_all(world.objects)
            classes = {o.object_id: o.object_class.value for o in world.objects}
            for cam_id in sorted(projections):
                for obj_id, box in sorted(projections[cam_id].items()):
                    writer.writerow(
                        [
                            frame,
                            round(world.time, 3),
                            cam_id,
                            obj_id,
                            classes[obj_id],
                            round(box.x1, 2),
                            round(box.y1, 2),
                            round(box.x2, 2),
                            round(box.y2, 2),
                        ]
                    )
                    rows += 1
    return rows
