"""Cross-camera object association (Section II-C, step 3 + the pair loop).

Given each camera's detected boxes, the matcher identifies *global
objects*: groups of per-camera detections that correspond to the same
physical target. For every ordered camera pair ``(i, i')`` with
``i' > i`` it (1) filters ``i``'s boxes through the visibility
classifier, (2) regresses their expected location on ``i'``, (3) runs the
Hungarian algorithm on IoU proximity against ``i'``'s detections, and
(4) merges accepted matches with union-find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.association.pairwise import PairwiseAssociator
from repro.geometry.box import BBox, iou_cost_rows
from repro.ml.hungarian import hungarian


@dataclass(frozen=True)
class LocalObservation:
    """One camera's view of one object at association time."""

    camera_id: int
    track_id: int
    bbox: BBox
    gt_id: int = -1  # ground truth, evaluation only


@dataclass
class GlobalObject:
    """A physical object with its per-camera observations."""

    global_id: int
    members: Dict[int, LocalObservation] = field(default_factory=dict)

    @property
    def coverage(self) -> List[int]:
        """Camera ids that observe this object (the coverage set C_j)."""
        return sorted(self.members)

    def box_on(self, camera_id: int) -> Optional[BBox]:
        """This object's box on ``camera_id``, or None if unobserved there."""
        obs = self.members.get(camera_id)
        return obs.bbox if obs else None


class _UnionFind:
    """Union-find over (camera_id, index) keys."""

    def __init__(self) -> None:
        self._parent: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def find(self, key: Tuple[int, int]) -> Tuple[int, int]:
        self._parent.setdefault(key, key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: Tuple[int, int], b: Tuple[int, int]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class CrossCameraMatcher:
    """Associates per-camera observations into global objects."""

    def __init__(
        self,
        associator: PairwiseAssociator,
        iou_threshold: float = 0.15,
    ) -> None:
        if not 0.0 < iou_threshold < 1.0:
            raise ValueError("iou_threshold must be in (0, 1)")
        self.associator = associator
        self.iou_threshold = iou_threshold

    def associate(
        self, observations: Dict[int, Sequence[LocalObservation]]
    ) -> List[GlobalObject]:
        """Group observations into global objects.

        ``observations`` maps camera id to that camera's local detections.
        Returns global objects sorted by id, one per union-find group.
        """
        camera_ids = sorted(observations)
        uf = _UnionFind()
        # Seed every observation so singletons survive.
        for cam in camera_ids:
            for idx in range(len(observations[cam])):
                uf.find((cam, idx))

        for pos, cam_a in enumerate(camera_ids):
            obs_a = observations[cam_a]
            for cam_b in camera_ids[pos + 1 :]:
                obs_b = observations[cam_b]
                if not obs_a or not obs_b:
                    continue
                self._match_pair(cam_a, obs_a, cam_b, obs_b, uf)

        groups: Dict[Tuple[int, int], GlobalObject] = {}
        next_id = 0
        for cam in camera_ids:
            for idx, obs in enumerate(observations[cam]):
                root = uf.find((cam, idx))
                if root not in groups:
                    groups[root] = GlobalObject(global_id=next_id)
                    next_id += 1
                group = groups[root]
                # One observation per camera per object; keep the first.
                group.members.setdefault(cam, obs)
        return sorted(groups.values(), key=lambda g: g.global_id)

    # ------------------------------------------------------------------
    def _match_pair(
        self,
        cam_a: int,
        obs_a: Sequence[LocalObservation],
        cam_b: int,
        obs_b: Sequence[LocalObservation],
        uf: _UnionFind,
    ) -> None:
        model = self.associator.model(cam_a, cam_b)
        if model is None:
            return
        # One classifier call and one regressor call per camera pair per
        # frame — sharing one feature build — instead of one of each per
        # observation.
        vis_idx, predicted_boxes = model.predict_visible_boxes(
            [obs.bbox for obs in obs_a]
        )
        if not vis_idx:
            return
        candidates: List[Tuple[int, BBox]] = [
            (idx, predicted)
            for idx, predicted in zip(vis_idx, predicted_boxes)
            if predicted is not None
        ]
        if not candidates:
            return
        # Cost matrix as nested lists: iou_cost_rows is bit-identical to
        # the per-pair ``1.0 - BBox.iou`` loop it replaces, and the list
        # form feeds hungarian without an ndarray round-trip.
        cost = iou_cost_rows(
            [predicted for _, predicted in candidates],
            [b.bbox for b in obs_b],
        )
        for row, col in hungarian(cost):
            if cost[row][col] <= 1.0 - self.iou_threshold:
                uf.union((cam_a, candidates[row][0]), (cam_b, col))


def association_quality(
    globals_found: Sequence[GlobalObject],
) -> Tuple[int, int, int]:
    """Evaluate association against ground truth ids.

    Returns ``(correct_links, wrong_links, missed_links)`` where a link is
    a pair of observations placed in the same global object. Requires
    observations to carry ``gt_id``; false-positive detections (gt_id=-1)
    never count as correct.
    """
    correct = wrong = 0
    gt_to_groups: Dict[int, set] = {}
    for group in globals_found:
        members = list(group.members.values())
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                if a.gt_id >= 0 and a.gt_id == b.gt_id:
                    correct += 1
                else:
                    wrong += 1
        for obs in members:
            if obs.gt_id >= 0:
                gt_to_groups.setdefault(obs.gt_id, set()).add(group.global_id)
    # A gt object split across k groups has been 'missed' k-1 times.
    missed = sum(len(groups) - 1 for groups in gt_to_groups.values())
    return correct, wrong, missed
