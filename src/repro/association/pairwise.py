"""Per-camera-pair visibility classification and location regression.

Implements the first two steps of the paper's association procedure
(Section II-C): a classifier decides whether a box seen on camera ``i``
also appears on camera ``i'``; when positive, a regressor predicts its
box on ``i'``. Models are pluggable so the Figure 10/11 baselines reuse
the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.association.training import (
    AssociationDataset,
    PairDataset,
    PairKey,
    box_features,
    target_to_box,
)
from repro.geometry.box import BBox
from repro.ml.base import Classifier, Regressor
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.scaling import StandardScaler

ClassifierFactory = Callable[[], Classifier]
RegressorFactory = Callable[[], Regressor]


def default_classifier_factory() -> Classifier:
    """The paper's choice: KNN classification."""
    return KNNClassifier(k=7)


def default_regressor_factory() -> Regressor:
    """The paper's choice: KNN regression (distance weighted)."""
    return KNNRegressor(k=5, weighted=True)


@dataclass
class PairModel:
    """Fitted classifier + regressor for one ordered camera pair."""

    pair: PairKey
    classifier: Optional[Classifier]
    regressor: Optional[Regressor]
    feature_scaler: Optional[StandardScaler]
    constant_label: Optional[int] = None  # when training labels are constant

    def predict_visible(self, box: BBox, threshold: float = 0.5) -> bool:
        """Is a source-camera ``box`` visible on the target camera?"""
        if self.constant_label is not None:
            return bool(self.constant_label)
        if self.classifier is None or self.feature_scaler is None:
            return False
        feats = self._scaled_features(box)
        return bool(self.classifier.predict_proba(feats)[0] >= threshold)

    def predict_box(self, box: BBox) -> Optional[BBox]:
        """Predicted target-camera box for a source ``box`` (None if no regressor)."""
        if self.regressor is None or self.feature_scaler is None:
            return None
        feats = self._scaled_features(box)
        return target_to_box(self.regressor.predict(feats)[0])

    def predict_visible_batch(
        self, boxes: Sequence[BBox], threshold: float = 0.5
    ) -> np.ndarray:
        """Vectorized :meth:`predict_visible`: one classifier call for all boxes.

        Returns a boolean array aligned with ``boxes``. Agrees elementwise
        with the scalar path: the KNN distance computation is row-wise
        independent, so batching changes only the BLAS call shape.
        """
        n = len(boxes)
        if self.constant_label is not None:
            return np.full(n, bool(self.constant_label))
        if self.classifier is None or self.feature_scaler is None or n == 0:
            return np.zeros(n, dtype=bool)
        feats = self._scaled_features_batch(boxes)
        return np.asarray(self.classifier.predict_proba(feats) >= threshold)

    def predict_boxes(self, boxes: Sequence[BBox]) -> List[Optional[BBox]]:
        """Vectorized :meth:`predict_box`: one regressor call for all boxes."""
        if self.regressor is None or self.feature_scaler is None or not boxes:
            return [None] * len(boxes)
        feats = self._scaled_features_batch(boxes)
        return self._regress_boxes(feats)

    def predict_visible_boxes(
        self, boxes: Sequence[BBox], threshold: float = 0.5
    ) -> "tuple[List[int], List[Optional[BBox]]]":
        """Fused :meth:`predict_visible_batch` + :meth:`predict_boxes`.

        Returns ``(vis_idx, predicted)`` where ``vis_idx`` indexes the
        boxes classified visible and ``predicted`` is aligned with it.
        The scaled feature matrix is built once and fed to both models;
        row slicing commutes with the elementwise scaler and the KNN
        distance rows are independent, so both outputs are bit-identical
        to the two separate calls this replaces.
        """
        n = len(boxes)
        feats: Optional[np.ndarray] = None
        if self.constant_label is not None:
            vis_idx = list(range(n)) if self.constant_label else []
        elif self.classifier is None or self.feature_scaler is None or n == 0:
            vis_idx = []
        else:
            feats = self._scaled_features_batch(boxes)
            proba = self.classifier.predict_proba(feats)
            vis_idx = [i for i in range(n) if proba[i] >= threshold]
        if not vis_idx:
            return vis_idx, []
        if self.regressor is None or self.feature_scaler is None:
            return vis_idx, [None] * len(vis_idx)
        if feats is None:
            cand_feats = self._scaled_features_batch(
                [boxes[i] for i in vis_idx]
            )
        elif len(vis_idx) == n:
            cand_feats = feats
        else:
            cand_feats = feats[vis_idx]
        return vis_idx, self._regress_boxes(cand_feats)

    def _regress_boxes(self, feats: np.ndarray) -> List[BBox]:
        """Regress scaled features to target-camera boxes."""
        assert self.regressor is not None
        targets = self.regressor.predict(feats)
        # Vectorized target_to_box/from_xywh: the size clamp and the
        # centre±half-size arithmetic mirror the scalar helpers exactly
        # (np.maximum is the same selection as max; w >= 2.0 subsumes
        # from_xywh's max(0.0, w)), so each BBox is bit-identical.
        cx, cy = targets[:, 0], targets[:, 1]
        w = np.maximum(targets[:, 2], 2.0)
        h = np.maximum(targets[:, 3], 2.0)
        x1, y1 = cx - w / 2.0, cy - h / 2.0
        x2, y2 = cx + w / 2.0, cy + h / 2.0
        return [
            BBox(float(x1[i]), float(y1[i]), float(x2[i]), float(y2[i]))
            for i in range(len(feats))
        ]

    def _scaled_features(self, box: BBox) -> np.ndarray:
        assert self.feature_scaler is not None
        raw = np.asarray([box_features(box)], dtype=float)
        return self.feature_scaler.transform(raw)

    def _scaled_features_batch(self, boxes: Sequence[BBox]) -> np.ndarray:
        assert self.feature_scaler is not None
        # Vectorized box_features: one corner gather + columnwise
        # arithmetic instead of a per-box Python feature build. Every
        # expression mirrors box_features/as_xywh exactly (np.maximum is
        # the same exact selection as max), so rows are bit-identical.
        corners = np.asarray(
            [(b.x1, b.y1, b.x2, b.y2) for b in boxes], dtype=float
        )
        raw = np.empty((len(boxes), 5), dtype=float)
        raw[:, 0] = (corners[:, 0] + corners[:, 2]) / 2.0  # cx
        raw[:, 1] = (corners[:, 1] + corners[:, 3]) / 2.0  # cy
        w = corners[:, 2] - corners[:, 0]
        h = corners[:, 3] - corners[:, 1]
        raw[:, 2] = w
        raw[:, 3] = h
        raw[:, 4] = w / np.maximum(h, 1e-6)
        return self.feature_scaler.transform(raw)


class PairwiseAssociator:
    """All pair models for a camera rig, fitted from an AssociationDataset."""

    def __init__(
        self,
        classifier_factory: ClassifierFactory = default_classifier_factory,
        regressor_factory: RegressorFactory = default_regressor_factory,
    ) -> None:
        self.classifier_factory = classifier_factory
        self.regressor_factory = regressor_factory
        self._models: Dict[PairKey, PairModel] = {}

    def fit(self, dataset: AssociationDataset) -> "PairwiseAssociator":
        """Fit one classifier/regressor pair per ordered camera pair."""
        # Invalidates downstream memos keyed on this instance's fitted
        # state (e.g. the camera-mask cache); getattr-guarded so models
        # unpickled from older artifacts start at token 0.
        self._fit_token = getattr(self, "_fit_token", 0) + 1
        for key, pair_ds in dataset.pairs.items():
            self._models[key] = self._fit_pair(pair_ds)
        return self

    def model(self, source: int, target: int) -> Optional[PairModel]:
        """The fitted model for the ordered pair, or None if untrained."""
        return self._models.get((source, target))

    def predict_visible(self, source: int, target: int, box: BBox) -> bool:
        """Visibility of a source-camera box on the target camera."""
        model = self._models.get((source, target))
        return model.predict_visible(box) if model else False

    def predict_visible_many(
        self, source: int, target: int, boxes: Sequence[BBox]
    ) -> np.ndarray:
        """Visibility of many source boxes in one classifier call."""
        model = self._models.get((source, target))
        if model is None:
            return np.zeros(len(boxes), dtype=bool)
        return model.predict_visible_batch(boxes)

    def predict_box(self, source: int, target: int, box: BBox) -> Optional[BBox]:
        """Predicted target box when classified visible, else None."""
        model = self._models.get((source, target))
        if model is None or not model.predict_visible(box):
            return None
        return model.predict_box(box)

    # ------------------------------------------------------------------
    def _fit_pair(self, pair_ds: PairDataset) -> PairModel:
        if pair_ds.n_samples == 0:
            return PairModel(
                pair=pair_ds.pair,
                classifier=None,
                regressor=None,
                feature_scaler=None,
                constant_label=0,
            )
        x_cls, y_cls = pair_ds.classification_arrays()
        scaler = StandardScaler().fit(x_cls)
        labels = set(np.unique(y_cls).tolist())
        constant = int(y_cls[0]) if len(labels) == 1 else None
        classifier = None
        if constant is None:
            classifier = self.classifier_factory().fit(
                scaler.transform(x_cls), y_cls
            )
        regressor = None
        if pair_ds.n_positive >= 3:
            x_reg, y_reg = pair_ds.regression_arrays()
            regressor = self.regressor_factory().fit(
                scaler.transform(x_reg), y_reg
            )
        return PairModel(
            pair=pair_ds.pair,
            classifier=classifier,
            regressor=regressor,
            feature_scaler=scaler,
            constant_label=constant,
        )
