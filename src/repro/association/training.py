"""Supervised dataset collection for cross-camera association.

The paper trains its KNN classification/regression models offline on
human-labelled cross-camera correspondences (Section II-C). Here the
labels come from the world simulator's ground truth: for every ordered
camera pair ``(i, i')`` and every object visible on ``i``, we record the
object's box on ``i`` as the feature, whether it is visible on ``i'`` as
the classification label, and (when visible) its box on ``i'`` as the
regression target. The paper uses the first half of each video for
training; the pipeline mirrors that by training on a separate simulation
segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.cameras.rig import CameraRig
from repro.geometry.box import BBox
from repro.world.world import World

PairKey = Tuple[int, int]
"""Ordered camera pair ``(source_camera_id, target_camera_id)``."""


def box_features(box: BBox) -> List[float]:
    """Feature vector of a source box: centre, size and aspect."""
    cx, cy, w, h = box.as_xywh()
    return [cx, cy, w, h, w / max(h, 1e-6)]


def box_target(box: BBox) -> List[float]:
    """Regression target: the target-camera box as ``(cx, cy, w, h)``."""
    cx, cy, w, h = box.as_xywh()
    return [cx, cy, w, h]


def target_to_box(vec: np.ndarray) -> BBox:
    """Inverse of :func:`box_target`, with sizes clamped positive."""
    cx, cy, w, h = (float(v) for v in vec)
    return BBox.from_xywh(cx, cy, max(w, 2.0), max(h, 2.0))


@dataclass
class PairDataset:
    """Training rows for one ordered camera pair."""

    pair: PairKey
    features: List[List[float]] = field(default_factory=list)
    visible_labels: List[int] = field(default_factory=list)
    targets: List[List[float]] = field(default_factory=list)  # rows where label=1
    target_features: List[List[float]] = field(default_factory=list)

    def add(self, source_box: BBox, target_box: BBox | None) -> None:
        """Append one correspondence row (``target_box=None`` = not visible)."""
        feats = box_features(source_box)
        self.features.append(feats)
        self.visible_labels.append(1 if target_box is not None else 0)
        if target_box is not None:
            self.target_features.append(feats)
            self.targets.append(box_target(target_box))

    @property
    def n_samples(self) -> int:
        return len(self.features)

    @property
    def n_positive(self) -> int:
        return len(self.targets)

    def classification_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All rows as ``(features, visibility_labels)`` float arrays."""
        return (
            np.asarray(self.features, dtype=float),
            np.asarray(self.visible_labels, dtype=float),
        )

    def regression_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Positive rows as ``(features, target_boxes)`` float arrays."""
        return (
            np.asarray(self.target_features, dtype=float),
            np.asarray(self.targets, dtype=float),
        )


@dataclass
class AssociationDataset:
    """Datasets for all ordered camera pairs of a rig."""

    pairs: Dict[PairKey, PairDataset] = field(default_factory=dict)

    def pair(self, source: int, target: int) -> PairDataset:
        """The (lazily created) dataset for the ordered camera pair."""
        key = (source, target)
        if key not in self.pairs:
            self.pairs[key] = PairDataset(pair=key)
        return self.pairs[key]

    @property
    def total_samples(self) -> int:
        return sum(p.n_samples for p in self.pairs.values())


def collect_association_dataset(
    world: World,
    rig: CameraRig,
    duration_s: float,
    sample_interval_s: float = 0.5,
    dt: float = 0.1,
) -> AssociationDataset:
    """Simulate ``world`` and harvest cross-camera correspondences.

    Uses noise-free ground-truth projections (the analogue of the human
    bounding-box labels in AIC21). Samples every ``sample_interval_s`` to
    decorrelate consecutive rows.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if sample_interval_s < dt:
        raise ValueError("sample_interval_s must be >= dt")
    dataset = AssociationDataset()
    steps_per_sample = max(1, int(round(sample_interval_s / dt)))
    total_steps = int(round(duration_s / dt))
    for step in range(total_steps):
        world.step(dt)
        if step % steps_per_sample != 0:
            continue
        projections = rig.project_all(world.objects)
        for source_cam in rig.camera_ids:
            source_boxes = projections[source_cam]
            for target_cam in rig.camera_ids:
                if target_cam == source_cam:
                    continue
                target_boxes = projections[target_cam]
                pair_ds = dataset.pair(source_cam, target_cam)
                for obj_id, sbox in source_boxes.items():
                    pair_ds.add(sbox, target_boxes.get(obj_id))
    return dataset
