"""Cross-camera object association: training, pair models, matching."""

from repro.association.baselines import (
    CLASSIFIER_FACTORIES,
    REGRESSOR_FACTORIES,
    HomographyBoxRegressor,
)
from repro.association.matcher import (
    CrossCameraMatcher,
    GlobalObject,
    LocalObservation,
    association_quality,
)
from repro.association.pairwise import (
    PairModel,
    PairwiseAssociator,
    default_classifier_factory,
    default_regressor_factory,
)
from repro.association.training import (
    AssociationDataset,
    PairDataset,
    box_features,
    box_target,
    collect_association_dataset,
    target_to_box,
)

__all__ = [
    "AssociationDataset",
    "PairDataset",
    "collect_association_dataset",
    "box_features",
    "box_target",
    "target_to_box",
    "PairModel",
    "PairwiseAssociator",
    "default_classifier_factory",
    "default_regressor_factory",
    "CrossCameraMatcher",
    "GlobalObject",
    "LocalObservation",
    "association_quality",
    "HomographyBoxRegressor",
    "CLASSIFIER_FACTORIES",
    "REGRESSOR_FACTORIES",
]
