"""Baseline models for the association study (Figures 10 and 11).

Classification baselines: linear SVM, logistic regression, decision tree.
Regression baselines: homography, linear regression, RANSAC. All are
exposed as factories compatible with :class:`PairwiseAssociator` so the
experiment harness swaps them in without touching the association logic.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.geometry.transforms import Homography
from repro.ml.base import Classifier, Regressor, check_xy, require_fitted
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.linear import LinearRegressor, LogisticClassifier
from repro.ml.ransac import RANSACRegressor
from repro.ml.svm import LinearSVM


class HomographyBoxRegressor(Regressor):
    """The paper's *Homography* baseline for box location mapping.

    Fits a planar homography on box centre points and a linear map on box
    sizes. As the paper notes, a homography can only correctly map points
    lying in a single world plane; box centres (affected by object height
    and orientation) violate that, so this baseline underperforms the
    data-driven models — which is exactly the behaviour Figure 11 reports.
    """

    def __init__(self) -> None:
        self._h: Homography | None = None
        self._size_model: LinearRegressor | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "HomographyBoxRegressor":
        x, y = check_xy(x, y, allow_vector_target=True)
        if x.shape[1] < 4 or y.shape[1] != 4:
            raise ValueError(
                "expected features [cx, cy, w, h, ...] and targets [cx, cy, w, h]"
            )
        src_pts = [(float(r[0]), float(r[1])) for r in x]
        dst_pts = [(float(r[0]), float(r[1])) for r in y]
        self._h = Homography.fit(src_pts, dst_pts)
        self._size_model = LinearRegressor().fit(x[:, 2:4], y[:, 2:4])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "_h")
        assert self._h is not None and self._size_model is not None
        x = np.asarray(x, dtype=float)
        centers = self._h.apply_many(x[:, :2])
        sizes = self._size_model.predict(x[:, 2:4])
        return np.hstack([centers, sizes])


# ----------------------------------------------------------------------
# Factory registries used by the Figure 10 / Figure 11 harnesses
# ----------------------------------------------------------------------
CLASSIFIER_FACTORIES: Dict[str, Callable[[], Classifier]] = {
    "knn": lambda: KNNClassifier(k=7),
    "svm": lambda: LinearSVM(c=1.0, n_iter=800),
    "logistic": lambda: LogisticClassifier(l2=1e-3, lr=0.5, n_iter=500),
    "decision-tree": lambda: DecisionTreeClassifier(max_depth=8),
}

REGRESSOR_FACTORIES: Dict[str, Callable[[], Regressor]] = {
    "knn": lambda: KNNRegressor(k=5, weighted=True),
    "homography": HomographyBoxRegressor,
    "linear": LinearRegressor,
    "ransac": lambda: RANSACRegressor(n_trials=50),
}
