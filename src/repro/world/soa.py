"""Struct-of-arrays view of one frame's objects.

The simulator's entities are Python dataclasses (:class:`WorldObject`),
which is the right shape for the sequential motion model but a poor shape
for the per-frame hot path: every camera used to walk the object list and
project 8 corners per object through per-call numpy allocations.

:class:`FrameArrays` repacks one frame's object list into contiguous
numpy columns — ids, class codes, centres, extents — plus the derived
``(n, 8)`` corner arrays shared by every camera that projects the frame.
It is a read-only snapshot: build it after the world steps, use it for
the frame, throw it away.

Bitwise-identity contract: the per-object trigonometry (``cos``/``sin``
of the heading) is computed with ``math.cos``/``math.sin`` — the same
libm calls :meth:`WorldObject.footprint_corners` makes — and the corner
arithmetic mirrors the scalar expression grouping exactly, so the corner
arrays are bit-for-bit equal to the scalar path's corner tuples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.world.entities import ObjectClass, WorldObject

#: Stable small-int codes for object classes (SoA column encoding).
CLASS_CODES: Dict[ObjectClass, int] = {
    cls: code for code, cls in enumerate(ObjectClass)
}


class FrameArrays:
    """Contiguous per-frame columns for a snapshot of world objects."""

    __slots__ = (
        "objects",
        "n",
        "id_list",
        "object_ids",
        "class_codes",
        "x",
        "y",
        "heights",
        "corners_x",
        "corners_y",
        "corners_z",
    )

    def __init__(self, objects: Sequence[WorldObject]) -> None:
        objs = list(objects)
        self.objects: List[WorldObject] = objs
        n = len(objs)
        self.n = n
        # Columns are built from Python lists in one np.array call each;
        # per-element ndarray stores are an order of magnitude slower.
        self.id_list: List[int] = [o.object_id for o in objs]
        self.object_ids = np.array(self.id_list, dtype=np.int64)
        self.class_codes = np.array(
            [CLASS_CODES[o.object_class] for o in objs], dtype=np.int64
        )
        self.x = np.array([o.x for o in objs], dtype=np.float64)
        self.y = np.array([o.y for o in objs], dtype=np.float64)
        self.heights = np.array([o.height for o in objs], dtype=np.float64)
        # math.cos/math.sin, NOT np.cos/np.sin: numpy's SIMD routines
        # are allowed to differ from libm in the last ulp, which would
        # break bit-identity with the scalar path.
        cos_h = np.array([math.cos(o.heading) for o in objs], dtype=np.float64)
        sin_h = np.array([math.sin(o.heading) for o in objs], dtype=np.float64)
        half_l = np.array([o.length / 2.0 for o in objs], dtype=np.float64)
        half_w = np.array([o.width / 2.0 for o in objs], dtype=np.float64)

        # The 8 box corners per object: the 4 oriented footprint corners
        # at z=0 followed by the same 4 at z=height, in the exact order
        # (and with the exact expression grouping) of
        # WorldObject.footprint_corners / corners_3d.
        cx = np.empty((n, 8), dtype=np.float64)
        cy = np.empty((n, 8), dtype=np.float64)
        cz = np.empty((n, 8), dtype=np.float64)
        for j, (sl, sw) in enumerate(((1.0, 1.0), (1.0, -1.0),
                                      (-1.0, -1.0), (-1.0, 1.0))):
            dl = half_l if sl > 0 else -half_l
            dw = half_w if sw > 0 else -half_w
            col_x = (self.x + dl * cos_h) - dw * sin_h
            col_y = (self.y + dl * sin_h) + dw * cos_h
            cx[:, j] = col_x
            cy[:, j] = col_y
            cx[:, j + 4] = col_x
            cy[:, j + 4] = col_y
        cz[:, :4] = 0.0
        cz[:, 4:] = self.heights[:, None]
        self.corners_x = cx
        self.corners_y = cy
        self.corners_z = cz
