"""The ground-truth world: routes, lights, spawner and moving objects.

:class:`World` is the discrete-time physics substrate for the whole
reproduction. Everything downstream — camera projection, the simulated
detector, the association supervisor, the recall accounting — reads object
ground truth from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.world.entities import WorldObject
from repro.world.motion import (
    MotionParams,
    Route,
    TrafficLight,
    advance_speed,
    gap_limited_speed,
    light_limited_speed,
)
from repro.world.spawn import Spawner, SpawnSpec


@dataclass
class WorldConfig:
    """Static configuration of a world instance."""

    routes: List[Route]
    spawn_specs: List[SpawnSpec]
    traffic_light: Optional[TrafficLight] = None
    motion: MotionParams = field(default_factory=MotionParams)
    seed: int = 0


class World:
    """Discrete-time ground-plane simulation.

    Objects are spawned on routes, follow them under car-following and
    traffic-light rules, and despawn at the route end. ``step(dt)``
    advances physics; ``objects`` exposes the live set.
    """

    def __init__(self, config: WorldConfig) -> None:
        if not config.routes:
            raise ValueError("world needs at least one route")
        self.config = config
        self.time = 0.0
        self._rng = np.random.default_rng(config.seed)
        self._spawner = Spawner(config.spawn_specs, self._rng)
        self._objects: Dict[int, WorldObject] = {}
        self._routes_by_id = {r.route_id: r for r in config.routes}
        if len(self._routes_by_id) != len(config.routes):
            raise ValueError("duplicate route ids")
        # Despawn threshold per route, hoisted out of the per-step scan.
        self._route_end = {
            rid: r.length - 1e-6 for rid, r in self._routes_by_id.items()
        }
        self._departed: List[WorldObject] = []

    # ------------------------------------------------------------------
    @property
    def objects(self) -> List[WorldObject]:
        """Live objects, ordered by id for determinism."""
        return [self._objects[k] for k in sorted(self._objects)]

    @property
    def departed_objects(self) -> List[WorldObject]:
        """Objects that have completed their route (for bookkeeping)."""
        return list(self._departed)

    def object_by_id(self, object_id: int) -> Optional[WorldObject]:
        """Look up a live object by id (None if absent/departed)."""
        return self._objects.get(object_id)

    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """Advance the world by ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._move_objects(dt)
        self._despawn_finished()
        born = self._spawner.spawn_step(self.time, dt, self._entrance_blocked)
        for obj in born:
            self._objects[obj.object_id] = obj
        self.time += dt

    def run(self, duration: float, dt: float) -> None:
        """Advance repeatedly until ``duration`` seconds have elapsed."""
        steps = int(round(duration / dt))
        for _ in range(steps):
            self.step(dt)

    # ------------------------------------------------------------------
    def _move_objects(self, dt: float) -> None:
        params = self.config.motion
        light = self.config.traffic_light
        now = self.time
        by_route: Dict[int, List[WorldObject]] = {}
        for obj in self._objects.values():
            by_route.setdefault(obj.route_id, []).append(obj)

        for route_id, members in by_route.items():
            route = self._routes_by_id.get(route_id)
            if route is None:
                continue
            # Process front-to-back so each follower sees its leader's
            # *previous* position — a stable explicit update.
            members.sort(key=lambda o: -o.route_progress)
            # Both limit rules return ``cruise`` when inactive (no leader
            # / green light), and min(target, cruise) with target already
            # at cruise is the identity — so the calls are skipped
            # outright in those cases. The light phase depends only on
            # (route, time), so it is decided once per route per step.
            red = light is not None and not light.is_green(route_id, now)
            leader: Optional[WorldObject] = None
            for obj in members:
                cruise = float(obj.attributes.get("cruise_speed", obj.speed))
                target = cruise
                if leader is not None:
                    target = min(
                        target,
                        gap_limited_speed(
                            obj.route_progress,
                            obj.length / 2.0,
                            leader.route_progress,
                            leader.length / 2.0,
                            cruise,
                            dt,
                            params,
                        ),
                    )
                if red:
                    target = min(
                        target,
                        light_limited_speed(
                            obj.route_progress,
                            cruise,
                            light,
                            route_id,
                            now,
                            dt,
                            params,
                        ),
                    )
                obj.speed = advance_speed(obj.speed, target, dt, params)
                obj.route_progress += obj.speed * dt
                x, y, heading = route.pose_at(obj.route_progress)
                obj.x, obj.y, obj.heading = x, y, heading
                leader = obj

    def _despawn_finished(self) -> None:
        route_end = self._route_end
        finished = [
            oid
            for oid, obj in self._objects.items()
            if obj.route_progress >= route_end[obj.route_id]
        ]
        for oid in finished:
            obj = self._objects.pop(oid)
            obj.alive = False
            self._departed.append(obj)

    def _entrance_blocked(self, route: Route, clearance: float) -> bool:
        for obj in self._objects.values():
            if obj.route_id == route.route_id and obj.route_progress < clearance:
                return True
        return False
