"""Object arrival processes.

Each route carries a Poisson spawn process with a per-route rate and a
class mix. Rates can be modulated over time to create rush/lull periods,
which — combined with traffic-light platooning — reproduces the temporal
workload variability of the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.world.entities import (
    CLASS_SPEED_RANGES,
    ObjectClass,
    WorldObject,
)
from repro.world.motion import Route

RateModulator = Callable[[float], float]
"""Maps simulation time (s) to a multiplicative rate factor."""


@dataclass
class SpawnSpec:
    """Arrival configuration for one route."""

    route: Route
    rate_per_s: float
    class_mix: Dict[ObjectClass, float] = field(
        default_factory=lambda: {ObjectClass.CAR: 1.0}
    )
    rate_modulator: Optional[RateModulator] = None
    size_jitter_std: float = 0.08

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("rate_per_s must be non-negative")
        total = sum(self.class_mix.values())
        if total <= 0:
            raise ValueError("class_mix must have positive total weight")
        self.class_mix = {k: v / total for k, v in self.class_mix.items()}

    def rate_at(self, t: float) -> float:
        """Effective arrival rate at time ``t`` (modulated, clamped >= 0)."""
        factor = self.rate_modulator(t) if self.rate_modulator else 1.0
        return max(0.0, self.rate_per_s * factor)


class Spawner:
    """Samples new objects for a set of routes using thinned Poisson arrivals.

    Arrivals are generated per simulation step: in a step of length ``dt``
    the number of arrivals on a route is Poisson(rate * dt). A new object is
    suppressed when the route entrance is blocked by a recently spawned
    vehicle, which keeps spacing physical during bursts.
    """

    def __init__(self, specs: list[SpawnSpec], rng: np.random.Generator) -> None:
        self.specs = list(specs)
        self._rng = rng
        self._next_id = 0

    def spawn_step(
        self,
        t: float,
        dt: float,
        entrance_blocked: Callable[[Route, float], bool],
    ) -> list[WorldObject]:
        """Generate arrivals for the step ``[t, t + dt)``.

        ``entrance_blocked(route, needed_clearance)`` tells whether another
        object currently occupies the first metres of the route.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        born: list[WorldObject] = []
        routes_born_this_step: set = set()
        for spec in self.specs:
            n = int(self._rng.poisson(spec.rate_at(t) * dt))
            for _ in range(n):
                if spec.route.route_id in routes_born_this_step:
                    continue  # entrance occupied by this step's earlier arrival
                obj_class = self._sample_class(spec)
                jitter = float(
                    np.clip(self._rng.normal(1.0, spec.size_jitter_std), 0.7, 1.4)
                )
                lo, hi = CLASS_SPEED_RANGES[obj_class]
                speed = float(self._rng.uniform(lo, hi))
                x, y, heading = spec.route.pose_at(0.0)
                candidate = WorldObject.of_class(
                    object_id=self._next_id,
                    object_class=obj_class,
                    x=x,
                    y=y,
                    heading=heading,
                    speed=speed,
                    size_jitter=jitter,
                    spawn_time=t,
                    route_id=spec.route.route_id,
                )
                # Require enough clearance to brake from the spawn speed
                # (conservative decel 4.0 m/s^2) plus a body-length buffer.
                clearance = candidate.length + 3.0 + speed**2 / (2.0 * 4.0)
                if entrance_blocked(spec.route, clearance):
                    continue  # entrance occupied; drop this arrival
                candidate.attributes["cruise_speed"] = speed
                self._next_id += 1
                born.append(candidate)
                routes_born_this_step.add(spec.route.route_id)
        return born

    def _sample_class(self, spec: SpawnSpec) -> ObjectClass:
        classes = list(spec.class_mix.keys())
        weights = np.array([spec.class_mix[c] for c in classes])
        idx = int(self._rng.choice(len(classes), p=weights))
        return classes[idx]


@dataclass(frozen=True)
class SinusoidalModulator:
    """Sinusoidal rate modulation alternating between lulls and rushes.

    A plain callable class (not a closure) so worlds that use it stay
    picklable for run checkpoints.
    """

    period_s: float = 120.0
    low: float = 0.3
    high: float = 1.7

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")

    def __call__(self, t: float) -> float:
        phase = (1.0 + np.sin(2.0 * np.pi * t / self.period_s)) / 2.0
        return self.low + (self.high - self.low) * phase


def rush_hour_modulator(
    period_s: float = 120.0, low: float = 0.3, high: float = 1.7
) -> RateModulator:
    """Sinusoidal rate modulation alternating between lulls and rushes."""
    return SinusoidalModulator(period_s=period_s, low=low, high=high)
