"""Motion substrate: routes, traffic lights and car-following.

Objects follow polyline *routes* through the scene. Their speed along the
route is governed by a simple car-following rule (do not run into the
leader) and by traffic lights (stop at the stop line while the light is
red). Together these produce the bursty, platoon-like workload patterns of
the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Optional, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class Route:
    """A polyline path through the world, parameterized by arc length."""

    route_id: int
    waypoints: Tuple[Point, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a route needs at least 2 waypoints")
        lengths = []
        total = 0.0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            seg = math.hypot(b[0] - a[0], b[1] - a[1])
            if seg <= 1e-9:
                raise ValueError("route contains a zero-length segment")
            lengths.append(seg)
            total += seg
        object.__setattr__(self, "_segment_lengths", tuple(lengths))
        object.__setattr__(self, "_total_length", total)
        # pose_at runs per object per simulation step; precompute each
        # segment's origin, delta, length and heading once so the hot
        # path is a plain tuple walk with no per-call trig or zips.
        # ``terminal`` preserves the original loop's by-value comparison
        # against the last segment (not just its index).
        last = (self.waypoints[-2], self.waypoints[-1])
        segments = []
        for (a, b), seg_len in zip(
            zip(self.waypoints, self.waypoints[1:]), lengths
        ):
            segments.append(
                (
                    a[0],
                    a[1],
                    b[0] - a[0],
                    b[1] - a[1],
                    seg_len,
                    math.atan2(b[1] - a[1], b[0] - a[0]),
                    (a, b) == last,
                )
            )
        object.__setattr__(self, "_segments", tuple(segments))

    @property
    def length(self) -> float:
        return self._total_length  # type: ignore[attr-defined]

    def point_at(self, s: float) -> Point:
        """World position at arc length ``s`` (clamped to the route)."""
        x, y, _ = self.pose_at(s)
        return (x, y)

    def pose_at(self, s: float) -> Tuple[float, float, float]:
        """Position and heading (radians) at arc length ``s``.

        Walks the precomputed segment table; the sequential ``remaining``
        subtraction is kept (a prefix-sum lookup would round differently)
        so coordinates match the original waypoint walk bit for bit.
        """
        remaining = min(max(s, 0.0), self._total_length)  # type: ignore[attr-defined]
        for ax, ay, dx, dy, seg_len, heading, terminal in self._segments:  # type: ignore[attr-defined]
            if remaining <= seg_len or terminal:
                frac = min(remaining / seg_len, 1.0)
                return (ax + frac * dx, ay + frac * dy, heading)
            remaining -= seg_len
        # Unreachable: the last segment always returns above.
        bx, by = self.waypoints[-1]
        return (bx, by, 0.0)


@dataclass
class TrafficLight:
    """A fixed-cycle signal gating a set of routes at given stop distances.

    ``green_routes`` maps phase index -> set of route ids allowed to move.
    The cycle steps through phases of ``phase_duration`` seconds each.
    """

    stop_positions: dict  # route_id -> arc length of the stop line
    green_routes: List[frozenset]
    phase_duration: float = 20.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.green_routes:
            raise ValueError("traffic light needs at least one phase")
        if self.phase_duration <= 0:
            raise ValueError("phase_duration must be positive")

    def phase_at(self, t: float) -> int:
        """Index of the active phase at simulation time ``t``."""
        cycle = self.phase_duration * len(self.green_routes)
        return int(((t + self.offset) % cycle) // self.phase_duration)

    def is_green(self, route_id: int, t: float) -> bool:
        """May traffic on ``route_id`` proceed at time ``t``?"""
        if route_id not in self.stop_positions:
            return True  # light does not govern this route
        return route_id in self.green_routes[self.phase_at(t)]

    def stop_line(self, route_id: int) -> Optional[float]:
        """Arc length of the route's stop line (None if ungoverned)."""
        return self.stop_positions.get(route_id)


@dataclass
class MotionParams:
    """Tunables for the longitudinal motion rule."""

    max_accel: float = 2.5  # m/s^2
    max_decel: float = 4.5  # m/s^2
    min_gap: float = 2.0  # m bumper-to-bumper gap to the leader
    stop_line_tolerance: float = 1.0  # m before the stop line to halt


def advance_speed(
    current_speed: float,
    target_speed: float,
    dt: float,
    params: MotionParams,
) -> float:
    """Move ``current_speed`` toward ``target_speed`` under accel limits."""
    if target_speed > current_speed:
        return min(target_speed, current_speed + params.max_accel * dt)
    return max(target_speed, current_speed - params.max_decel * dt)


def _braking_limited(distance: float, cruise: float, dt: float,
                     params: MotionParams) -> float:
    """Max speed from which ``distance`` suffices to brake to a stop.

    Kinematic rule ``v = sqrt(2 a d)`` (so approach speed tapers to zero at
    the obstacle), additionally capped at ``d / dt`` so a single discrete
    step can never overshoot.
    """
    if distance <= 0:
        return 0.0
    v_brake = math.sqrt(2.0 * params.max_decel * distance)
    return min(cruise, v_brake, distance / max(dt, 1e-6))


def gap_limited_speed(
    my_progress: float,
    my_half_length: float,
    leader_progress: Optional[float],
    leader_half_length: float,
    cruise_speed: float,
    dt: float,
    params: MotionParams,
) -> float:
    """Target speed respecting the gap to a leader on the same route."""
    if leader_progress is None:
        return cruise_speed
    gap = (leader_progress - leader_half_length) - (
        my_progress + my_half_length
    ) - params.min_gap
    return _braking_limited(gap, cruise_speed, dt, params)


def light_limited_speed(
    my_progress: float,
    cruise_speed: float,
    light: Optional[TrafficLight],
    route_id: int,
    t: float,
    dt: float,
    params: MotionParams,
) -> float:
    """Target speed respecting a red light's stop line, if approaching one."""
    if light is None or light.is_green(route_id, t):
        return cruise_speed
    stop = light.stop_line(route_id)
    if stop is None or my_progress >= stop:
        return cruise_speed  # already past the line; clear the junction
    dist = stop - params.stop_line_tolerance - my_progress
    return _braking_limited(dist, cruise_speed, dt, params)
