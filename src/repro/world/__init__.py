"""Ground-plane world simulator: entities, motion, arrivals, stepping."""

from repro.world.entities import (
    CLASS_DIMENSIONS,
    CLASS_SPEED_RANGES,
    ObjectClass,
    WorldObject,
)
from repro.world.motion import MotionParams, Route, TrafficLight
from repro.world.spawn import SpawnSpec, Spawner, rush_hour_modulator
from repro.world.world import World, WorldConfig

__all__ = [
    "ObjectClass",
    "WorldObject",
    "CLASS_DIMENSIONS",
    "CLASS_SPEED_RANGES",
    "Route",
    "TrafficLight",
    "MotionParams",
    "SpawnSpec",
    "Spawner",
    "rush_hour_modulator",
    "World",
    "WorldConfig",
]
