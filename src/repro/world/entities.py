"""World entities: the physical objects the cameras observe.

Objects live on a 2-D ground plane (metres) but carry 3-D extent
(length/width/height) so that camera projection produces realistic,
view-dependent bounding boxes — the effect that makes plain homography a
poor cross-camera mapping in the paper (Section II-C, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
import math
from typing import List, Tuple


class ObjectClass(enum.Enum):
    """Object categories in the simulated traffic scenes."""

    CAR = "car"
    TRUCK = "truck"
    BUS = "bus"
    PEDESTRIAN = "pedestrian"


#: Nominal (length, width, height) in metres per class.
CLASS_DIMENSIONS = {
    ObjectClass.CAR: (4.5, 1.8, 1.5),
    ObjectClass.TRUCK: (8.0, 2.4, 3.2),
    ObjectClass.BUS: (11.0, 2.5, 3.0),
    ObjectClass.PEDESTRIAN: (0.5, 0.5, 1.7),
}

#: Nominal cruise speed ranges in metres/second per class.
CLASS_SPEED_RANGES = {
    ObjectClass.CAR: (6.0, 14.0),
    ObjectClass.TRUCK: (5.0, 10.0),
    ObjectClass.BUS: (5.0, 9.0),
    ObjectClass.PEDESTRIAN: (0.8, 1.8),
}


@dataclass
class WorldObject:
    """A single moving target: position, heading, speed and 3-D extent.

    ``object_id`` is globally unique within a :class:`~repro.world.world.World`
    run and is the ground-truth identity used for recall accounting and for
    supervising the association models.
    """

    object_id: int
    object_class: ObjectClass
    x: float
    y: float
    heading: float  # radians, direction of travel
    speed: float  # m/s along heading
    length: float
    width: float
    height: float
    spawn_time: float = 0.0
    route_id: int = -1
    route_progress: float = 0.0  # metres travelled along the route
    alive: bool = True
    attributes: dict = field(default_factory=dict)

    @classmethod
    def of_class(
        cls,
        object_id: int,
        object_class: ObjectClass,
        x: float,
        y: float,
        heading: float,
        speed: float,
        size_jitter: float = 1.0,
        spawn_time: float = 0.0,
        route_id: int = -1,
    ) -> "WorldObject":
        """Create an object with class-typical dimensions scaled by jitter."""
        if size_jitter <= 0:
            raise ValueError("size_jitter must be positive")
        length, width, height = CLASS_DIMENSIONS[object_class]
        return cls(
            object_id=object_id,
            object_class=object_class,
            x=x,
            y=y,
            heading=heading,
            speed=speed,
            length=length * size_jitter,
            width=width * size_jitter,
            height=height * size_jitter,
            spawn_time=spawn_time,
            route_id=route_id,
        )

    # ------------------------------------------------------------------
    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    @property
    def velocity(self) -> Tuple[float, float]:
        return (
            self.speed * math.cos(self.heading),
            self.speed * math.sin(self.heading),
        )

    def footprint_corners(self) -> List[Tuple[float, float]]:
        """The 4 ground-plane corners of the object's oriented footprint."""
        cos_h = math.cos(self.heading)
        sin_h = math.sin(self.heading)
        hl, hw = self.length / 2.0, self.width / 2.0
        corners = []
        for dl, dw in ((hl, hw), (hl, -hw), (-hl, -hw), (-hl, hw)):
            corners.append(
                (
                    self.x + dl * cos_h - dw * sin_h,
                    self.y + dl * sin_h + dw * cos_h,
                )
            )
        return corners

    def corners_3d(self) -> List[Tuple[float, float, float]]:
        """The 8 corners of the object's 3-D box (footprint at z=0 and z=h)."""
        base = self.footprint_corners()
        return [(cx, cy, 0.0) for cx, cy in base] + [
            (cx, cy, self.height) for cx, cy in base
        ]

    def distance_to(self, x: float, y: float) -> float:
        """Ground-plane distance from this object to ``(x, y)``."""
        return math.hypot(self.x - x, self.y - y)
