"""Read-side serving edge: cached live-state snapshots for subscribers."""

from repro.serving.edge import ServingEdge, ServingStats, SnapshotCache

__all__ = [
    "ServingEdge",
    "ServingStats",
    "SnapshotCache",
]
