"""Read-side serving edge: versioned live-state snapshots with caching.

The pipeline is write-heavy — every frame mutates tracker and scheduler
state — but consumers of its *live state* (dashboards, downstream
analytics, fleet monitors) are read-only and vastly more numerous. The
:class:`ServingEdge` decouples the two sides: the frame loop publishes a
compact :class:`~repro.net.messages.SnapshotMessage` on a configurable
cadence, and subscribers are served the cached canonical encoding of the
latest version. Serving N subscribers therefore costs one encode per
*publication* (the cache miss) plus O(1) bookkeeping per fan-out, not
O(N) encodes — which is what makes a simulated million-subscriber
fan-out cheap enough to regression-test.

Staleness is bounded by construction: a subscriber served at frame ``f``
sees a snapshot no older than ``publish_every - 1`` frames (and exactly
0 frames with the default per-frame cadence). Delivery cost is modeled
through a :class:`~repro.net.link.LinkSpec`, deterministically — the
edge never draws randomness and never reads the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.link import TESTBED_DOWNLINK, LinkSpec
from repro.net.messages import SnapshotMessage
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # circular at runtime: runtime.pipeline imports us
    from repro.runtime.metrics import FrameRecord

__all__ = [
    "ServingEdge",
    "ServingStats",
    "SnapshotCache",
]


class SnapshotCache:
    """Single-entry versioned cache of the encoded latest snapshot.

    ``put`` installs a new version and invalidates the cached encoding;
    the first ``serve`` after that pays the encode (a miss), every
    further serve of the same version is a hit returning the same bytes.
    """

    def __init__(self) -> None:
        self._message: Optional[SnapshotMessage] = None
        self._encoded: Optional[bytes] = None
        self.hits = 0
        self.misses = 0

    @property
    def version(self) -> int:
        """Installed snapshot version (-1 before the first ``put``)."""
        return -1 if self._message is None else self._message.version

    @property
    def message(self) -> Optional[SnapshotMessage]:
        return self._message

    def put(self, message: SnapshotMessage) -> None:
        """Install ``message`` as the latest version."""
        if self._message is not None and message.version <= self._message.version:
            raise ValueError(
                f"snapshot versions must increase: got {message.version} "
                f"after {self._message.version}"
            )
        self._message = message
        self._encoded = None

    def serve(self) -> bytes:
        """Serve one subscriber the latest snapshot's encoding."""
        if self._message is None:
            raise LookupError("no snapshot published yet")
        if self._encoded is None:
            self._encoded = self._message.encode()
            self.misses += 1
        else:
            self.hits += 1
        return self._encoded

    def serve_many(self, n: int) -> bytes:
        """Serve ``n`` subscribers; hit/miss accounting is O(1) in ``n``.

        Identical to ``n`` successive :meth:`serve` calls: at most one
        miss (if the installed version was never encoded), all remaining
        requests hit the cached bytes.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        payload = self.serve()
        self.hits += n - 1
        return payload


@dataclass(frozen=True)
class ServingStats:
    """End-of-run summary of one serving edge."""

    subscribers: int
    snapshots: int
    requests: int
    hits: int
    misses: int
    max_staleness_frames: int
    mean_staleness_frames: float
    modeled_fanout_ms: float
    payload_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cached encoding."""
        return self.hits / self.requests if self.requests else 0.0


class ServingEdge:
    """Publishes live-state snapshots and fans them out to subscribers."""

    def __init__(
        self,
        subscribers: int,
        publish_every: int = 1,
        link: LinkSpec = TESTBED_DOWNLINK,
    ) -> None:
        if subscribers < 1:
            raise ValueError("subscribers must be >= 1")
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.subscribers = subscribers
        self.publish_every = publish_every
        self.link = link
        self.cache = SnapshotCache()
        self.snapshots_published = 0
        self.requests = 0
        self.max_staleness_frames = 0
        self.modeled_fanout_ms = 0.0
        self._staleness_sum = 0
        self._frames_served = 0
        self._last_published_frame: Optional[int] = None
        self._last_payload_bytes = 0

    @property
    def staleness_bound_frames(self) -> int:
        """Largest staleness any subscriber can ever observe."""
        return self.publish_every - 1

    # ------------------------------------------------------------------
    def on_frame(self, record: FrameRecord) -> None:
        """Frame-loop hook: publish on cadence, then serve the fleet."""
        if record.frame_index % self.publish_every == 0:
            self.publish(record)
        self.serve_fleet(record.frame_index)

    def publish(self, record: FrameRecord) -> None:
        """Install a fresh snapshot of ``record`` into the cache."""
        self.cache.put(
            SnapshotMessage(
                version=self.snapshots_published,
                frame_index=record.frame_index,
                is_key_frame=record.is_key_frame,
                n_visible=len(record.visible_gt),
                n_detected=len(record.detected_gt),
            )
        )
        self.snapshots_published += 1
        self._last_published_frame = record.frame_index

    def serve_fleet(self, now_frame: int) -> None:
        """Serve every subscriber the latest snapshot at ``now_frame``."""
        if self._last_published_frame is None:
            raise LookupError("no snapshot published yet")
        payload = self.cache.serve_many(self.subscribers)
        self._last_payload_bytes = len(payload)
        self.requests += self.subscribers
        staleness = now_frame - self._last_published_frame
        if staleness > self.staleness_bound_frames:
            raise AssertionError(
                f"staleness bound violated: snapshot is {staleness} frames "
                f"old, bound is {self.staleness_bound_frames}"
            )
        self.max_staleness_frames = max(self.max_staleness_frames, staleness)
        self._staleness_sum += staleness
        self._frames_served += 1
        # Modeled delivery cost, deterministic: propagation + serialization
        # across the downlink for every subscriber (no jitter draws).
        per_message_ms = (
            self.link.propagation_ms
            + len(payload) * 8.0 / (self.link.bandwidth_mbps * 1e6) * 1e3
        )
        self.modeled_fanout_ms += per_message_ms * self.subscribers

    # ------------------------------------------------------------------
    def stats(self) -> ServingStats:
        """Summarize the edge's activity so far."""
        return ServingStats(
            subscribers=self.subscribers,
            snapshots=self.snapshots_published,
            requests=self.requests,
            hits=self.cache.hits,
            misses=self.cache.misses,
            max_staleness_frames=self.max_staleness_frames,
            mean_staleness_frames=(
                self._staleness_sum / self._frames_served
                if self._frames_served
                else 0.0
            ),
            modeled_fanout_ms=self.modeled_fanout_ms,
            payload_bytes=self._last_payload_bytes,
        )

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Publish the edge's counters into a run's metrics registry."""
        registry.counter("serving_snapshots_total").inc(
            self.snapshots_published
        )
        registry.counter("serving_requests_total").inc(self.requests)
        registry.counter("serving_cache_hits_total").inc(self.cache.hits)
        registry.counter("serving_cache_misses_total").inc(self.cache.misses)
        registry.gauge("serving_staleness_frames").set(
            self.max_staleness_frames
        )
