"""Shared data preparation for the association studies (Figures 10/11).

Collects a cross-camera correspondence dataset from a scenario and splits
it chronologically — the paper trains on the first half of each video and
tests on the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.association.training import (
    AssociationDataset,
    PairKey,
    collect_association_dataset,
)
from repro.ml.metrics import train_test_split_indices
from repro.scenarios.builder import Scenario


@dataclass
class PairSplit:
    """Chronological train/test split of one camera pair's rows."""

    x_train: np.ndarray
    y_train: np.ndarray  # visibility labels
    x_test: np.ndarray
    y_test: np.ndarray
    # Regression rows (positives only), split the same way.
    xr_train: np.ndarray
    yr_train: np.ndarray
    xr_test: np.ndarray
    yr_test: np.ndarray


def collect_and_split(
    scenario: Scenario,
    duration_s: float = 150.0,
    warmup_s: float = 30.0,
    seed: int = 0,
    train_fraction: float = 0.5,
) -> Dict[PairKey, PairSplit]:
    """Build per-pair chronological splits for a scenario."""
    world, rig = scenario.build(seed=seed)
    dt = scenario.frame_interval
    world.run(warmup_s, dt)
    dataset = collect_association_dataset(world, rig, duration_s, dt=dt)
    return split_dataset(dataset, train_fraction)


def split_dataset(
    dataset: AssociationDataset, train_fraction: float = 0.5
) -> Dict[PairKey, PairSplit]:
    """Split every pair's rows chronologically into train/test."""
    splits: Dict[PairKey, PairSplit] = {}
    for key, pair_ds in dataset.pairs.items():
        n = pair_ds.n_samples
        if n < 10 or pair_ds.n_positive < 6:
            continue  # too little signal for a meaningful evaluation
        x, y = pair_ds.classification_arrays()
        tr, te = train_test_split_indices(n, train_fraction)
        xr, yr = pair_ds.regression_arrays()
        m = len(xr)
        tr_r, te_r = train_test_split_indices(m, train_fraction)
        if len(np.unique(y[tr])) < 2 or len(np.unique(y[te])) < 2:
            continue  # degenerate labels on one side of the split
        splits[key] = PairSplit(
            x_train=x[tr],
            y_train=y[tr],
            x_test=x[te],
            y_test=y[te],
            xr_train=xr[tr_r],
            yr_train=yr[tr_r],
            xr_test=xr[te_r],
            yr_test=yr[te_r],
        )
    return splits
