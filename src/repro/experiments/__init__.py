"""Experiment harnesses: one module per paper figure/table, plus ablations."""

from repro.experiments.ablations import (
    AblationResult,
    OptimalityResult,
    ablate_batch_awareness,
    ablate_coverage_ordering,
    jetson_fleet_profiles,
    measure_optimality_gap,
    random_instance,
    run_ablations,
)
from repro.experiments.assoc_data import PairSplit, collect_and_split, split_dataset
from repro.experiments.extensions import (
    BandwidthStudy,
    EnergyStudy,
    OcclusionStudy,
    SynchronizationStudy,
    bandwidth_study,
    energy_study,
    occlusion_redundancy_study,
    run_extensions,
    synchronization_study,
)
from repro.experiments.fault_tolerance import (
    DegradationPoint,
    FailoverPoint,
    FaultToleranceStudy,
    fault_tolerance_study,
    run_fault_tolerance,
)
from repro.experiments.fig10_classification import (
    ClassificationRow,
    evaluate_classifiers,
    run_figure10,
)
from repro.experiments.fig11_regression import (
    RegressionRow,
    evaluate_regressors,
    run_figure11,
)
from repro.experiments.fig12_recall import (
    DEFAULT_POLICIES,
    RecallRow,
    recall_rows,
    run_figure12,
    run_policies,
)
from repro.experiments.fig13_latency import (
    LATENCY_POLICIES,
    LatencyRow,
    SpeedupSummary,
    latency_rows,
    run_figure13,
    speedup_summary,
)
from repro.experiments.fig14_horizon import (
    DEFAULT_HORIZONS,
    HorizonRow,
    run_figure14,
    sweep_horizons,
)
from repro.experiments.fig2_workload import WorkloadTrace, workload_trace
from repro.experiments.ingest import (
    IngestPoint,
    IngestStudy,
    ingest_study,
    run_ingest,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_all
from repro.experiments.table2_overhead import (
    OverheadRow,
    measure_overheads,
    run_table2,
)

__all__ = [
    "WorkloadTrace",
    "workload_trace",
    "ClassificationRow",
    "evaluate_classifiers",
    "run_figure10",
    "RegressionRow",
    "evaluate_regressors",
    "run_figure11",
    "RecallRow",
    "recall_rows",
    "run_policies",
    "run_figure12",
    "DEFAULT_POLICIES",
    "LatencyRow",
    "SpeedupSummary",
    "latency_rows",
    "speedup_summary",
    "run_figure13",
    "LATENCY_POLICIES",
    "HorizonRow",
    "sweep_horizons",
    "run_figure14",
    "DEFAULT_HORIZONS",
    "OverheadRow",
    "measure_overheads",
    "run_table2",
    "AblationResult",
    "OptimalityResult",
    "ablate_batch_awareness",
    "ablate_coverage_ordering",
    "measure_optimality_gap",
    "jetson_fleet_profiles",
    "random_instance",
    "run_ablations",
    "PairSplit",
    "collect_and_split",
    "split_dataset",
    "format_table",
    "run_all",
    "OcclusionStudy",
    "BandwidthStudy",
    "EnergyStudy",
    "occlusion_redundancy_study",
    "bandwidth_study",
    "energy_study",
    "run_extensions",
    "SynchronizationStudy",
    "synchronization_study",
    "DegradationPoint",
    "FaultToleranceStudy",
    "FailoverPoint",
    "fault_tolerance_study",
    "run_fault_tolerance",
    "IngestPoint",
    "IngestStudy",
    "ingest_study",
    "run_ingest",
]
