"""Figure 11: cross-camera location regression — model comparison.

Per scenario, fit each candidate regressor (KNN, homography, linear,
RANSAC) on the positive rows of each camera pair's train half and measure
mean absolute error (pixels over box coordinates) on the test half. The
paper's finding: KNN reaches the lowest MAE in S1/S3 and ties linear /
RANSAC in S2, while homography is much worse everywhere because bounding
boxes are not ground-plane points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.association.baselines import REGRESSOR_FACTORIES
from repro.experiments.assoc_data import collect_and_split
from repro.experiments.report import format_table
from repro.ml.metrics import mean_absolute_error
from repro.scenarios.aic21 import get_scenario


@dataclass
class RegressionRow:
    """One model's pooled MAE on one scenario."""

    scenario: str
    model: str
    mae_px: float
    n_test: int


def evaluate_regressors(
    scenario_name: str,
    duration_s: float = 150.0,
    seed: int = 0,
    models: Dict[str, object] | None = None,
) -> List[RegressionRow]:
    """Figure 11 for one scenario: pooled MAE (pixels) per model."""
    scenario = get_scenario(scenario_name, seed=seed)
    splits = collect_and_split(scenario, duration_s=duration_s, seed=seed)
    factories = models or REGRESSOR_FACTORIES
    rows: List[RegressionRow] = []
    for name, factory in factories.items():
        errors: List[float] = []
        n_test = 0
        for split in splits.values():
            if len(split.xr_train) < 8 or len(split.xr_test) < 2:
                continue
            try:
                model = factory().fit(split.xr_train, split.yr_train)
                pred = model.predict(split.xr_test)
            except (ValueError, np.linalg.LinAlgError):
                continue  # degenerate pair for this model (e.g. homography)
            errors.append(mean_absolute_error(split.yr_test, pred))
            n_test += len(split.xr_test)
        mae = float(np.mean(errors)) if errors else float("nan")
        rows.append(
            RegressionRow(
                scenario=scenario_name, model=name, mae_px=mae, n_test=n_test
            )
        )
    return rows


def run_figure11(
    scenarios: tuple = ("S1", "S2", "S3"),
    duration_s: float = 150.0,
    seed: int = 0,
) -> str:
    """Regenerate Figure 11 as a text table over all scenarios."""
    rows: List[RegressionRow] = []
    for name in scenarios:
        rows.extend(evaluate_regressors(name, duration_s=duration_s, seed=seed))
    return format_table(
        ["scenario", "model", "MAE (px)"],
        [(r.scenario, r.model, round(r.mae_px, 1)) for r in rows],
        title="Figure 11: cross-camera location regression",
    )
