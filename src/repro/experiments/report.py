"""Plain-text rendering of experiment results.

Every experiment harness returns structured rows; this module renders them
as aligned ASCII tables, mirroring the rows/series of the paper's figures
and tables so a run's output can be compared to the paper at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width table with a separator under headers."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)
