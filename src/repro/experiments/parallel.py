"""Parallel experiment harness: fan report sections out over processes.

The serial report runner executes ten sections back to back; most of
their wall-clock is embarrassingly parallel (independent scenarios,
policies, seeds and sweep points). This module decomposes every section
into picklable *jobs* — module-level cell functions plus positional
arguments — runs them on a spawn-context :class:`ProcessPoolExecutor`,
and merges the results back in a deterministic order so that the
parallel report is byte-identical to the serial one.

Three properties make that identity hold:

* every cell is a pure function of its arguments (the simulator and the
  trainers are seeded, never wall-clock driven);
* jobs are submitted and merged in a fixed order that mirrors the
  serial loops exactly, so tables render rows in the same sequence;
* model training is deduplicated through the content-addressed
  :mod:`repro.cache` — a warm-up wave trains each distinct
  (scenario, warm-up, duration) triple once, after which every worker
  process gets cache hits instead of refitting.

:class:`ReportProfile` carries every knob of every section. The
``FULL_PROFILE`` values equal the historical in-module defaults (so
profile-driven runs reproduce the original report bytes);
``QUICK_PROFILE`` shrinks each sweep for smoke tests and CI.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import ArtifactCache, use_cache
from repro.experiments.ablations import run_ablations
from repro.experiments.extensions import (
    OcclusionStudy,
    SynchronizationStudy,
    bandwidth_study,
    energy_study,
    format_extensions,
    occlusion_point,
    occlusion_redundancy_study,
    synchronization_point,
    synchronization_study,
)
from repro.experiments.fault_tolerance import (
    FaultToleranceStudy,
    degradation_point,
    fault_tolerance_study,
    failover_point,
    format_fault_tolerance,
    outage_spec_for,
)
from repro.experiments.fig2_workload import run_figure2_text
from repro.experiments.ingest import (
    IngestStudy,
    format_ingest,
    identity_check,
    ingest_point,
    ingest_study,
)
from repro.experiments.fig10_classification import (
    ClassificationRow,
    evaluate_classifiers,
    run_figure10,
)
from repro.experiments.fig11_regression import (
    RegressionRow,
    evaluate_regressors,
    run_figure11,
)
from repro.experiments.fig12_recall import (
    DEFAULT_POLICIES,
    run_figure12,
)
from repro.experiments.fig13_latency import LATENCY_POLICIES, run_figure13
from repro.experiments.fig14_horizon import horizon_point, run_figure14
from repro.experiments.report import format_table
from repro.experiments.table2_overhead import (
    OverheadRow,
    measure_overheads,
    run_table2,
)
from repro.obs import MetricsRegistry
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario
from repro.scenarios.bursts import burst_sweep_specs

# ----------------------------------------------------------------------
# Report profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReportProfile:
    """Every knob of every report section, in one picklable value.

    The defaults reproduce the historical serial report exactly; the
    ``QUICK_PROFILE`` instance shrinks sweeps for smoke runs.
    """

    name: str = "full"
    scenarios: Tuple[str, ...] = ("S1", "S2", "S3")
    # Shared pipeline knobs (FIG12/FIG13/FIG14/TAB2/EXTENSIONS training).
    train_duration_s: float = 120.0
    warmup_s: float = 30.0
    # FIG2 workload trace.
    fig2_duration_s: float = 120.0
    fig2_warmup_s: float = 30.0
    # FIG10/FIG11 association-model evaluation.
    eval_duration_s: float = 150.0
    # FIG12/FIG13 policy runs.
    policy_n_horizons: int = 40
    # FIG14 horizon sweep.
    fig14_scenario: str = "S1"
    fig14_horizons: Tuple[int, ...] = (2, 5, 10, 20, 30)
    fig14_frames_per_point: int = 300
    # TAB2 overhead breakdown.
    tab2_n_horizons: int = 30
    # FAULTS sweeps.
    faults_scenario: str = "S1"
    faults_horizon: int = 5
    faults_n_horizons: int = 10
    faults_train_duration_s: float = 90.0
    faults_crash_rates: Tuple[float, ...] = (0.0, 0.01, 0.03)
    faults_loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.3)
    faults_policies: Tuple[str, ...] = ("balb", "sp", "balb-ind")
    faults_scheduler_policies: Tuple[str, ...] = ("balb", "sp")
    faults_heartbeats: Tuple[int, ...] = (2, 5, 10)
    # INGEST backpressure sweep (event runtime).
    ingest_scenario: str = "S1"
    ingest_horizon: int = 5
    ingest_n_horizons: int = 10
    ingest_train_duration_s: float = 90.0
    ingest_capacity: int = 2
    ingest_policies: Tuple[str, ...] = (
        "drop-oldest", "degrade-to-distributed", "coalesce-to-key-frame"
    )
    # EXTENSIONS studies.
    ext_occ_scenario: str = "S3"
    ext_occ_n_horizons: int = 25
    ext_sync_scenario: str = "S3"
    ext_sync_n_horizons: int = 20
    ext_sync_lags: Tuple[int, ...] = (0, 2, 5)
    ext_trials: int = 25

    def policy_config(self, seed: int) -> PipelineConfig:
        """The FIG12/FIG13 run config (the historical in-module default)."""
        return PipelineConfig(
            policy="balb", n_horizons=self.policy_n_horizons,
            train_duration_s=self.train_duration_s, warmup_s=self.warmup_s,
            seed=seed,
        )

    def tab2_config(self, seed: int) -> PipelineConfig:
        """The Table II run config."""
        return PipelineConfig(
            policy="balb", n_horizons=self.tab2_n_horizons,
            train_duration_s=self.train_duration_s, warmup_s=self.warmup_s,
            seed=seed,
        )

    def faults_config(self, seed: int) -> PipelineConfig:
        """The base config the FAULTS sweeps share."""
        return PipelineConfig(
            policy="balb", horizon=self.faults_horizon,
            n_horizons=self.faults_n_horizons, warmup_s=self.warmup_s,
            train_duration_s=self.faults_train_duration_s, seed=seed,
        )

    def ingest_config(self, seed: int) -> PipelineConfig:
        """The base config the INGEST sweep shares."""
        return PipelineConfig(
            policy="balb", horizon=self.ingest_horizon,
            n_horizons=self.ingest_n_horizons, warmup_s=self.warmup_s,
            train_duration_s=self.ingest_train_duration_s, seed=seed,
        )

    def occ_config(self, seed: int) -> PipelineConfig:
        """The EXT-OCC base config."""
        return PipelineConfig(
            policy="balb", n_horizons=self.ext_occ_n_horizons,
            warmup_s=self.warmup_s, train_duration_s=self.train_duration_s,
            seed=seed,
        )

    def sync_config(self, seed: int) -> PipelineConfig:
        """The EXT-SYNC base config."""
        return PipelineConfig(
            policy="balb", n_horizons=self.ext_sync_n_horizons,
            warmup_s=self.warmup_s, train_duration_s=self.train_duration_s,
            seed=seed,
        )


FULL_PROFILE = ReportProfile()
"""The historical report: every knob at its original default."""

QUICK_PROFILE = ReportProfile(
    name="quick",
    scenarios=("S2",),
    train_duration_s=12.0,
    warmup_s=6.0,
    fig2_duration_s=20.0,
    fig2_warmup_s=6.0,
    eval_duration_s=20.0,
    policy_n_horizons=2,
    fig14_scenario="S2",
    fig14_horizons=(2, 4),
    fig14_frames_per_point=8,
    tab2_n_horizons=2,
    faults_scenario="S2",
    faults_horizon=4,
    faults_n_horizons=3,
    faults_train_duration_s=12.0,
    faults_crash_rates=(0.0, 0.02),
    faults_loss_rates=(0.0, 0.2),
    faults_policies=("balb", "sp"),
    faults_scheduler_policies=("balb",),
    faults_heartbeats=(2, 4),
    ext_occ_scenario="S2",
    ext_occ_n_horizons=2,
    ext_sync_scenario="S2",
    ext_sync_n_horizons=2,
    ext_sync_lags=(0, 2),
    ext_trials=5,
    ingest_scenario="S2",
    ingest_horizon=4,
    ingest_n_horizons=3,
    ingest_train_duration_s=12.0,
    ingest_policies=("drop-oldest", "coalesce-to-key-frame"),
)
"""A minutes-not-hours profile for smoke tests and CI."""


# ----------------------------------------------------------------------
# Jobs and the process-pool executor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One picklable unit of section work: ``fn(*args)`` in a worker."""

    section: str
    key: Any
    fn: Callable[..., Any]
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class JobResult:
    """A job's return value plus its worker-side timing and cache hits."""

    section: str
    key: Any
    value: Any
    elapsed_s: float
    cache_hits: int
    cache_misses: int


def _execute_job(job: Job, cache_root: Optional[str]) -> JobResult:
    """Run one job (in a worker process) under its own cache + registry."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    if cache_root is None:
        value = job.fn(*job.args)
        hits = misses = 0
    else:
        cache = ArtifactCache(cache_root, registry=registry)
        with use_cache(cache):
            value = job.fn(*job.args)
        hits, misses = cache.hits, cache.misses
    elapsed = time.perf_counter() - start
    return JobResult(
        section=job.section, key=job.key, value=value, elapsed_s=elapsed,
        cache_hits=hits, cache_misses=misses,
    )


def run_jobs(
    jobs: Sequence[Job],
    workers: int,
    cache_root: Optional[str] = None,
) -> List[JobResult]:
    """Execute jobs (in submission order) and gather ordered results.

    ``workers == 1`` runs everything inline — no processes, no pickling —
    which is the bit-exact fallback path.
    """
    if workers <= 1:
        return [_execute_job(job, cache_root) for job in jobs]
    ctx = get_context("spawn")
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        return _run_in_pool(pool, jobs, cache_root)


def _run_in_pool(
    pool: ProcessPoolExecutor,
    jobs: Sequence[Job],
    cache_root: Optional[str],
) -> List[JobResult]:
    futures = [pool.submit(_execute_job, job, cache_root) for job in jobs]
    return [future.result() for future in futures]


def _fingerprint(job: Job) -> bytes:
    """Identity of a job's *work* (not its section), for deduplication."""
    return pickle.dumps(
        (job.fn.__module__, job.fn.__qualname__, job.args), protocol=4
    )


# ----------------------------------------------------------------------
# Cell functions (module-level, picklable)
# ----------------------------------------------------------------------


def _warm_cell(
    scenario_name: str, warmup_s: float, train_duration_s: float, seed: int
) -> str:
    """Train (and cache) one scenario's models so later jobs get hits."""
    scenario = get_scenario(scenario_name, seed=seed)
    config = PipelineConfig(
        policy="balb", warmup_s=warmup_s, train_duration_s=train_duration_s,
        seed=seed,
    )
    train_models(scenario, config)
    return scenario_name


def _fig2_cell(seed: int, duration_s: float, warmup_s: float) -> str:
    return run_figure2_text(seed, duration_s=duration_s, warmup_s=warmup_s)


def _fig10_cell(
    scenario_name: str, duration_s: float, seed: int
) -> List[ClassificationRow]:
    return evaluate_classifiers(scenario_name, duration_s=duration_s, seed=seed)


def _fig11_cell(
    scenario_name: str, duration_s: float, seed: int
) -> List[RegressionRow]:
    return evaluate_regressors(scenario_name, duration_s=duration_s, seed=seed)


def _policy_cell(
    scenario_name: str, policy: str, config: PipelineConfig
) -> Dict[str, Any]:
    """One (scenario, policy) run: the FIG12/FIG13 measurements."""
    scenario = get_scenario(scenario_name, seed=config.seed)
    trained = train_models(scenario, config)
    result = run_policy(scenario, policy, config, trained)
    return {
        "scenario": result.scenario,
        "recall": result.object_recall(),
        "latency_ms": result.mean_slowest_latency(),
    }


def _fig14_cell(
    scenario_name: str,
    horizon: int,
    frames_per_point: int,
    train_duration_s: float,
    warmup_s: float,
    seed: int,
):
    return horizon_point(
        scenario_name, horizon, frames_per_point, None, seed,
        train_duration_s=train_duration_s, warmup_s=warmup_s,
    )


def _tab2_cell(scenario_name: str, config: PipelineConfig) -> OverheadRow:
    return measure_overheads(scenario_name, config=config, seed=config.seed)


def _ablations_cell(seed: int) -> str:
    return run_ablations(seed=seed)


def _fault_degradation_cell(
    scenario_name: str,
    base: PipelineConfig,
    policy: str,
    crash: float,
    loss: float,
):
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return degradation_point(scenario, base, trained, policy, crash, loss)


def _fault_failover_cell(
    scenario_name: str, base: PipelineConfig, policy: str, heartbeat: int
):
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return failover_point(
        scenario, base, trained, policy, heartbeat, outage_spec_for(base)
    )


def _ingest_cell(
    scenario_name: str,
    base: PipelineConfig,
    ingest_policy: str,
    burst: str,
    capacity: int,
):
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return ingest_point(scenario, base, trained, ingest_policy, burst, capacity)


def _ingest_identity_cell(scenario_name: str, base: PipelineConfig) -> bool:
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return identity_check(scenario, base, trained)


def _ext_occ_cell(
    scenario_name: str, base: PipelineConfig, k: int
) -> Tuple[float, float]:
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return occlusion_point(scenario, base, trained, k)


def _ext_sync_cell(
    scenario_name: str, base: PipelineConfig, lag: int
) -> Tuple[float, float]:
    scenario = get_scenario(scenario_name, seed=base.seed)
    trained = train_models(scenario, base)
    return synchronization_point(scenario, base, trained, lag)


def _ext_bw_cell(n_trials: int, seed: int):
    return bandwidth_study(n_trials=n_trials, seed=seed)


def _ext_en_cell(n_trials: int, seed: int):
    return energy_study(n_trials=n_trials, seed=seed)


# ----------------------------------------------------------------------
# Section registry: serial body, parallel jobs, deterministic merge
# ----------------------------------------------------------------------

TrainKey = Tuple[str, float, float]  # (scenario, warmup_s, train_duration_s)


def _no_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return ()


@dataclass(frozen=True)
class Section:
    """One report section: how to run it serially, split it, merge it."""

    name: str
    serial: Callable[[int, ReportProfile], str]
    jobs: Callable[[int, ReportProfile], List[Job]]
    merge: Callable[[Dict[Any, Any], int, ReportProfile], str]
    train_keys: Callable[[ReportProfile], Tuple[TrainKey, ...]] = field(
        default=_no_train_keys
    )


def _speedup(baseline_ms: float, improved_ms: float) -> float:
    """`speedup_vs` on raw latencies (same guard, same division)."""
    if improved_ms <= 0:
        raise ValueError("improved run has non-positive latency")
    return baseline_ms / improved_ms


# -- FIG2 ---------------------------------------------------------------


def _fig2_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure2_text(
        seed, duration_s=profile.fig2_duration_s,
        warmup_s=profile.fig2_warmup_s,
    )


def _fig2_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    return [Job(
        "FIG2", "fig2", _fig2_cell,
        (seed, profile.fig2_duration_s, profile.fig2_warmup_s),
    )]


def _fig2_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    return str(results["fig2"])


# -- FIG10 / FIG11 ------------------------------------------------------


def _fig10_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure10(
        scenarios=profile.scenarios, duration_s=profile.eval_duration_s,
        seed=seed,
    )


def _fig10_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    return [
        Job("FIG10", name, _fig10_cell, (name, profile.eval_duration_s, seed))
        for name in profile.scenarios
    ]


def _fig10_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows: List[ClassificationRow] = []
    for name in profile.scenarios:
        rows.extend(results[name])
    return format_table(
        ["scenario", "model", "precision", "recall", "f1"],
        [(r.scenario, r.model, r.precision, r.recall, r.f1) for r in rows],
        title="Figure 10: cross-camera visibility classification",
    )


def _fig11_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure11(
        scenarios=profile.scenarios, duration_s=profile.eval_duration_s,
        seed=seed,
    )


def _fig11_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    return [
        Job("FIG11", name, _fig11_cell, (name, profile.eval_duration_s, seed))
        for name in profile.scenarios
    ]


def _fig11_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows: List[RegressionRow] = []
    for name in profile.scenarios:
        rows.extend(results[name])
    return format_table(
        ["scenario", "model", "MAE (px)"],
        [(r.scenario, r.model, round(r.mae_px, 1)) for r in rows],
        title="Figure 11: cross-camera location regression",
    )


# -- FIG12 / FIG13 ------------------------------------------------------


def _scenario_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return tuple(
        (name, profile.warmup_s, profile.train_duration_s)
        for name in profile.scenarios
    )


def _fig12_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure12(
        scenarios=profile.scenarios, config=profile.policy_config(seed),
        seed=seed,
    )


def _fig12_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    config = profile.policy_config(seed)
    return [
        Job("FIG12", (name, policy), _policy_cell, (name, policy, config))
        for name in profile.scenarios
        for policy in DEFAULT_POLICIES
    ]


def _fig12_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows = [
        (results[(name, policy)]["scenario"], policy,
         results[(name, policy)]["recall"])
        for name in profile.scenarios
        for policy in DEFAULT_POLICIES
    ]
    return format_table(
        ["scenario", "policy", "object recall"],
        rows,
        title="Figure 12: object recall by scheduling policy",
    )


def _fig13_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure13(
        scenarios=profile.scenarios, config=profile.policy_config(seed),
        seed=seed,
    )


def _fig13_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    config = profile.policy_config(seed)
    return [
        Job("FIG13", (name, policy), _policy_cell, (name, policy, config))
        for name in profile.scenarios
        for policy in LATENCY_POLICIES
    ]


def _fig13_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows = []
    summaries = []
    for name in profile.scenarios:
        cells = {p: results[(name, p)] for p in LATENCY_POLICIES}
        full_ms = cells["full"]["latency_ms"]
        for policy in LATENCY_POLICIES:
            cell = cells[policy]
            rows.append((
                cell["scenario"], policy, round(cell["latency_ms"], 1),
                _speedup(full_ms, cell["latency_ms"]),
            ))
        balb_ms = cells["balb"]["latency_ms"]
        summaries.append((
            cells["balb"]["scenario"],
            _speedup(full_ms, balb_ms),
            _speedup(cells["balb-ind"]["latency_ms"], balb_ms),
            _speedup(cells["sp"]["latency_ms"], balb_ms),
        ))
    table1 = format_table(
        ["scenario", "policy", "slowest-cam ms", "speedup vs full"],
        rows,
        title="Figure 13: per-frame inference latency",
    )
    table2 = format_table(
        ["scenario", "BALB/Full", "BALB/Ind", "BALB/SP"],
        summaries,
        title="Headline speedups (paper: 6.85/6.18/2.45 vs Full; 1.88x mean vs SP)",
    )
    return table1 + "\n\n" + table2


# -- FIG14 --------------------------------------------------------------


def _fig14_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return ((profile.fig14_scenario, profile.warmup_s, profile.train_duration_s),)


def _fig14_serial(seed: int, profile: ReportProfile) -> str:
    return run_figure14(
        scenario_name=profile.fig14_scenario, horizons=profile.fig14_horizons,
        seed=seed, frames_per_point=profile.fig14_frames_per_point,
        train_duration_s=profile.train_duration_s, warmup_s=profile.warmup_s,
    )


def _fig14_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    return [
        Job(
            "FIG14", horizon, _fig14_cell,
            (profile.fig14_scenario, horizon, profile.fig14_frames_per_point,
             profile.train_duration_s, profile.warmup_s, seed),
        )
        for horizon in profile.fig14_horizons
    ]


def _fig14_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows = [results[horizon] for horizon in profile.fig14_horizons]
    return format_table(
        ["horizon T", "object recall", "slowest-cam ms"],
        [(r.horizon, r.recall, round(r.slowest_camera_ms, 1)) for r in rows],
        title=f"Figure 14: scheduling horizon sweep on {profile.fig14_scenario}",
    )


# -- TAB2 ---------------------------------------------------------------


def _tab2_serial(seed: int, profile: ReportProfile) -> str:
    return run_table2(
        scenarios=profile.scenarios, config=profile.tab2_config(seed),
        seed=seed,
    )


def _tab2_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    config = profile.tab2_config(seed)
    return [
        Job("TAB2", name, _tab2_cell, (name, config))
        for name in profile.scenarios
    ]


def _tab2_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    rows: List[OverheadRow] = [results[name] for name in profile.scenarios]
    return format_table(
        ["scenario", "central", "tracking", "distributed", "batching", "total"],
        [
            (
                r.scenario,
                round(r.central_ms, 2),
                round(r.tracking_ms, 2),
                round(r.distributed_ms, 2),
                round(r.batching_ms, 2),
                round(r.total_ms, 2),
            )
            for r in rows
        ],
        title="Table II: per-frame latency overhead breakdown (ms)",
    )


# -- ABLATIONS ----------------------------------------------------------


def _ablations_serial(seed: int, profile: ReportProfile) -> str:
    return run_ablations(seed=seed)


def _ablations_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    return [Job("ABLATIONS", "ablations", _ablations_cell, (seed,))]


def _ablations_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    return str(results["ablations"])


# -- EXTENSIONS ---------------------------------------------------------


def _extensions_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return (
        (profile.ext_occ_scenario, profile.warmup_s, profile.train_duration_s),
        (profile.ext_sync_scenario, profile.warmup_s, profile.train_duration_s),
    )


def _extensions_serial(seed: int, profile: ReportProfile) -> str:
    occ = occlusion_redundancy_study(
        profile.ext_occ_scenario, config=profile.occ_config(seed), seed=seed
    )
    bw = bandwidth_study(n_trials=profile.ext_trials, seed=seed)
    en = energy_study(n_trials=profile.ext_trials, seed=seed)
    sync = synchronization_study(
        profile.ext_sync_scenario, lags=profile.ext_sync_lags,
        config=profile.sync_config(seed), seed=seed,
    )
    return format_extensions(occ, bw, en, sync)


def _extensions_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    occ_base = profile.occ_config(seed)
    sync_base = profile.sync_config(seed)
    jobs = [
        Job("EXTENSIONS", ("occ", k), _ext_occ_cell,
            (profile.ext_occ_scenario, occ_base, k))
        for k in (1, 2)
    ]
    jobs.append(
        Job("EXTENSIONS", "bw", _ext_bw_cell, (profile.ext_trials, seed))
    )
    jobs.append(
        Job("EXTENSIONS", "en", _ext_en_cell, (profile.ext_trials, seed))
    )
    jobs.extend(
        Job("EXTENSIONS", ("sync", lag), _ext_sync_cell,
            (profile.ext_sync_scenario, sync_base, lag))
        for lag in profile.ext_sync_lags
    )
    return jobs


def _extensions_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    occ = OcclusionStudy(
        scenario=profile.ext_occ_scenario,
        recall_k1=results[("occ", 1)][0],
        recall_k2=results[("occ", 2)][0],
        latency_k1=results[("occ", 1)][1],
        latency_k2=results[("occ", 2)][1],
    )
    sync_points = [results[("sync", lag)] for lag in profile.ext_sync_lags]
    sync = SynchronizationStudy(
        scenario=profile.ext_sync_scenario,
        lags=tuple(profile.ext_sync_lags),
        recalls=tuple(p[0] for p in sync_points),
        latencies=tuple(p[1] for p in sync_points),
    )
    return format_extensions(occ, results["bw"], results["en"], sync)


# -- FAULTS -------------------------------------------------------------


def _faults_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return ((
        profile.faults_scenario, profile.warmup_s,
        profile.faults_train_duration_s,
    ),)


def _faults_serial(seed: int, profile: ReportProfile) -> str:
    study = fault_tolerance_study(
        scenario_name=profile.faults_scenario,
        crash_rates=profile.faults_crash_rates,
        loss_rates=profile.faults_loss_rates,
        policies=profile.faults_policies,
        config=profile.faults_config(seed),
        seed=seed,
        scheduler_policies=profile.faults_scheduler_policies,
        heartbeats=profile.faults_heartbeats,
    )
    return format_fault_tolerance(study, drop_policies=profile.faults_policies)


def _faults_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    base = profile.faults_config(seed)
    name = profile.faults_scenario
    jobs = [
        Job("FAULTS", ("sched", policy), _fault_failover_cell,
            (name, base, policy, base.horizon))
        for policy in profile.faults_scheduler_policies
    ]
    jobs.extend(
        Job("FAULTS", ("hb", hb), _fault_failover_cell, (name, base, "balb", hb))
        for hb in profile.faults_heartbeats
    )
    jobs.extend(
        Job("FAULTS", ("crash", policy, crash), _fault_degradation_cell,
            (name, base, policy, crash, 0.0))
        for policy in profile.faults_policies
        for crash in profile.faults_crash_rates
    )
    jobs.extend(
        Job("FAULTS", ("loss", loss), _fault_degradation_cell,
            (name, base, "balb", 0.0, loss))
        for loss in profile.faults_loss_rates
    )
    return jobs


def _faults_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    study = FaultToleranceStudy(
        scenario=profile.faults_scenario,
        crash_sweep=tuple(
            results[("crash", policy, crash)]
            for policy in profile.faults_policies
            for crash in profile.faults_crash_rates
        ),
        loss_sweep=tuple(
            results[("loss", loss)] for loss in profile.faults_loss_rates
        ),
        scheduler_sweep=tuple(
            results[("sched", policy)]
            for policy in profile.faults_scheduler_policies
        ),
        heartbeat_sweep=tuple(
            results[("hb", hb)] for hb in profile.faults_heartbeats
        ),
    )
    return format_fault_tolerance(study, drop_policies=profile.faults_policies)


# -- INGEST -------------------------------------------------------------


def _ingest_train_keys(profile: ReportProfile) -> Tuple[TrainKey, ...]:
    return ((
        profile.ingest_scenario, profile.warmup_s,
        profile.ingest_train_duration_s,
    ),)


def _ingest_bursts(profile: ReportProfile) -> Tuple[str, ...]:
    base = profile.ingest_config(0)
    return burst_sweep_specs(base.horizon, base.horizon * base.n_horizons)


def _ingest_serial(seed: int, profile: ReportProfile) -> str:
    study = ingest_study(
        scenario_name=profile.ingest_scenario,
        ingest_policies=profile.ingest_policies,
        bursts=_ingest_bursts(profile),
        capacity=profile.ingest_capacity,
        config=profile.ingest_config(seed),
        seed=seed,
    )
    return format_ingest(study)


def _ingest_jobs(seed: int, profile: ReportProfile) -> List[Job]:
    base = profile.ingest_config(seed)
    name = profile.ingest_scenario
    jobs = [
        Job("INGEST", ("identity",), _ingest_identity_cell, (name, base))
    ]
    jobs.extend(
        Job("INGEST", ("cell", policy, burst), _ingest_cell,
            (name, base, policy, burst, profile.ingest_capacity))
        for policy in profile.ingest_policies
        for burst in _ingest_bursts(profile)
    )
    return jobs


def _ingest_merge(
    results: Dict[Any, Any], seed: int, profile: ReportProfile
) -> str:
    study = IngestStudy(
        scenario=profile.ingest_scenario,
        identity_holds=results[("identity",)],
        sweep=tuple(
            results[("cell", policy, burst)]
            for policy in profile.ingest_policies
            for burst in _ingest_bursts(profile)
        ),
    )
    return format_ingest(study)


SECTIONS: Dict[str, Section] = {
    sec.name: sec
    for sec in (
        Section("FIG2", _fig2_serial, _fig2_jobs, _fig2_merge),
        Section("FIG10", _fig10_serial, _fig10_jobs, _fig10_merge),
        Section("FIG11", _fig11_serial, _fig11_jobs, _fig11_merge),
        Section("FIG12", _fig12_serial, _fig12_jobs, _fig12_merge,
                _scenario_train_keys),
        Section("FIG13", _fig13_serial, _fig13_jobs, _fig13_merge,
                _scenario_train_keys),
        Section("FIG14", _fig14_serial, _fig14_jobs, _fig14_merge,
                _fig14_train_keys),
        Section("TAB2", _tab2_serial, _tab2_jobs, _tab2_merge,
                _scenario_train_keys),
        Section("ABLATIONS", _ablations_serial, _ablations_jobs,
                _ablations_merge),
        Section("EXTENSIONS", _extensions_serial, _extensions_jobs,
                _extensions_merge, _extensions_train_keys),
        Section("FAULTS", _faults_serial, _faults_jobs, _faults_merge,
                _faults_train_keys),
        Section("INGEST", _ingest_serial, _ingest_jobs, _ingest_merge,
                _ingest_train_keys),
    )
}

SECTION_ORDER: Tuple[str, ...] = (
    "FIG2", "FIG10", "FIG11", "FIG12", "FIG13", "FIG14", "TAB2",
    "ABLATIONS", "EXTENSIONS", "FAULTS", "INGEST",
)


def warm_jobs(
    section_names: Sequence[str], seed: int, profile: ReportProfile
) -> List[Job]:
    """One training job per distinct (scenario, warm-up, duration) triple.

    Running these before the section fan-out means every model fit
    happens exactly once; the section jobs then hit the artifact cache.
    """
    keys: List[TrainKey] = []
    for name in section_names:
        for key in SECTIONS[name].train_keys(profile):
            if key not in keys:
                keys.append(key)
    return [
        Job("WARMUP", key, _warm_cell, (key[0], key[1], key[2], seed))
        for key in sorted(keys)
    ]


@dataclass(frozen=True)
class ReportSections:
    """Merged section bodies plus the fan-out's aggregate accounting."""

    bodies: Dict[str, str]
    elapsed_s: Dict[str, float]  # per section, summed over its jobs
    warm_elapsed_s: float
    cache_hits: int
    cache_misses: int


def run_report_sections(
    section_names: Sequence[str],
    seed: int,
    profile: Optional[ReportProfile] = None,
    workers: int = 2,
    cache_root: Optional[str] = None,
) -> ReportSections:
    """Fan the named sections out over ``workers`` processes and merge.

    Jobs that perform identical work for two sections (FIG13's policy
    runs are a subset of FIG12's) are executed once and shared. Section
    elapsed times attribute a shared job to every section that uses it,
    mirroring what the serial runner would have measured.
    """
    unknown = [name for name in section_names if name not in SECTIONS]
    if unknown:
        raise ValueError(f"unknown report sections: {unknown}")
    profile = profile if profile is not None else FULL_PROFILE

    all_jobs: List[Job] = []
    for name in section_names:
        all_jobs.extend(SECTIONS[name].jobs(seed, profile))
    unique_index: Dict[bytes, int] = {}
    unique_jobs: List[Job] = []
    for job in all_jobs:
        fp = _fingerprint(job)
        if fp not in unique_index:
            unique_index[fp] = len(unique_jobs)
            unique_jobs.append(job)

    warm = warm_jobs(section_names, seed, profile)
    if workers <= 1:
        warm_results = [_execute_job(job, cache_root) for job in warm]
        unique_results = [_execute_job(job, cache_root) for job in unique_jobs]
    else:
        ctx = get_context("spawn")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            warm_results = _run_in_pool(pool, warm, cache_root)
            unique_results = _run_in_pool(pool, unique_jobs, cache_root)

    by_section: Dict[str, Dict[Any, Any]] = {n: {} for n in section_names}
    elapsed: Dict[str, float] = {n: 0.0 for n in section_names}
    for job in all_jobs:
        result = unique_results[unique_index[_fingerprint(job)]]
        by_section[job.section][job.key] = result.value
        elapsed[job.section] += result.elapsed_s
    bodies = {
        name: SECTIONS[name].merge(by_section[name], seed, profile)
        for name in section_names
    }
    return ReportSections(
        bodies=bodies,
        elapsed_s=elapsed,
        warm_elapsed_s=sum(r.elapsed_s for r in warm_results),
        cache_hits=sum(r.cache_hits for r in warm_results + unique_results),
        cache_misses=sum(r.cache_misses for r in warm_results + unique_results),
    )
