"""FAULTS: degradation study under injected failures.

Sweeps two failure axes on one scenario and measures how gracefully each
scheduling policy degrades:

* **Camera-failure sweep** — stochastic camera crash/rejoin at increasing
  per-frame crash rates, for BALB vs SP vs balb-ind. Reports effective
  recall (coverage-lost object-frames excluded), the naive recall a
  fault-oblivious evaluation would compute, the coverage loss itself, and
  the slowest-camera latency. BALB's forced re-scheduling should hold
  effective recall close to fault-free while SP (static masks) leaks
  shared objects.
* **Link-loss sweep** — report/assignment message loss at increasing
  probabilities for BALB. Cameras that miss their assignment fall back to
  the stale decision; recall degrades smoothly rather than collapsing.
* **Scheduler-kill sweep** — a scripted central-scheduler outage for BALB
  vs SP. With failover, a warm-standby camera takes over from its
  replicated checkpoint within one heartbeat interval; the table reports
  takeovers, skipped key frames and recall under the outage.
* **Recovery-vs-heartbeat curve** — the same outage at increasing
  heartbeat intervals, showing the detection-latency/overhead trade-off
  of the lease protocol (recovery time grows linearly with the interval).

Every run is deterministic: the fault schedule is compiled from the run
seed before the frame loop starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.report import format_table
from repro.faults import FaultModel
from repro.runtime.pipeline import (
    PipelineConfig,
    TrainedModels,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import get_scenario
from repro.scenarios.builder import Scenario


@dataclass(frozen=True)
class DegradationPoint:
    """One (policy, fault intensity) cell of the study."""

    policy: str
    crash_rate: float
    loss_rate: float
    recall: float  # coverage-lost object-frames excluded
    naive_recall: float  # lost counted as missed
    coverage_loss: float
    latency_ms: float


@dataclass(frozen=True)
class FailoverPoint:
    """One scheduler-outage run: availability and recovery figures."""

    policy: str
    heartbeat_frames: int
    recall: float
    takeovers: int
    skipped_key_frames: int
    scheduler_down_frames: int
    mean_recovery_ms: float

    @property
    def recovered(self) -> bool:
        """Did a standby restore central scheduling during the outage?"""
        return self.takeovers > 0


@dataclass(frozen=True)
class FaultToleranceStudy:
    """All sweeps of the FAULTS experiment."""

    scenario: str
    crash_sweep: Tuple[DegradationPoint, ...]
    loss_sweep: Tuple[DegradationPoint, ...]
    scheduler_sweep: Tuple[FailoverPoint, ...] = ()
    heartbeat_sweep: Tuple[FailoverPoint, ...] = ()

    def worst_recall_drop(self, policy: str) -> float:
        """Effective-recall drop from fault-free to the harshest crash rate."""
        points = [p for p in self.crash_sweep if p.policy == policy]
        if not points:
            raise ValueError(f"no crash-sweep points for policy {policy!r}")
        baseline = min(points, key=lambda p: p.crash_rate)
        worst = max(points, key=lambda p: p.crash_rate)
        return baseline.recall - worst.recall


def default_fault_config(seed: int = 0) -> PipelineConfig:
    """The base run config the FAULTS sweeps share."""
    return PipelineConfig(
        policy="balb", horizon=5, n_horizons=10, warmup_s=30.0,
        train_duration_s=90.0, seed=seed,
    )


def outage_spec_for(base: PipelineConfig) -> str:
    """One mid-run scheduler outage long enough to span several horizons."""
    return f"sched_crash:at={2 * base.horizon + 2},for={3 * base.horizon}"


def degradation_point(
    scenario: Scenario,
    base: PipelineConfig,
    trained: TrainedModels,
    policy: str,
    crash: float,
    loss: float,
) -> DegradationPoint:
    """One (policy, fault intensity) cell of the crash/loss sweeps."""
    model = FaultModel(crash_rate=crash, mean_outage_frames=8,
                       loss_prob=loss)
    cfg = PipelineConfig(
        **{**base.__dict__, "policy": policy,
           "faults": None if model.is_null else model}
    )
    result = run_policy(scenario, policy, cfg, trained)
    return DegradationPoint(
        policy=policy,
        crash_rate=crash,
        loss_rate=loss,
        recall=result.object_recall(),
        naive_recall=result.object_recall(count_lost_as_missed=True),
        coverage_loss=result.coverage_loss(),
        latency_ms=result.mean_slowest_latency(),
    )


def failover_point(
    scenario: Scenario,
    base: PipelineConfig,
    trained: TrainedModels,
    policy: str,
    heartbeat: int,
    outage_spec: str,
) -> FailoverPoint:
    """One scheduler-outage run of the failover sweeps."""
    cfg = PipelineConfig(
        **{**base.__dict__, "policy": policy, "faults": outage_spec,
           "failover_heartbeat_frames": heartbeat}
    )
    result = run_policy(scenario, policy, cfg, trained)

    def counter_sum(name: str) -> int:
        return int(sum(
            m["value"] for m in result.metrics
            if m["kind"] == "counter" and m["name"] == name
        ))

    recovery = next(
        (m for m in result.metrics
         if m["kind"] == "histogram"
         and m["name"] == "failover_recovery_ms"),
        None,
    )
    return FailoverPoint(
        policy=policy,
        heartbeat_frames=heartbeat,
        recall=result.object_recall(),
        takeovers=counter_sum("failover_takeovers_total"),
        skipped_key_frames=counter_sum("skipped_key_frames_total"),
        scheduler_down_frames=counter_sum("scheduler_down_frames_total"),
        mean_recovery_ms=(
            0.0 if recovery is None else float(recovery["mean"])
        ),
    )


def fault_tolerance_study(
    scenario_name: str = "S1",
    crash_rates: Tuple[float, ...] = (0.0, 0.01, 0.03),
    loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.3),
    policies: Tuple[str, ...] = ("balb", "sp", "balb-ind"),
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
    seed: int = 0,
    scheduler_policies: Tuple[str, ...] = ("balb", "sp"),
    heartbeats: Tuple[int, ...] = (2, 5, 10),
) -> FaultToleranceStudy:
    """Run the two fault sweeps with shared trained models."""
    scenario = get_scenario(scenario_name, seed=seed)
    base = config or default_fault_config(seed)
    if trained is None:
        trained = train_models(scenario, base)

    outage = outage_spec_for(base)
    scheduler_sweep = tuple(
        failover_point(scenario, base, trained, policy, base.horizon, outage)
        for policy in scheduler_policies
    )
    heartbeat_sweep = tuple(
        failover_point(scenario, base, trained, "balb", hb, outage)
        for hb in heartbeats
    )

    crash_sweep = tuple(
        degradation_point(scenario, base, trained, policy, crash, 0.0)
        for policy in policies
        for crash in crash_rates
    )
    loss_sweep = tuple(
        degradation_point(scenario, base, trained, "balb", 0.0, loss)
        for loss in loss_rates
    )
    return FaultToleranceStudy(
        scenario=scenario_name,
        crash_sweep=crash_sweep,
        loss_sweep=loss_sweep,
        scheduler_sweep=scheduler_sweep,
        heartbeat_sweep=heartbeat_sweep,
    )


def run_fault_tolerance(seed: int = 0) -> str:
    """The FAULTS experiment as a text report."""
    return format_fault_tolerance(fault_tolerance_study(seed=seed))


def format_fault_tolerance(
    study: FaultToleranceStudy,
    drop_policies: Tuple[str, ...] = ("balb", "sp", "balb-ind"),
) -> str:
    """Render a study as the FAULTS report section."""
    crash_table = format_table(
        ["policy", "crash rate", "recall", "naive recall", "coverage loss",
         "slowest-cam ms"],
        [
            (p.policy, p.crash_rate, round(p.recall, 3),
             round(p.naive_recall, 3), round(p.coverage_loss, 3),
             round(p.latency_ms, 1))
            for p in study.crash_sweep
        ],
        title=f"FAULTS ({study.scenario}): camera-failure sweep",
    )
    loss_table = format_table(
        ["policy", "loss prob", "recall", "slowest-cam ms"],
        [
            (p.policy, p.loss_rate, round(p.recall, 3),
             round(p.latency_ms, 1))
            for p in study.loss_sweep
        ],
        title=f"FAULTS ({study.scenario}): link-loss sweep (balb)",
    )
    scheduler_table = format_table(
        ["policy", "recall", "takeovers", "skipped keys", "down frames",
         "mean recovery ms"],
        [
            (p.policy, round(p.recall, 3), p.takeovers,
             p.skipped_key_frames, p.scheduler_down_frames,
             round(p.mean_recovery_ms, 1))
            for p in study.scheduler_sweep
        ],
        title=f"FAULTS ({study.scenario}): scheduler-kill sweep "
              "(warm-standby failover)",
    )
    heartbeat_table = format_table(
        ["heartbeat frames", "recall", "skipped keys", "mean recovery ms"],
        [
            (p.heartbeat_frames, round(p.recall, 3),
             p.skipped_key_frames, round(p.mean_recovery_ms, 1))
            for p in study.heartbeat_sweep
        ],
        title=f"FAULTS ({study.scenario}): recovery time vs heartbeat "
              "interval (balb)",
    )
    drops = ", ".join(
        f"{policy}={study.worst_recall_drop(policy):+.3f}"
        for policy in drop_policies
    )
    return "\n\n".join(
        [crash_table, loss_table, scheduler_table, heartbeat_table,
         f"effective-recall drop at the harshest crash rate: {drops}"]
    )
