"""Run every experiment and emit a single report.

``python -m repro.experiments.runner`` regenerates all of the paper's
figures/tables (plus the ablations) as text and prints them; pass a path
to also write the report to a file.

The heavy lifting lives in :mod:`repro.experiments.parallel`: each
section is registered there with a serial body, a parallel job split and
a deterministic merge. ``run_all(workers=1)`` walks the serial bodies in
order — the historical bit-exact path — while ``workers > 1`` fans the
job grids out over a process pool and merges, producing a byte-identical
report. Either path can run against a content-addressed
:class:`~repro.cache.ArtifactCache` so repeated reports skip model
training entirely.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import List, Optional, Sequence, Union

from repro.cache import ArtifactCache, default_cache_root, use_cache
from repro.experiments.fig2_workload import run_figure2_text
from repro.experiments.parallel import (
    FULL_PROFILE,
    SECTION_ORDER,
    SECTIONS,
    ReportProfile,
    run_report_sections,
)
from repro.obs import MetricsRegistry, format_metrics_table

__all__ = ["run_all", "run_figure2_text", "main"]


def _fmt_elapsed(seconds: float) -> str:
    """Adaptive wall-clock format: ms below 0.1 s, seconds above."""
    if seconds < 0.1:
        return f"{seconds * 1e3:.0f}ms"
    return f"{seconds:.1f}s"


def _resolve_cache(
    cache: Union[None, str, ArtifactCache],
    workers: int,
    registry: MetricsRegistry,
) -> Optional[ArtifactCache]:
    if isinstance(cache, ArtifactCache):
        return cache
    if isinstance(cache, str):
        return ArtifactCache(cache, registry=registry)
    if workers > 1:
        # Parallel workers rely on the shared cache to dedupe training.
        return ArtifactCache(default_cache_root(), registry=registry)
    return None


def run_all(
    seed: int = 0,
    out_path: Optional[str] = None,
    *,
    workers: int = 1,
    cache: Union[None, str, ArtifactCache] = None,
    profile: Optional[ReportProfile] = None,
    sections: Optional[Sequence[str]] = None,
    timings: bool = True,
) -> str:
    """Run every experiment; returns (and optionally writes) the report.

    ``workers=1`` executes sections serially in-process (the historical
    path); ``workers > 1`` fans each section's job grid out over a
    spawn-context process pool — the merged report is byte-identical.
    ``cache`` (a root path or an :class:`ArtifactCache`) enables the
    content-addressed artifact cache; parallel runs always use one so
    model training is deduplicated across workers. ``sections`` selects
    a subset of report sections by name; ``timings=False`` omits the
    nondeterministic wall-clock figures, leaving pure experiment bytes.

    Section wall-clock times are collected in a
    :class:`~repro.obs.registry.MetricsRegistry` and appended as a final
    TIMINGS section, so a slow harness shows up in the report itself.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    profile = profile if profile is not None else FULL_PROFILE
    selected = list(sections) if sections is not None else list(SECTION_ORDER)
    unknown = [name for name in selected if name not in SECTIONS]
    if unknown:
        raise ValueError(f"unknown report sections: {unknown}")

    registry = MetricsRegistry()
    cache_obj = _resolve_cache(cache, workers, registry)

    bodies = {}
    elapsed_by = {}
    if workers == 1:
        scope = use_cache(cache_obj) if cache_obj else contextlib.nullcontext()
        with scope:
            for name in selected:
                start = time.perf_counter()
                bodies[name] = SECTIONS[name].serial(seed, profile)
                elapsed_by[name] = time.perf_counter() - start
    else:
        assert cache_obj is not None
        merged = run_report_sections(
            selected, seed, profile=profile, workers=workers,
            cache_root=cache_obj.root,
        )
        bodies = merged.bodies
        elapsed_by = merged.elapsed_s
        # Fold worker-side cache traffic into the caller-visible cache
        # and registry (worker processes have their own instances).
        cache_obj.hits += merged.cache_hits
        cache_obj.misses += merged.cache_misses
        if merged.cache_hits:
            registry.counter("cache_hits_total").inc(merged.cache_hits)
        if merged.cache_misses:
            registry.counter("cache_misses_total").inc(merged.cache_misses)
        registry.gauge("experiment_wall_s", section="WARMUP").set(
            merged.warm_elapsed_s
        )

    report_sections: List[str] = []
    for name in selected:
        elapsed = elapsed_by[name]
        registry.gauge("experiment_wall_s", section=name).set(elapsed)
        registry.counter("experiments_total").inc()
        if timings:
            header = f"== {name} ({_fmt_elapsed(elapsed)}) =="
        else:
            header = f"== {name} =="
        report_sections.append(f"{header}\n{bodies[name]}")
    if timings:
        report_sections.append(
            "== TIMINGS ==\n"
            + format_metrics_table(registry, title="harness wall-clock")
        )
    report = "\n\n".join(report_sections)
    if out_path:
        with open(out_path, "w") as f:
            f.write(report + "\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """Module entry point: run all experiments, optionally write a file."""
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else None
    print(run_all(out_path=out_path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
