"""Run every experiment and emit a single report.

``python -m repro.experiments.runner`` regenerates all of the paper's
figures/tables (plus the ablations) as text and prints them; pass a path
to also write the report to a file.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from repro.experiments.ablations import run_ablations
from repro.experiments.extensions import run_extensions
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.fig10_classification import run_figure10
from repro.experiments.fig11_regression import run_figure11
from repro.experiments.fig12_recall import run_figure12
from repro.experiments.fig13_latency import run_figure13
from repro.experiments.fig14_horizon import run_figure14
from repro.experiments.fig2_workload import workload_trace
from repro.experiments.report import format_table
from repro.experiments.table2_overhead import run_table2
from repro.obs import MetricsRegistry, format_metrics_table


def run_figure2_text(seed: int = 0) -> str:
    """Figure 2 as a text table (workload variability summary)."""
    trace = workload_trace(seed=seed)
    means = trace.mean_per_camera()
    stds = trace.std_per_camera()
    cvs = trace.coefficient_of_variation()
    return format_table(
        ["camera", "mean objects", "std", "coeff. of variation"],
        [
            (cam, round(means[cam], 1), round(stds[cam], 1), cvs[cam])
            for cam in sorted(means)
        ],
        title="Figure 2: per-camera workload variability (S1)",
    )


def run_all(seed: int = 0, out_path: Optional[str] = None) -> str:
    """Run every experiment; returns (and optionally writes) the report.

    Section wall-clock times are collected in a
    :class:`~repro.obs.registry.MetricsRegistry` and appended as a final
    TIMINGS section, so a slow harness shows up in the report itself.
    """
    registry = MetricsRegistry()
    sections: List[str] = []
    for name, fn in [
        ("FIG2", lambda: run_figure2_text(seed)),
        ("FIG10", lambda: run_figure10(seed=seed)),
        ("FIG11", lambda: run_figure11(seed=seed)),
        ("FIG12", lambda: run_figure12(seed=seed)),
        ("FIG13", lambda: run_figure13(seed=seed)),
        ("FIG14", lambda: run_figure14(seed=seed)),
        ("TAB2", lambda: run_table2(seed=seed)),
        ("ABLATIONS", lambda: run_ablations(seed=seed)),
        ("EXTENSIONS", lambda: run_extensions(seed=seed)),
        ("FAULTS", lambda: run_fault_tolerance(seed=seed)),
    ]:
        start = time.perf_counter()
        body = fn()
        elapsed = time.perf_counter() - start
        registry.gauge("experiment_wall_s", section=name).set(elapsed)
        registry.counter("experiments_total").inc()
        sections.append(f"== {name} ({elapsed:.1f}s) ==\n{body}")
    sections.append(
        "== TIMINGS ==\n"
        + format_metrics_table(registry, title="harness wall-clock")
    )
    report = "\n\n".join(sections)
    if out_path:
        with open(out_path, "w") as f:
            f.write(report + "\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """Module entry point: run all experiments, optionally write a file."""
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else None
    print(run_all(out_path=out_path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
