"""Table II: breakdown of per-frame latency overhead.

Per scenario, runs the full BALB pipeline and reports the mean per-frame
overhead of each framework component: central stage (association + central
BALB + scheduler communication, amortized over the horizon), optical-flow
tracking, the distributed BALB stage, and GPU batching. Per the paper's
protocol, each component's per-frame value is the maximum across cameras,
then averaged over frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario


@dataclass
class OverheadRow:
    scenario: str
    central_ms: float
    tracking_ms: float
    distributed_ms: float
    batching_ms: float
    #: Observed wall-clock per frame by stage (only for traced runs).
    measured_ms: Optional[Dict[str, float]] = None

    @property
    def total_ms(self) -> float:
        return (
            self.central_ms
            + self.tracking_ms
            + self.distributed_ms
            + self.batching_ms
        )


def measure_overheads(
    scenario_name: str,
    config: Optional[PipelineConfig] = None,
    seed: int = 0,
    traced: bool = False,
) -> OverheadRow:
    """Run BALB on one scenario and extract the Table II row.

    With ``traced`` the run collects a span trace, and the row carries the
    *measured* per-frame wall-clock breakdown next to the modeled one.
    """
    scenario = get_scenario(scenario_name, seed=seed)
    config = config or PipelineConfig(
        policy="balb", n_horizons=30, train_duration_s=120.0, warmup_s=30.0,
        seed=seed,
    )
    if traced and not config.trace:
        config = PipelineConfig(**{**config.__dict__, "trace": True})
    trained = train_models(scenario, config)
    result = run_policy(scenario, "balb", config, trained)
    breakdown = result.overhead_breakdown()
    return OverheadRow(
        scenario=scenario_name,
        central_ms=breakdown.get("central", 0.0),
        tracking_ms=breakdown.get("tracking", 0.0),
        distributed_ms=breakdown.get("distributed", 0.0),
        batching_ms=breakdown.get("batching", 0.0),
        measured_ms=result.measured_stage_breakdown() if traced else None,
    )


def run_table2(
    scenarios: Tuple[str, ...] = ("S1", "S2", "S3"),
    config: Optional[PipelineConfig] = None,
    seed: int = 0,
    traced: bool = False,
) -> str:
    """Regenerate Table II as a text table.

    ``traced`` appends a second table with the measured wall-clock
    per-frame stage times observed by the tracing subsystem, so modeled
    overheads can be sanity-checked against real Python runtime.
    """
    rows: List[OverheadRow] = [
        measure_overheads(name, config=config, seed=seed, traced=traced)
        for name in scenarios
    ]
    table = format_table(
        ["scenario", "central", "tracking", "distributed", "batching", "total"],
        [
            (
                r.scenario,
                round(r.central_ms, 2),
                round(r.tracking_ms, 2),
                round(r.distributed_ms, 2),
                round(r.batching_ms, 2),
                round(r.total_ms, 2),
            )
            for r in rows
        ],
        title="Table II: per-frame latency overhead breakdown (ms)",
    )
    if traced:
        table += "\n\n" + format_table(
            ["scenario", "central", "distributed", "frame"],
            [
                (
                    r.scenario,
                    round((r.measured_ms or {}).get("central", 0.0), 3),
                    round((r.measured_ms or {}).get("distributed", 0.0), 3),
                    round((r.measured_ms or {}).get("frame", 0.0), 3),
                )
                for r in rows
            ],
            title="Measured wall-clock per frame (ms, traced run)",
        )
    return table
