"""Figure 2: temporal variation of object workload across cameras.

The paper samples the number of objects in each of S1's five camera views
once every 2 seconds and shows (a) large absolute variation over time and
(b) shifting *relative* workload between camera pairs. This harness
regenerates those series from the simulated S1 world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.report import format_table
from repro.scenarios.aic21 import get_scenario
from repro.scenarios.builder import Scenario


@dataclass
class WorkloadTrace:
    """Objects-per-camera sampled over time."""

    scenario: str
    sample_times: List[float]
    counts: Dict[int, List[int]]  # camera id -> series

    def mean_per_camera(self) -> Dict[int, float]:
        """Mean visible-object count per camera over the trace."""
        return {cam: float(np.mean(series)) for cam, series in self.counts.items()}

    def std_per_camera(self) -> Dict[int, float]:
        """Standard deviation of the per-camera counts over the trace."""
        return {cam: float(np.std(series)) for cam, series in self.counts.items()}

    def coefficient_of_variation(self) -> Dict[int, float]:
        """Temporal variability per camera (std / mean)."""
        out = {}
        for cam, series in self.counts.items():
            mean = float(np.mean(series))
            out[cam] = float(np.std(series)) / mean if mean > 0 else 0.0
        return out

    def relative_workload_swings(self, cam_a: int, cam_b: int) -> float:
        """How often the heavier camera of a pair flips (fraction of samples)."""
        a = np.asarray(self.counts[cam_a])
        b = np.asarray(self.counts[cam_b])
        sign = np.sign(a - b)
        nonzero = sign[sign != 0]
        if len(nonzero) < 2:
            return 0.0
        flips = np.sum(nonzero[1:] != nonzero[:-1])
        return float(flips) / (len(nonzero) - 1)


def workload_trace(
    scenario: Scenario | None = None,
    duration_s: float = 120.0,
    sample_interval_s: float = 2.0,
    warmup_s: float = 30.0,
    seed: int = 0,
) -> WorkloadTrace:
    """Run the world and sample per-camera visible-object counts."""
    if scenario is None:
        scenario = get_scenario("S1", seed=seed)
    world, rig = scenario.build(seed=seed)
    dt = scenario.frame_interval
    world.run(warmup_s, dt)
    times: List[float] = []
    counts: Dict[int, List[int]] = {cam: [] for cam in rig.camera_ids}
    elapsed = 0.0
    while elapsed < duration_s:
        world.run(sample_interval_s, dt)
        elapsed += sample_interval_s
        snapshot = rig.visible_counts(world.objects)
        times.append(elapsed)
        for cam, n in snapshot.items():
            counts[cam].append(n)
    return WorkloadTrace(
        scenario=scenario.name, sample_times=times, counts=counts
    )


def run_figure2_text(
    seed: int = 0,
    duration_s: float = 120.0,
    warmup_s: float = 30.0,
) -> str:
    """Figure 2 as a text table (workload variability summary)."""
    trace = workload_trace(duration_s=duration_s, warmup_s=warmup_s, seed=seed)
    means = trace.mean_per_camera()
    stds = trace.std_per_camera()
    cvs = trace.coefficient_of_variation()
    return format_table(
        ["camera", "mean objects", "std", "coeff. of variation"],
        [
            (cam, round(means[cam], 1), round(stds[cam], 1), cvs[cam])
            for cam in sorted(means)
        ],
        title="Figure 2: per-camera workload variability (S1)",
    )
