"""Figure 14: impact of the scheduling horizon length.

Sweeps the horizon T (frames between key frames) and reports BALB's object
recall and slowest-camera latency at each T. The paper's shape: longer
horizons amortize the full-frame cost (latency falls) but drift/association
errors accumulate (recall falls); T = 10 is the knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.report import format_table
from repro.runtime.pipeline import (
    PipelineConfig,
    TrainedModels,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import get_scenario

DEFAULT_HORIZONS: Tuple[int, ...] = (2, 5, 10, 20, 30)


@dataclass
class HorizonRow:
    horizon: int
    recall: float
    slowest_camera_ms: float


def horizon_point(
    scenario_name: str,
    horizon: int,
    frames_per_point: int,
    trained: Optional[TrainedModels],
    seed: int,
    train_duration_s: float = 120.0,
    warmup_s: float = 30.0,
) -> HorizonRow:
    """Run BALB at one horizon length and report the Figure 14 row."""
    scenario = get_scenario(scenario_name, seed=seed)
    if trained is None:
        trained = train_models(
            scenario,
            PipelineConfig(
                policy="balb", train_duration_s=train_duration_s,
                warmup_s=warmup_s, seed=seed,
            ),
        )
    config = PipelineConfig(
        policy="balb",
        horizon=horizon,
        n_horizons=max(4, frames_per_point // horizon),
        train_duration_s=train_duration_s,
        warmup_s=warmup_s,
        seed=seed,
    )
    result = run_policy(scenario, "balb", config, trained)
    return HorizonRow(
        horizon=horizon,
        recall=result.object_recall(),
        slowest_camera_ms=result.mean_slowest_latency(),
    )


def sweep_horizons(
    scenario_name: str = "S1",
    horizons: Tuple[int, ...] = DEFAULT_HORIZONS,
    frames_per_point: int = 300,
    seed: int = 0,
    trained: Optional[TrainedModels] = None,
    train_duration_s: float = 120.0,
    warmup_s: float = 30.0,
) -> List[HorizonRow]:
    """Run BALB at each horizon length with shared trained models."""
    scenario = get_scenario(scenario_name, seed=seed)
    if trained is None:
        trained = train_models(
            scenario,
            PipelineConfig(
                policy="balb", train_duration_s=train_duration_s,
                warmup_s=warmup_s, seed=seed,
            ),
        )
    return [
        horizon_point(
            scenario_name, horizon, frames_per_point, trained, seed,
            train_duration_s=train_duration_s, warmup_s=warmup_s,
        )
        for horizon in horizons
    ]


def run_figure14(
    scenario_name: str = "S1",
    horizons: Tuple[int, ...] = DEFAULT_HORIZONS,
    seed: int = 0,
    frames_per_point: int = 300,
    train_duration_s: float = 120.0,
    warmup_s: float = 30.0,
) -> str:
    """Regenerate Figure 14 as a text table."""
    rows = sweep_horizons(
        scenario_name, horizons, frames_per_point=frames_per_point,
        seed=seed, train_duration_s=train_duration_s, warmup_s=warmup_s,
    )
    return format_table(
        ["horizon T", "object recall", "slowest-cam ms"],
        [(r.horizon, r.recall, round(r.slowest_camera_ms, 1)) for r in rows],
        title=f"Figure 14: scheduling horizon sweep on {scenario_name}",
    )
