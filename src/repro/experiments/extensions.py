"""Extension experiments (paper Section V, implemented end to end).

* **EXT-OCC** — occlusion-aware redundancy: with inter-object occlusion
  enabled, compare BALB with k=1 vs k=2 cameras per object on the busy S3
  scenario. Expectation: redundancy recovers recall lost to occlusion at a
  bounded latency cost.
* **EXT-BW** — centralized processing: the bandwidth saved by uploading
  the minimum view cover rather than every stream.
* **EXT-EN** — energy-aware scheduling: fleet energy of the min-energy
  assignment under a real-time deadline vs plain BALB.
* **EXT-SYNC** — imperfect synchronization: recall degradation as the
  per-camera processing lag grows (the handover anomaly the paper
  describes in its limitations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.balb import balb_central
from repro.core.bandwidth import (
    all_cameras_upload_mbps,
    upload_plan_for_instance,
)
from repro.core.energy import (
    assignment_energy_mj,
    energy_aware_assignment,
)
from repro.core.problem import system_latency
from repro.experiments.ablations import jetson_fleet_profiles, random_instance
from repro.experiments.report import format_table
from repro.runtime.pipeline import (
    PipelineConfig,
    TrainedModels,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import get_scenario
from repro.scenarios.builder import Scenario


# ----------------------------------------------------------------------
# EXT-OCC: occlusion + redundancy
# ----------------------------------------------------------------------
@dataclass
class OcclusionStudy:
    scenario: str
    recall_k1: float
    recall_k2: float
    latency_k1: float
    latency_k2: float

    @property
    def recall_gain(self) -> float:
        return self.recall_k2 - self.recall_k1

    @property
    def latency_cost(self) -> float:
        if self.latency_k1 <= 0:
            raise ValueError("non-positive latency")
        return self.latency_k2 / self.latency_k1


def default_occlusion_config(seed: int = 0) -> PipelineConfig:
    """The base run config of the EXT-OCC study."""
    return PipelineConfig(
        policy="balb", n_horizons=25, warmup_s=30.0, train_duration_s=120.0,
        seed=seed,
    )


def occlusion_point(
    scenario: Scenario,
    base: PipelineConfig,
    trained: TrainedModels,
    k: int,
) -> Tuple[float, float]:
    """One redundancy level under occlusion: (recall, slowest-cam ms)."""
    cfg = PipelineConfig(
        **{**base.__dict__, "policy": "balb", "occlusion": True,
           "redundancy": k}
    )
    result = run_policy(scenario, "balb", cfg, trained)
    return result.object_recall(), result.mean_slowest_latency()


def occlusion_redundancy_study(
    scenario_name: str = "S3",
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
    seed: int = 0,
) -> OcclusionStudy:
    """Run BALB with k=1 and k=2 under occlusion on one scenario."""
    scenario = get_scenario(scenario_name, seed=seed)
    base = config or default_occlusion_config(seed)
    if trained is None:
        trained = train_models(scenario, base)
    points: Dict[int, Tuple[float, float]] = {
        k: occlusion_point(scenario, base, trained, k) for k in (1, 2)
    }
    return OcclusionStudy(
        scenario=scenario_name,
        recall_k1=points[1][0],
        recall_k2=points[2][0],
        latency_k1=points[1][1],
        latency_k2=points[2][1],
    )


# ----------------------------------------------------------------------
# EXT-BW: bandwidth-minimizing view cover
# ----------------------------------------------------------------------
@dataclass
class BandwidthStudy:
    mean_cover_mbps: float
    all_streams_mbps: float
    mean_cameras_selected: float
    n_cameras: int

    @property
    def savings_fraction(self) -> float:
        if self.all_streams_mbps <= 0:
            raise ValueError("non-positive stream bandwidth")
        return 1.0 - self.mean_cover_mbps / self.all_streams_mbps


def bandwidth_study(
    n_trials: int = 25, n_objects: int = 15, seed: int = 0
) -> BandwidthStudy:
    """Min view cover vs streaming every camera, on random instances."""
    profiles = jetson_fleet_profiles(seed)
    frame_sizes = {cam: (1280, 704) for cam in profiles}
    rng = np.random.default_rng(seed)
    cover_rates, cover_counts = [], []
    for _ in range(n_trials):
        instance = random_instance(profiles, n_objects, rng)
        plan = upload_plan_for_instance(instance, frame_sizes)
        cover_rates.append(plan.total_upload_mbps)
        cover_counts.append(plan.n_cameras)
    return BandwidthStudy(
        mean_cover_mbps=float(np.mean(cover_rates)),
        all_streams_mbps=all_cameras_upload_mbps(frame_sizes),
        mean_cameras_selected=float(np.mean(cover_counts)),
        n_cameras=len(profiles),
    )


# ----------------------------------------------------------------------
# EXT-EN: energy-aware assignment
# ----------------------------------------------------------------------
@dataclass
class EnergyStudy:
    mean_energy_balb_mj: float
    mean_energy_aware_mj: float
    mean_latency_balb: float
    mean_latency_aware: float
    deadline_ms: float

    @property
    def energy_savings_fraction(self) -> float:
        if self.mean_energy_balb_mj <= 0:
            raise ValueError("non-positive energy")
        return 1.0 - self.mean_energy_aware_mj / self.mean_energy_balb_mj


def energy_study(
    n_trials: int = 25,
    n_objects: int = 20,
    deadline_ms: float = 100.0,
    seed: int = 0,
) -> EnergyStudy:
    """Energy-aware vs latency-only assignment on random instances."""
    profiles = jetson_fleet_profiles(seed)
    rng = np.random.default_rng(seed + 1)
    e_balb, e_aware, l_balb, l_aware = [], [], [], []
    for _ in range(n_trials):
        instance = random_instance(profiles, n_objects, rng)
        balb = balb_central(instance, include_full_frame=False)
        aware = energy_aware_assignment(instance, deadline_ms)
        e_balb.append(assignment_energy_mj(instance, balb.assignment))
        e_aware.append(assignment_energy_mj(instance, aware))
        l_balb.append(system_latency(instance, balb.assignment))
        l_aware.append(system_latency(instance, aware))
    return EnergyStudy(
        mean_energy_balb_mj=float(np.mean(e_balb)),
        mean_energy_aware_mj=float(np.mean(e_aware)),
        mean_latency_balb=float(np.mean(l_balb)),
        mean_latency_aware=float(np.mean(l_aware)),
        deadline_ms=deadline_ms,
    )


# ----------------------------------------------------------------------
# EXT-SYNC: imperfect synchronization
# ----------------------------------------------------------------------
@dataclass
class SynchronizationStudy:
    scenario: str
    lags: Tuple[int, ...]
    recalls: Tuple[float, ...]
    latencies: Tuple[float, ...]

    @property
    def recall_drop(self) -> float:
        """Recall lost between perfect sync and the worst lag."""
        return self.recalls[0] - self.recalls[-1]


def default_sync_config(seed: int = 0) -> PipelineConfig:
    """The base run config of the EXT-SYNC study."""
    return PipelineConfig(
        policy="balb", n_horizons=20, warmup_s=30.0, train_duration_s=120.0,
        seed=seed,
    )


def synchronization_point(
    scenario: Scenario,
    base: PipelineConfig,
    trained: TrainedModels,
    lag: int,
) -> Tuple[float, float]:
    """One camera-skew level: (recall, slowest-cam ms)."""
    cfg = PipelineConfig(
        **{**base.__dict__, "policy": "balb", "max_camera_lag_frames": lag}
    )
    result = run_policy(scenario, "balb", cfg, trained)
    return result.object_recall(), result.mean_slowest_latency()


def synchronization_study(
    scenario_name: str = "S3",
    lags: Tuple[int, ...] = (0, 2, 5),
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
    seed: int = 0,
) -> SynchronizationStudy:
    """Run BALB at increasing camera skew on one scenario."""
    scenario = get_scenario(scenario_name, seed=seed)
    base = config or default_sync_config(seed)
    if trained is None:
        trained = train_models(scenario, base)
    points = [synchronization_point(scenario, base, trained, lag)
              for lag in lags]
    return SynchronizationStudy(
        scenario=scenario_name,
        lags=tuple(lags),
        recalls=tuple(p[0] for p in points),
        latencies=tuple(p[1] for p in points),
    )


def run_extensions(seed: int = 0) -> str:
    """All Section V extension studies as a text report."""
    occ = occlusion_redundancy_study(seed=seed)
    bw = bandwidth_study(seed=seed)
    en = energy_study(seed=seed)
    sync = synchronization_study(seed=seed)
    return format_extensions(occ, bw, en, sync)


def format_extensions(
    occ: OcclusionStudy,
    bw: BandwidthStudy,
    en: EnergyStudy,
    sync: SynchronizationStudy,
) -> str:
    """Render the four extension studies as the EXTENSIONS section."""
    occ_table = format_table(
        ["k", "recall", "slowest-cam ms"],
        [
            (1, occ.recall_k1, round(occ.latency_k1, 1)),
            (2, occ.recall_k2, round(occ.latency_k2, 1)),
        ],
        title=f"EXT-OCC ({occ.scenario}, occlusion on): redundancy k=1 vs k=2",
    )
    return "\n\n".join(
        [
            occ_table,
            (
                "EXT-BW: min view cover uses "
                f"{bw.mean_cameras_selected:.1f}/{bw.n_cameras} cameras, "
                f"{bw.mean_cover_mbps:.1f} vs {bw.all_streams_mbps:.1f} Mbps "
                f"({bw.savings_fraction:.0%} saved)"
            ),
            (
                f"EXT-EN (deadline {en.deadline_ms:.0f} ms): energy "
                f"{en.mean_energy_aware_mj:.0f} vs {en.mean_energy_balb_mj:.0f} mJ "
                f"({en.energy_savings_fraction:.0%} saved) at latency "
                f"{en.mean_latency_aware:.1f} vs {en.mean_latency_balb:.1f} ms"
            ),
            format_table(
                ["max lag (frames)", "recall", "slowest-cam ms"],
                [
                    (lag, recall, round(latency, 1))
                    for lag, recall, latency in zip(
                        sync.lags, sync.recalls, sync.latencies
                    )
                ],
                title=f"EXT-SYNC ({sync.scenario}): camera skew sweep",
            ),
        ]
    )
