"""Chaos soak: seeded fault episodes under the invariant monitor.

``repro soak`` runs N short chaos **episodes** — each a full pipeline
run on a small scenario with a freshly compiled stochastic fault
schedule — with the always-on
:class:`repro.runtime.invariants.InvariantMonitor` armed. An episode
fails when the monitor raises; the harness then *shrinks* the episode's
fault schedule with a bounded delta-debugging loop (ddmin-lite) to the
smallest event subset that still reproduces a violation, and prints it
so the failure is directly replayable as a scripted ``--faults`` run.

Determinism contract: the report bytes depend only on
``(episodes, seed, fencing, preset)``. There is no wall clock and no
ordering hazard anywhere in the harness, so CI runs the same soak twice
and compares output files byte-for-byte — any drift is a determinism
regression in the runtime itself, which is exactly what the gate is for.

The per-episode fault schedules are compiled from the preset's
:class:`~repro.faults.model.FaultModel` with a derived seed
(``base * 7919 + 13 * i``, shifted by the pipeline's usual ``31_337``
fault-stream offset), while the simulation seed stays fixed — episodes
share one trained model set and differ only in the faults thrown at
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.faults.model import FaultModel
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.faults.spec import CHAOS_PRESETS
from repro.runtime.invariants import InvariantViolation
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

#: The pipeline compiles fault models at ``config.seed + 31_337`` so the
#: fault stream never collides with the simulation RNGs; the soak
#: harness compiles its own schedules and mirrors the same offset.
_FAULT_SEED_OFFSET = 31_337

#: ddmin-lite run budget per violating episode. Shrinking re-runs the
#: pipeline once per candidate subset, so the budget bounds soak time.
DEFAULT_SHRINK_BUDGET = 24


def _episode_seed(base_seed: int, index: int) -> int:
    """Derived fault seed for episode ``index`` (decorrelated, stable)."""
    return base_seed * 7919 + 13 * index


@dataclass(frozen=True)
class EpisodeOutcome:
    """One soak episode: its fault draw and what the monitor said."""

    index: int
    fault_seed: int
    n_events: int
    #: First line of the invariant violation, or ``None`` when clean.
    violation: Optional[str] = None
    #: Minimal violating event subset found by shrinking (empty = clean).
    shrunk_events: Tuple[FaultEvent, ...] = ()
    #: Pipeline re-runs the shrinking loop spent.
    shrink_runs: int = 0
    #: Fleet-health lifecycle counts (sensor-fault presets only).
    quarantines: int = 0
    readmissions: int = 0

    @property
    def passed(self) -> bool:
        return self.violation is None


@dataclass(frozen=True)
class SoakResult:
    """The full soak verdict, formatted by :func:`format_soak_report`."""

    scenario: str
    preset: str
    policy: str
    n_frames: int
    base_seed: int
    fencing: bool
    episodes: Tuple[EpisodeOutcome, ...] = field(default_factory=tuple)
    #: The preset carries degraded-sensor faults, so the report includes
    #: the fleet-health lifecycle columns.
    sensor_faults: bool = False

    @property
    def n_passed(self) -> int:
        return sum(1 for e in self.episodes if e.passed)

    @property
    def ok(self) -> bool:
        return self.n_passed == len(self.episodes)


def _soak_config(
    seed: int, faults: Optional[FaultSchedule], fencing: bool
) -> PipelineConfig:
    """The small, fast episode config (30 frames on scenario S1)."""
    return PipelineConfig(
        policy="balb",
        horizon=5,
        n_horizons=6,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=seed,
        faults=faults,
        epoch_fencing=fencing,
    )


def _run_episode(
    scenario, trained, base_seed: int, schedule: FaultSchedule, fencing: bool
) -> Tuple[Optional[str], int, int]:
    """Run one episode.

    Returns ``(violation, quarantines, readmissions)``: the first
    violation line (or ``None`` if clean) and the fleet-health lifecycle
    counts the episode racked up (0 on a violating run — it aborted).
    """
    config = _soak_config(base_seed, schedule, fencing)
    try:
        result = run_policy(scenario, config.policy, config, trained)
    except InvariantViolation as exc:
        return str(exc).splitlines()[0], 0, 0

    def counter_sum(name: str) -> int:
        return int(sum(
            m["value"] for m in result.metrics
            if m["kind"] == "counter" and m["name"] == name
        ))

    return (
        None,
        counter_sum("health_quarantines_total"),
        counter_sum("health_readmissions_total"),
    )


def _shrink(
    events: Sequence[FaultEvent],
    violates: Callable[[Sequence[FaultEvent]], bool],
    budget: int,
) -> Tuple[Tuple[FaultEvent, ...], int]:
    """ddmin-lite: smallest violating subset within a run ``budget``.

    Classic delta debugging over the event list: try dropping
    progressively smaller chunks, restarting whenever a drop still
    violates. Each candidate costs one pipeline run, so the loop is
    bounded by ``budget`` and returns the best subset found so far when
    the budget runs out.
    """
    current: List[FaultEvent] = list(events)
    runs = 0
    granularity = 2
    while len(current) > 1 and granularity <= len(current):
        chunk = -(-len(current) // granularity)  # ceil division
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if not candidate or runs >= budget:
                continue
            runs += 1
            if violates(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1 or runs >= budget:
                break
            granularity = min(granularity * 2, len(current))
    return tuple(current), runs


def run_soak(
    episodes: int = 20,
    seed: int = 0,
    fencing: bool = True,
    preset: str = "wire",
    scenario_name: str = "S1",
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
) -> SoakResult:
    """Run the chaos soak and return its deterministic verdict."""
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    if preset not in CHAOS_PRESETS:
        raise ValueError(
            f"unknown chaos preset {preset!r}; options: "
            f"{', '.join(sorted(CHAOS_PRESETS))}"
        )
    model: FaultModel = CHAOS_PRESETS[preset]
    sensor_faults = bool(
        model.freeze_rate
        or model.clock_drift_rate
        or model.flap_rate
        or model.fade_rate
    )
    scenario = get_scenario(scenario_name, seed=seed)
    camera_ids = [cam.camera_id for cam in scenario.cameras]
    config = _soak_config(seed, None, fencing)
    n_frames = config.horizon * config.n_horizons
    trained = train_models(scenario, config)

    outcomes: List[EpisodeOutcome] = []
    for i in range(episodes):
        fault_seed = _episode_seed(seed, i)
        schedule = model.compile(
            camera_ids, n_frames, fault_seed + _FAULT_SEED_OFFSET
        )
        violation, quarantines, readmissions = _run_episode(
            scenario, trained, seed, schedule, fencing
        )
        if violation is None:
            outcomes.append(
                EpisodeOutcome(
                    i,
                    fault_seed,
                    len(schedule.events),
                    quarantines=quarantines,
                    readmissions=readmissions,
                )
            )
            continue

        def _violates(subset: Sequence[FaultEvent]) -> bool:
            sub_schedule = FaultSchedule(tuple(subset))
            return (
                _run_episode(scenario, trained, seed, sub_schedule, fencing)[0]
                is not None
            )

        shrunk, runs = _shrink(schedule.events, _violates, shrink_budget)
        outcomes.append(
            EpisodeOutcome(
                i,
                fault_seed,
                len(schedule.events),
                violation=violation,
                shrunk_events=shrunk,
                shrink_runs=runs,
            )
        )
    return SoakResult(
        scenario=scenario_name,
        preset=preset,
        policy=config.policy,
        n_frames=n_frames,
        base_seed=seed,
        fencing=fencing,
        episodes=tuple(outcomes),
        sensor_faults=sensor_faults,
    )


def _format_event(event: FaultEvent) -> str:
    parts = [event.kind.value]
    if event.camera_id is not None:
        parts.append(f"cam={event.camera_id}")
    parts.append(f"at={event.start_frame}")
    if event.duration is not None:
        parts.append(f"for={event.duration}")
    if event.magnitude:
        parts.append(f"mag={event.magnitude:g}")
    return " ".join(parts)


def format_soak_report(result: SoakResult) -> str:
    """Render the soak verdict as deterministic plain text."""
    lines = [
        "SOAK -- chaos soak invariant harness",
        (
            f"scenario {result.scenario} | preset {result.preset} | "
            f"policy {result.policy} | frames {result.n_frames}"
        ),
        (
            f"episodes {len(result.episodes)} | base seed "
            f"{result.base_seed} | fencing "
            f"{'on' if result.fencing else 'off'}"
        ),
        "",
    ]
    if result.sensor_faults:
        lines.append(
            f"{'episode':>7}  {'fault-seed':>10}  {'events':>6}  "
            f"{'quar':>4}  {'readm':>5}  verdict"
        )
        for ep in result.episodes:
            verdict = "ok" if ep.passed else "VIOLATION"
            lines.append(
                f"{ep.index:>7}  {ep.fault_seed:>10}  {ep.n_events:>6}  "
                f"{ep.quarantines:>4}  {ep.readmissions:>5}  {verdict}"
            )
    else:
        lines.append(
            f"{'episode':>7}  {'fault-seed':>10}  {'events':>6}  verdict"
        )
        for ep in result.episodes:
            verdict = "ok" if ep.passed else "VIOLATION"
            lines.append(
                f"{ep.index:>7}  {ep.fault_seed:>10}  {ep.n_events:>6}  "
                f"{verdict}"
            )
    for ep in result.episodes:
        if ep.passed:
            continue
        lines += ["", f"episode {ep.index} violation: {ep.violation}"]
        lines.append(
            f"  shrunk schedule ({len(ep.shrunk_events)}/{ep.n_events} "
            f"events, {ep.shrink_runs} shrink runs):"
        )
        lines += [f"    {_format_event(e)}" for e in ep.shrunk_events]
    lines.append("")
    if result.sensor_faults:
        lines.append(
            "fleet lifecycle: "
            f"{sum(e.quarantines for e in result.episodes)} quarantines, "
            f"{sum(e.readmissions for e in result.episodes)} readmissions"
        )
    lines += [
        f"episodes passed: {result.n_passed}/{len(result.episodes)}",
        f"verdict: {'PASS' if result.ok else 'FAIL'}",
    ]
    return "\n".join(lines) + "\n"
