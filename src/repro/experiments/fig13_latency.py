"""Figure 13: per-frame inference latency and the headline speedups.

Compares the Figure 13 metric — the per-horizon slowest-camera mean
inference time — across Full / BALB-Ind / SP / BALB, and derives the
paper's headline numbers: multiplicative BALB-vs-Full speedups (paper:
6.85x / 6.18x / 2.45x on S1 / S2 / S3) and the BALB-vs-SP advantage
(paper mean 1.88x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.fig12_recall import run_policies
from repro.experiments.report import format_table
from repro.runtime.metrics import RunResult, speedup_vs
from repro.runtime.pipeline import PipelineConfig

LATENCY_POLICIES: Tuple[str, ...] = ("full", "balb-ind", "sp", "balb")


@dataclass
class LatencyRow:
    scenario: str
    policy: str
    slowest_camera_ms: float
    speedup_vs_full: float


@dataclass
class SpeedupSummary:
    scenario: str
    balb_vs_full: float
    balb_vs_ind: float
    balb_vs_sp: float


def latency_rows(runs: Dict[str, RunResult]) -> List[LatencyRow]:
    """Figure 13 rows (policy, slowest-camera ms, speedup) from runs."""
    full = runs["full"]
    rows = []
    for policy, result in runs.items():
        rows.append(
            LatencyRow(
                scenario=result.scenario,
                policy=policy,
                slowest_camera_ms=result.mean_slowest_latency(),
                speedup_vs_full=speedup_vs(full, result),
            )
        )
    return rows


def speedup_summary(runs: Dict[str, RunResult]) -> SpeedupSummary:
    """The headline BALB-vs-{Full, Ind, SP} speedups of one scenario."""
    return SpeedupSummary(
        scenario=runs["balb"].scenario,
        balb_vs_full=speedup_vs(runs["full"], runs["balb"]),
        balb_vs_ind=speedup_vs(runs["balb-ind"], runs["balb"]),
        balb_vs_sp=speedup_vs(runs["sp"], runs["balb"]),
    )


def run_figure13(
    scenarios: Tuple[str, ...] = ("S1", "S2", "S3"),
    config: Optional[PipelineConfig] = None,
    seed: int = 0,
    traced: bool = False,
) -> str:
    """Regenerate Figure 13 (+ headline speedups) as text tables.

    ``traced`` runs every policy with span tracing enabled and adds a
    *measured wall ms* column — observed Python wall-clock per frame —
    next to the modeled inference latency.
    """
    all_rows: List[LatencyRow] = []
    summaries: List[SpeedupSummary] = []
    measured: Dict[Tuple[str, str], float] = {}
    if traced:
        # Mirror run_policies' default config, with tracing switched on.
        base = config or PipelineConfig(
            policy="balb", n_horizons=40, train_duration_s=120.0,
            warmup_s=30.0, seed=seed,
        )
        config = PipelineConfig(**{**base.__dict__, "trace": True})
    for name in scenarios:
        runs = run_policies(name, policies=LATENCY_POLICIES, config=config, seed=seed)
        all_rows.extend(latency_rows(runs))
        summaries.append(speedup_summary(runs))
        if traced:
            for policy, result in runs.items():
                stage = result.measured_stage_breakdown()
                measured[(name, policy)] = stage.get("frame", 0.0)
    headers = ["scenario", "policy", "slowest-cam ms", "speedup vs full"]
    if traced:
        headers.append("measured wall ms")
    table1 = format_table(
        headers,
        [
            (r.scenario, r.policy, round(r.slowest_camera_ms, 1), r.speedup_vs_full)
            + (
                (round(measured.get((r.scenario, r.policy), 0.0), 3),)
                if traced
                else ()
            )
            for r in all_rows
        ],
        title="Figure 13: per-frame inference latency",
    )
    table2 = format_table(
        ["scenario", "BALB/Full", "BALB/Ind", "BALB/SP"],
        [
            (s.scenario, s.balb_vs_full, s.balb_vs_ind, s.balb_vs_sp)
            for s in summaries
        ],
        title="Headline speedups (paper: 6.85/6.18/2.45 vs Full; 1.88x mean vs SP)",
    )
    return table1 + "\n\n" + table2
