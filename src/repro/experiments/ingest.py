"""INGEST: burst-backpressure study on the event runtime.

Sweeps the three ingest backpressure policies against scripted ingest
bursts of increasing harshness on one scenario, measuring what each
policy trades away: ``drop-oldest`` sheds frames (recall dips during the
window), ``degrade-to-distributed`` protects key frames but sits
overflowing cameras out of the central stage, ``coalesce-to-key-frame``
drops nothing and instead pays forced central resynchronizations.

Every run uses ``runtime='event'``; the study also asserts the identity
contract — with the burst spec removed, the event runtime's RunResult is
byte-identical to the sync runtime's — so the sweep cannot silently
drift away from the baseline it claims to perturb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.report import format_table
from repro.runtime.ingest import INGEST_POLICIES
from repro.runtime.pipeline import (
    PipelineConfig,
    TrainedModels,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import get_scenario
from repro.scenarios.builder import Scenario
from repro.scenarios.bursts import burst_sweep_specs


@dataclass(frozen=True)
class IngestPoint:
    """One (ingest policy, burst spec) cell of the study."""

    ingest_policy: str
    burst: str
    recall: float
    offered: int
    served: int
    dropped: int
    coalesced: int
    stalls: int
    degraded: int
    key_frames: int


@dataclass(frozen=True)
class IngestStudy:
    """All cells of the INGEST experiment."""

    scenario: str
    identity_holds: bool  # event == sync with bursts disabled
    sweep: Tuple[IngestPoint, ...]

    def points_for(self, ingest_policy: str) -> Tuple[IngestPoint, ...]:
        return tuple(
            p for p in self.sweep if p.ingest_policy == ingest_policy
        )


def default_ingest_config(seed: int = 0) -> PipelineConfig:
    """The base run config the INGEST sweep shares."""
    return PipelineConfig(
        policy="balb", horizon=5, n_horizons=10, warmup_s=30.0,
        train_duration_s=90.0, seed=seed,
    )


def _counter_sum(result, name: str) -> int:
    return int(sum(
        m["value"] for m in result.metrics
        if m["kind"] == "counter" and m["name"] == name
    ))


def ingest_point(
    scenario: Scenario,
    base: PipelineConfig,
    trained: TrainedModels,
    ingest_policy: str,
    burst: str,
    capacity: int = 2,
) -> IngestPoint:
    """One (ingest policy, burst spec) cell on the event runtime."""
    cfg = PipelineConfig(
        **{**base.__dict__, "runtime": "event", "faults": burst,
           "ingest_policy": ingest_policy, "ingest_capacity": capacity}
    )
    result = run_policy(scenario, cfg.policy, cfg, trained)
    return IngestPoint(
        ingest_policy=ingest_policy,
        burst=burst,
        recall=result.object_recall(),
        offered=_counter_sum(result, "ingest_offered_total"),
        served=_counter_sum(result, "ingest_served_total"),
        dropped=_counter_sum(result, "ingest_dropped_total"),
        coalesced=_counter_sum(result, "ingest_coalesced_total"),
        stalls=_counter_sum(result, "ingest_stalled_frames_total"),
        degraded=_counter_sum(result, "ingest_degraded_frames_total"),
        key_frames=_counter_sum(result, "key_frames_total"),
    )


def identity_check(
    scenario: Scenario, base: PipelineConfig, trained: TrainedModels
) -> bool:
    """Does the event runtime reproduce the sync runtime bit-for-bit?"""
    sync = run_policy(
        scenario, base.policy,
        PipelineConfig(**{**base.__dict__, "runtime": "sync"}), trained,
    )
    event = run_policy(
        scenario, base.policy,
        PipelineConfig(**{**base.__dict__, "runtime": "event"}), trained,
    )

    def stable(result):
        # frame_wall_ms is host time, excluded from the identity contract.
        return [m for m in result.metrics if m["name"] != "frame_wall_ms"]

    return sync.frames == event.frames and stable(sync) == stable(event)


def ingest_study(
    scenario_name: str = "S1",
    ingest_policies: Tuple[str, ...] = INGEST_POLICIES,
    bursts: Optional[Tuple[str, ...]] = None,
    capacity: int = 2,
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
    seed: int = 0,
) -> IngestStudy:
    """Run the backpressure sweep with shared trained models."""
    scenario = get_scenario(scenario_name, seed=seed)
    base = config or default_ingest_config(seed)
    if trained is None:
        trained = train_models(scenario, base)
    if bursts is None:
        bursts = burst_sweep_specs(
            base.horizon, base.horizon * base.n_horizons
        )
    sweep = tuple(
        ingest_point(scenario, base, trained, policy, burst, capacity)
        for policy in ingest_policies
        for burst in bursts
    )
    return IngestStudy(
        scenario=scenario_name,
        identity_holds=identity_check(scenario, base, trained),
        sweep=sweep,
    )


def run_ingest(seed: int = 0) -> str:
    """The INGEST experiment as a text report."""
    return format_ingest(ingest_study(seed=seed))


def format_ingest(study: IngestStudy) -> str:
    """Render a study as the INGEST report section."""
    table = format_table(
        ["ingest policy", "burst", "recall", "served", "dropped",
         "coalesced", "stalls", "degraded keys", "key frames"],
        [
            (p.ingest_policy, p.burst, round(p.recall, 3), p.served,
             p.dropped, p.coalesced, p.stalls, p.degraded, p.key_frames)
            for p in study.sweep
        ],
        title=f"INGEST ({study.scenario}): backpressure policies under "
              "ingest bursts (event runtime)",
    )
    identity = (
        "sync/event identity with bursts disabled: "
        + ("holds (byte-identical)" if study.identity_holds else "VIOLATED")
    )
    return "\n\n".join([table, identity])
