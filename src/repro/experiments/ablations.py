"""Ablation studies of BALB's design choices (DESIGN.md Section 5).

Instance-level ablations on randomly generated MVS instances with the
profiled Jetson fleet:

* batch awareness (Definition 4 incomplete-batch reuse) on vs off,
* coverage-ordered object visiting (Algorithm 1 line 2) on vs off,
* BALB vs the exact optimum on small instances (approximation quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.balb import balb_central
from repro.core.optimal import optimal_assignment
from repro.core.problem import MVSInstance, SchedObject, system_latency
from repro.devices.profiler import DeviceProfile, profile_device
from repro.devices.profiles import (
    JETSON_AGX_XAVIER,
    JETSON_NANO,
    JETSON_TX2,
    latency_model_for,
)
from repro.experiments.report import format_table


def jetson_fleet_profiles(seed: int = 0) -> Dict[int, DeviceProfile]:
    """The Table I S1 fleet: 2x Xavier, 2x TX2, 1x Nano, profiled."""
    devices = [
        JETSON_AGX_XAVIER,
        JETSON_AGX_XAVIER,
        JETSON_TX2,
        JETSON_TX2,
        JETSON_NANO,
    ]
    return {
        cam: profile_device(
            latency_model_for(device), device.name, seed=seed + cam
        )
        for cam, device in enumerate(devices)
    }


def random_instance(
    profiles: Dict[int, DeviceProfile],
    n_objects: int,
    rng: np.random.Generator,
    multi_view_prob: float = 0.6,
    size_choices: Sequence[int] = (64, 128, 256),
) -> MVSInstance:
    """A random MVS instance with mixed coverage-set sizes."""
    cams = sorted(profiles)
    objects: List[SchedObject] = []
    for j in range(n_objects):
        if rng.random() < multi_view_prob and len(cams) > 1:
            k = int(rng.integers(2, len(cams) + 1))
        else:
            k = 1
        coverage = rng.choice(cams, size=k, replace=False)
        objects.append(
            SchedObject(
                key=j,
                target_sizes={
                    int(c): int(rng.choice(size_choices)) for c in coverage
                },
            )
        )
    return MVSInstance(profiles=profiles, objects=tuple(objects))


@dataclass
class AblationResult:
    name: str
    mean_latency_on: float
    mean_latency_off: float

    @property
    def degradation(self) -> float:
        """How much worse the ablated variant is (>= 1 means worse)."""
        if self.mean_latency_on <= 0:
            raise ValueError("non-positive latency")
        return self.mean_latency_off / self.mean_latency_on


def ablate_batch_awareness(
    n_trials: int = 30, n_objects: int = 30, seed: int = 0
) -> AblationResult:
    """Batch-aware camera choice vs pure min-latency placement."""
    profiles = jetson_fleet_profiles(seed)
    rng = np.random.default_rng(seed)
    on, off = [], []
    for _ in range(n_trials):
        instance = random_instance(profiles, n_objects, rng)
        res_on = balb_central(instance, include_full_frame=False, batch_aware=True)
        res_off = balb_central(instance, include_full_frame=False, batch_aware=False)
        # Scheduling-only latency: the full-frame term is identical across
        # variants and would mask the effect being ablated.
        on.append(system_latency(instance, res_on.assignment, False))
        off.append(system_latency(instance, res_off.assignment, False))
    return AblationResult(
        name="batch-awareness",
        mean_latency_on=float(np.mean(on)),
        mean_latency_off=float(np.mean(off)),
    )


def ablate_coverage_ordering(
    n_trials: int = 30, n_objects: int = 30, seed: int = 0
) -> AblationResult:
    """Least-flexible-first object ordering vs arbitrary (key) order."""
    profiles = jetson_fleet_profiles(seed)
    rng = np.random.default_rng(seed + 1)
    on, off = [], []
    for _ in range(n_trials):
        instance = random_instance(profiles, n_objects, rng)
        res_on = balb_central(instance, include_full_frame=False, coverage_ordered=True)
        res_off = balb_central(instance, include_full_frame=False, coverage_ordered=False)
        on.append(system_latency(instance, res_on.assignment, False))
        off.append(system_latency(instance, res_off.assignment, False))
    return AblationResult(
        name="coverage-ordering",
        mean_latency_on=float(np.mean(on)),
        mean_latency_off=float(np.mean(off)),
    )


@dataclass
class OptimalityResult:
    mean_ratio: float
    worst_ratio: float
    n_instances: int


def measure_optimality_gap(
    n_trials: int = 20, n_objects: int = 12, seed: int = 0
) -> OptimalityResult:
    """BALB vs the branch-and-bound optimum on small hard instances.

    Uses a 3-camera heterogeneous fleet, high multi-view probability and
    large target sizes so the assignment freedom actually matters.
    """
    fleet = jetson_fleet_profiles(seed)
    profiles = {k: fleet[k] for k in (0, 2, 4)}  # one AGX, one TX2, one Nano
    rng = np.random.default_rng(seed + 2)
    ratios = []
    for _ in range(n_trials):
        instance = random_instance(
            profiles, n_objects, rng,
            multi_view_prob=0.9, size_choices=(128, 256, 512),
        )
        res = balb_central(instance, include_full_frame=False)
        balb_lat = system_latency(instance, res.assignment, False)
        _, opt_lat = optimal_assignment(instance, include_full_frame=False)
        ratios.append(balb_lat / opt_lat)
    return OptimalityResult(
        mean_ratio=float(np.mean(ratios)),
        worst_ratio=float(np.max(ratios)),
        n_instances=n_trials,
    )


def run_ablations(seed: int = 0) -> str:
    """Run all instance-level ablations and render a summary table."""
    batch = ablate_batch_awareness(seed=seed)
    order = ablate_coverage_ordering(seed=seed)
    opt = measure_optimality_gap(seed=seed)
    table = format_table(
        ["ablation", "with (ms)", "without (ms)", "degradation"],
        [
            (a.name, round(a.mean_latency_on, 1), round(a.mean_latency_off, 1),
             a.degradation)
            for a in (batch, order)
        ],
        title="BALB design ablations",
    )
    return (
        table
        + f"\n\nBALB vs optimal on {opt.n_instances} small instances: "
        + f"mean ratio {opt.mean_ratio:.3f}, worst {opt.worst_ratio:.3f}"
    )
