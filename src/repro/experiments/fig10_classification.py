"""Figure 10: cross-camera visibility classification — model comparison.

Per scenario, fit each candidate classifier (KNN, SVM, logistic, decision
tree) on the chronological train half of every camera pair's rows, predict
the test half, and pool precision/recall over pairs. The paper's finding:
KNN achieves the best precision (the metric that matters — a false
positive silently drops an object from tracking), except in S2 where
logistic classification is marginally better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


from repro.association.baselines import CLASSIFIER_FACTORIES
from repro.experiments.assoc_data import PairSplit, collect_and_split
from repro.experiments.report import format_table
from repro.ml.metrics import BinaryMetrics, binary_metrics
from repro.ml.scaling import StandardScaler
from repro.scenarios.aic21 import get_scenario


@dataclass
class ClassificationRow:
    """One model's pooled result on one scenario."""

    scenario: str
    model: str
    precision: float
    recall: float
    f1: float
    n_test: int


def evaluate_classifiers(
    scenario_name: str,
    duration_s: float = 150.0,
    seed: int = 0,
    models: Dict[str, object] | None = None,
) -> List[ClassificationRow]:
    """Figure 10 for one scenario: pooled precision/recall per model."""
    scenario = get_scenario(scenario_name, seed=seed)
    splits = collect_and_split(scenario, duration_s=duration_s, seed=seed)
    factories = models or CLASSIFIER_FACTORIES
    rows: List[ClassificationRow] = []
    for name, factory in factories.items():
        pooled = _pooled_metrics(splits, factory)
        rows.append(
            ClassificationRow(
                scenario=scenario_name,
                model=name,
                precision=pooled.precision,
                recall=pooled.recall,
                f1=pooled.f1,
                n_test=pooled.tp + pooled.fp + pooled.fn + pooled.tn,
            )
        )
    return rows


def _pooled_metrics(splits: Dict[object, PairSplit], factory) -> BinaryMetrics:
    tp = fp = fn = tn = 0
    for split in splits.values():
        scaler = StandardScaler().fit(split.x_train)
        model = factory().fit(scaler.transform(split.x_train), split.y_train)
        pred = model.predict(scaler.transform(split.x_test))
        m = binary_metrics(split.y_test, pred)
        tp += m.tp
        fp += m.fp
        fn += m.fn
        tn += m.tn
    return BinaryMetrics(tp=tp, fp=fp, fn=fn, tn=tn)


def run_figure10(
    scenarios: tuple = ("S1", "S2", "S3"),
    duration_s: float = 150.0,
    seed: int = 0,
) -> str:
    """Regenerate Figure 10 as a text table over all scenarios."""
    rows: List[ClassificationRow] = []
    for name in scenarios:
        rows.extend(evaluate_classifiers(name, duration_s=duration_s, seed=seed))
    return format_table(
        ["scenario", "model", "precision", "recall", "f1"],
        [(r.scenario, r.model, r.precision, r.recall, r.f1) for r in rows],
        title="Figure 10: cross-camera visibility classification",
    )
