"""Figure 12: object recall of the scheduling policies.

Runs Full / BALB-Ind / BALB-Cen / BALB / SP over each scenario with shared
trained models and identical test worlds, reporting the paper's object
recall metric (an object visible to >= 1 camera counts as detected if any
camera detected it that frame).

Expected shape (paper Section IV-C): tracking-based slicing costs almost
no recall (BALB-Ind ~ Full); BALB-Cen degrades in busy scenes; full BALB
recovers most of the gap; SP is hit hardest by association imperfection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table
from repro.runtime.metrics import RunResult
from repro.runtime.pipeline import PipelineConfig, TrainedModels, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

DEFAULT_POLICIES: Tuple[str, ...] = ("full", "balb-ind", "balb-cen", "balb", "sp")


@dataclass
class RecallRow:
    scenario: str
    policy: str
    recall: float


def run_policies(
    scenario_name: str,
    policies: Tuple[str, ...] = DEFAULT_POLICIES,
    config: Optional[PipelineConfig] = None,
    trained: Optional[TrainedModels] = None,
    seed: int = 0,
) -> Dict[str, RunResult]:
    """Run several policies on one scenario with shared trained models."""
    scenario = get_scenario(scenario_name, seed=seed)
    config = config or PipelineConfig(
        policy="balb", n_horizons=40, train_duration_s=120.0, warmup_s=30.0,
        seed=seed,
    )
    if trained is None:
        trained = train_models(scenario, config)
    return {
        policy: run_policy(scenario, policy, config, trained)
        for policy in policies
    }


def recall_rows(runs: Dict[str, RunResult]) -> List[RecallRow]:
    """Figure 12 rows (policy, recall) from a set of runs."""
    return [
        RecallRow(
            scenario=result.scenario, policy=policy, recall=result.object_recall()
        )
        for policy, result in runs.items()
    ]


def run_figure12(
    scenarios: Tuple[str, ...] = ("S1", "S2", "S3"),
    config: Optional[PipelineConfig] = None,
    seed: int = 0,
) -> str:
    """Regenerate Figure 12 as a text table over all scenarios."""
    rows: List[RecallRow] = []
    for name in scenarios:
        runs = run_policies(name, config=config, seed=seed)
        rows.extend(recall_rows(runs))
    return format_table(
        ["scenario", "policy", "object recall"],
        [(r.scenario, r.policy, r.recall) for r in rows],
        title="Figure 12: object recall by scheduling policy",
    )
