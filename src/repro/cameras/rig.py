"""Multi-camera rig: a set of cameras observing the same world.

The rig provides ground-truth co-visibility queries (used for evaluation
and for supervising the association models) and geometric overlap
analysis between camera fields of view.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import WorldObject


class CameraRig:
    """An ordered collection of cameras with unique ids."""

    def __init__(self, cameras: Sequence[Camera]) -> None:
        if not cameras:
            raise ValueError("rig needs at least one camera")
        ids = [c.camera_id for c in cameras]
        if len(set(ids)) != len(ids):
            raise ValueError("camera ids must be unique")
        self.cameras: Tuple[Camera, ...] = tuple(cameras)
        self._by_id = {c.camera_id: c for c in cameras}

    def __len__(self) -> int:
        return len(self.cameras)

    def __iter__(self):
        return iter(self.cameras)

    def camera(self, camera_id: int) -> Camera:
        """Look up a camera by id (KeyError if absent)."""
        try:
            return self._by_id[camera_id]
        except KeyError:
            raise KeyError(f"no camera with id {camera_id}") from None

    @property
    def camera_ids(self) -> List[int]:
        return [c.camera_id for c in self.cameras]

    # ------------------------------------------------------------------
    def project_all(
        self, objects: Sequence[WorldObject]
    ) -> Dict[int, Dict[int, BBox]]:
        """``{camera_id: {object_id: bbox}}`` of all visible objects."""
        out: Dict[int, Dict[int, BBox]] = {}
        for cam in self.cameras:
            boxes = {}
            for obj in objects:
                box = cam.project_object(obj)
                if box is not None:
                    boxes[obj.object_id] = box
            out[cam.camera_id] = boxes
        return out

    def coverage_set(self, obj: WorldObject) -> List[int]:
        """Ground-truth coverage set C_j: cameras that can see ``obj``."""
        return [c.camera_id for c in self.cameras if c.can_see(obj)]

    def visible_counts(self, objects: Sequence[WorldObject]) -> Dict[int, int]:
        """Objects-per-camera workload snapshot (the Figure 2 quantity)."""
        return {
            c.camera_id: sum(1 for o in objects if c.can_see(o))
            for c in self.cameras
        }

    # ------------------------------------------------------------------
    def fov_overlap_matrix(self) -> np.ndarray:
        """Pairwise ground-FoV overlap areas (m^2), symmetric."""
        polys = [c.ground_fov_polygon() for c in self.cameras]
        n = len(polys)
        mat = np.zeros((n, n))
        for i in range(n):
            mat[i, i] = polys[i].area
            for j in range(i + 1, n):
                area = polys[i].overlap_area(polys[j])
                mat[i, j] = mat[j, i] = area
        return mat

    def overlap_fraction(self, camera_id_a: int, camera_id_b: int) -> float:
        """Overlap area as a fraction of the smaller camera's FoV."""
        pa = self.camera(camera_id_a).ground_fov_polygon()
        pb = self.camera(camera_id_b).ground_fov_polygon()
        inter = pa.overlap_area(pb)
        smaller = min(pa.area, pb.area)
        return inter / smaller if smaller > 0 else 0.0

    def cameras_seeing_ground_point(self, x: float, y: float) -> List[int]:
        """Cameras whose frame contains the ground point ``(x, y)``."""
        return [
            c.camera_id for c in self.cameras if c.sees_ground_point(x, y)
        ]
