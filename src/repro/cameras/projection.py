"""Per-frame projection cache shared by every projection consumer.

One simulation frame used to project the same objects five separate
times per camera — coverage splitting, occlusion, full-frame detection,
region detection, new-region search and fleet-health observation each
called ``Camera.project_object`` on the same list. The cache computes
each camera's projection table once per distinct object snapshot with
the batched :meth:`Camera.project_objects` and hands the resulting
``{object_id: BBox}`` mapping to every consumer.

A cache instance lives for exactly one frame. Tables are keyed by the
*identity* of the object list (per-camera lag means different cameras
can observe different snapshots of the world); the cache keeps a strong
reference to each keyed list so an ``id()`` can never be recycled
within the frame.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cameras.camera import Camera, project_objects_multi
from repro.geometry.box import BBox
from repro.world.entities import WorldObject
from repro.world.soa import FrameArrays


class FrameProjectionCache:
    """Memoized batched projections for one frame.

    When constructed with the rig's cameras, the first table request for
    an object snapshot projects *all* registered cameras in one stacked
    call (:func:`project_objects_multi`); a camera outside the registered
    set falls back to its own batched projection.
    """

    __slots__ = ("_cameras", "_frames", "_tables", "_coverage")

    def __init__(self, cameras: Sequence[Camera] = ()) -> None:
        self._cameras = list(cameras)
        # id(list) -> (list ref, FrameArrays); the ref pins the id.
        self._frames: Dict[int, Tuple[Sequence[WorldObject], FrameArrays]] = {}
        # (camera_id, id(list)) -> visible-object box table.
        self._tables: Dict[Tuple[int, int], Dict[int, BBox]] = {}
        # (camera id tuple, id(list)) -> {object_id: [covering cam ids]}.
        self._coverage: Dict[
            Tuple[Tuple[int, ...], int], Dict[int, List[int]]
        ] = {}

    def arrays(self, objects: Sequence[WorldObject]) -> FrameArrays:
        """The SoA snapshot for this object list (built once per list)."""
        key = id(objects)
        entry = self._frames.get(key)
        if entry is None:
            entry = (objects, FrameArrays(objects))
            self._frames[key] = entry
        return entry[1]

    def boxes(
        self, camera: Camera, objects: Sequence[WorldObject]
    ) -> Dict[int, BBox]:
        """``{object_id: clipped_box}`` of the camera's visible objects.

        Bit-identical to calling ``camera.project_object`` per object;
        objects absent from the mapping are not visible.
        """
        key = (camera.camera_id, id(objects))
        table = self._tables.get(key)
        if table is None:
            frame = self.arrays(objects)
            if any(c is camera for c in self._cameras):
                snapshot = id(objects)
                for cam, built in zip(
                    self._cameras,
                    project_objects_multi(self._cameras, frame),
                ):
                    self._tables[(cam.camera_id, snapshot)] = built
                table = self._tables[key]
            else:
                table = camera.project_objects(frame)
                self._tables[key] = table
        return table

    def coverage_set(
        self,
        cameras: Sequence[Camera],
        obj: WorldObject,
        objects: Sequence[WorldObject],
    ) -> List[int]:
        """Cached mirror of :meth:`CameraRig.coverage_set` (camera order)."""
        table = self._coverage_table(cameras, objects)
        return table.get(obj.object_id, [])

    def coverage_table(
        self, cameras: Sequence[Camera], objects: Sequence[WorldObject]
    ) -> Dict[int, List[int]]:
        """The full frame coverage table, for whole-frame consumers.

        Callers sweeping every object should take this once instead of
        calling :meth:`coverage_set` per object; its keys are exactly
        the ids visible to at least one camera.
        """
        return self._coverage_table(cameras, objects)

    def _coverage_table(
        self, cameras: Sequence[Camera], objects: Sequence[WorldObject]
    ) -> Dict[int, List[int]]:
        """``{object_id: covering camera ids}`` built in one sweep.

        One pass over each camera's box table replaces a per-object scan
        of every camera; appending in camera order preserves exactly the
        id order :meth:`CameraRig.coverage_set` produces. Objects visible
        nowhere are absent (callers default to an empty list).
        """
        key = (tuple(c.camera_id for c in cameras), id(objects))
        table = self._coverage.get(key)
        if table is None:
            table = {}
            for camera in cameras:
                cam_id = camera.camera_id
                for oid in self.boxes(camera, objects):
                    table.setdefault(oid, []).append(cam_id)
            self._coverage[key] = table
        return table
