"""Camera models and multi-camera rigs."""

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.cameras.occlusion import OcclusionModel, visible_fractions
from repro.cameras.rig import CameraRig

__all__ = [
    "Camera",
    "CameraIntrinsics",
    "CameraPose",
    "CameraRig",
    "OcclusionModel",
    "visible_fractions",
]
