"""Pinhole camera model mapping world objects to pixel bounding boxes.

Each simulated smart camera is a statically mounted pinhole camera with a
pose (position, yaw, downward pitch) and intrinsics (focal length in
pixels, image size). Objects are 3-D boxes; their image bounding box is the
extent of the 8 projected corners. Because object height and orientation
enter the projection, the mapping of 2-D boxes *between* cameras is
non-linear — the property that motivates the paper's data-driven
association over plain homography.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Optional, Tuple

import numpy as np

from repro.geometry.box import BBox
from repro.geometry.polygon import ConvexPolygon
from repro.world.entities import WorldObject


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics: square pixels, principal point at image centre."""

    focal_px: float
    image_width: int
    image_height: int

    def __post_init__(self) -> None:
        if self.focal_px <= 0:
            raise ValueError("focal_px must be positive")
        if self.image_width <= 0 or self.image_height <= 0:
            raise ValueError("image size must be positive")

    @property
    def horizontal_fov(self) -> float:
        """Full horizontal field of view in radians."""
        return 2.0 * math.atan2(self.image_width / 2.0, self.focal_px)


@dataclass(frozen=True)
class CameraPose:
    """Extrinsics: position in metres, yaw (ccw from +x), pitch down (rad)."""

    x: float
    y: float
    z: float
    yaw: float
    pitch_down: float

    def __post_init__(self) -> None:
        if self.z <= 0:
            raise ValueError("camera must be mounted above the ground (z > 0)")
        if not 0.0 <= self.pitch_down < math.pi / 2:
            raise ValueError("pitch_down must be in [0, pi/2)")


class Camera:
    """A statically mounted camera observing the ground-plane world."""

    def __init__(
        self,
        camera_id: int,
        pose: CameraPose,
        intrinsics: CameraIntrinsics,
        max_range: float = 80.0,
        min_box_pixels: float = 8.0,
        name: str = "",
    ) -> None:
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.camera_id = camera_id
        self.pose = pose
        self.intrinsics = intrinsics
        self.max_range = max_range
        self.min_box_pixels = min_box_pixels
        self.name = name or f"cam{camera_id}"
        self._rotation = _rotation_matrix(pose.yaw, pose.pitch_down)
        self._position = np.array([pose.x, pose.y, pose.z])

    # ------------------------------------------------------------------
    @property
    def frame_size(self) -> Tuple[int, int]:
        return (self.intrinsics.image_width, self.intrinsics.image_height)

    def project_point(
        self, x: float, y: float, z: float = 0.0
    ) -> Optional[Tuple[float, float]]:
        """Project a world point to pixels; None when behind the camera."""
        cam = self._rotation @ (np.array([x, y, z]) - self._position)
        if cam[2] < 0.5:  # near plane at 0.5 m
            return None
        f = self.intrinsics.focal_px
        u = f * cam[0] / cam[2] + self.intrinsics.image_width / 2.0
        v = f * cam[1] / cam[2] + self.intrinsics.image_height / 2.0
        return (float(u), float(v))

    def project_object(self, obj: WorldObject) -> Optional[BBox]:
        """The object's clipped image bounding box, or None if not visible.

        Visibility requires: within range, in front of the camera, at least
        a third of the raw box inside the frame, and a box at least
        ``min_box_pixels`` on each side after clipping.
        """
        if obj.distance_to(self.pose.x, self.pose.y) > self.max_range:
            return None
        pts = []
        for cx, cy, cz in obj.corners_3d():
            uv = self.project_point(cx, cy, cz)
            if uv is None:
                return None  # partially behind the camera: treat as invisible
            pts.append(uv)
        raw = BBox.from_points(pts)
        w, h = self.frame_size
        clipped = raw.clip(float(w), float(h))
        if clipped.is_empty():
            return None
        if raw.area > 0 and clipped.area / raw.area < 1.0 / 3.0:
            return None
        if clipped.width < self.min_box_pixels or clipped.height < self.min_box_pixels:
            return None
        return clipped

    def can_see(self, obj: WorldObject) -> bool:
        """True when the object projects to a valid visible box."""
        return self.project_object(obj) is not None

    def sees_ground_point(self, x: float, y: float) -> bool:
        """Whether the ground point projects into the frame within range."""
        if math.hypot(x - self.pose.x, y - self.pose.y) > self.max_range:
            return False
        uv = self.project_point(x, y, 0.0)
        if uv is None:
            return False
        u, v = uv
        w, h = self.frame_size
        return 0.0 <= u <= w and 0.0 <= v <= h

    def ground_fov_polygon(self, arc_segments: int = 10) -> ConvexPolygon:
        """Approximate ground-plane field of view as a view cone polygon."""
        half = min(self.intrinsics.horizontal_fov / 2.0, math.pi / 2 - 1e-3)
        return ConvexPolygon.sector(
            apex=(self.pose.x, self.pose.y),
            heading_rad=self.pose.yaw,
            half_angle_rad=half,
            radius=self.max_range,
            arc_segments=arc_segments,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Camera({self.name}, pos=({self.pose.x:.1f},{self.pose.y:.1f}))"


def _rotation_matrix(yaw: float, pitch_down: float) -> np.ndarray:
    """World->camera rotation: camera x=right, y=down, z=forward."""
    cy, sy = math.cos(yaw), math.sin(yaw)
    cp, sp = math.cos(pitch_down), math.sin(pitch_down)
    forward = np.array([cy * cp, sy * cp, -sp])
    right = np.array([sy, -cy, 0.0])
    down = np.cross(forward, right)
    # Guard against numerical drift: ensure 'down' has negative-z-up sense.
    if down[2] > 0:
        down = -down
    return np.vstack([right, down, forward])
