"""Pinhole camera model mapping world objects to pixel bounding boxes.

Each simulated smart camera is a statically mounted pinhole camera with a
pose (position, yaw, downward pitch) and intrinsics (focal length in
pixels, image size). Objects are 3-D boxes; their image bounding box is the
extent of the 8 projected corners. Because object height and orientation
enter the projection, the mapping of 2-D boxes *between* cameras is
non-linear — the property that motivates the paper's data-driven
association over plain homography.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.box import BBox
from repro.geometry.polygon import ConvexPolygon
from repro.world.entities import WorldObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.world.soa import FrameArrays


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics: square pixels, principal point at image centre."""

    focal_px: float
    image_width: int
    image_height: int

    def __post_init__(self) -> None:
        if self.focal_px <= 0:
            raise ValueError("focal_px must be positive")
        if self.image_width <= 0 or self.image_height <= 0:
            raise ValueError("image size must be positive")

    @property
    def horizontal_fov(self) -> float:
        """Full horizontal field of view in radians."""
        return 2.0 * math.atan2(self.image_width / 2.0, self.focal_px)


@dataclass(frozen=True)
class CameraPose:
    """Extrinsics: position in metres, yaw (ccw from +x), pitch down (rad)."""

    x: float
    y: float
    z: float
    yaw: float
    pitch_down: float

    def __post_init__(self) -> None:
        if self.z <= 0:
            raise ValueError("camera must be mounted above the ground (z > 0)")
        if not 0.0 <= self.pitch_down < math.pi / 2:
            raise ValueError("pitch_down must be in [0, pi/2)")


class Camera:
    """A statically mounted camera observing the ground-plane world."""

    def __init__(
        self,
        camera_id: int,
        pose: CameraPose,
        intrinsics: CameraIntrinsics,
        max_range: float = 80.0,
        min_box_pixels: float = 8.0,
        name: str = "",
    ) -> None:
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.camera_id = camera_id
        self.pose = pose
        self.intrinsics = intrinsics
        self.max_range = max_range
        self.min_box_pixels = min_box_pixels
        self.name = name or f"cam{camera_id}"
        self._rotation = _rotation_matrix(pose.yaw, pose.pitch_down)
        self._position = np.array([pose.x, pose.y, pose.z])
        # Flattened pose/rotation/intrinsics for the scalar fast path and
        # its batched mirror (identical expression grouping keeps the two
        # bit-for-bit equal; see project_objects).
        (
            self._r00, self._r01, self._r02,
            self._r10, self._r11, self._r12,
            self._r20, self._r21, self._r22,
        ) = (float(v) for v in self._rotation.ravel())
        self._px = float(pose.x)
        self._py = float(pose.y)
        self._pz = float(pose.z)
        self._focal = float(intrinsics.focal_px)
        self._half_w = intrinsics.image_width / 2.0
        self._half_h = intrinsics.image_height / 2.0
        self._max_range_sq = max_range * max_range

    # ------------------------------------------------------------------
    @property
    def frame_size(self) -> Tuple[int, int]:
        return (self.intrinsics.image_width, self.intrinsics.image_height)

    def project_point(
        self, x: float, y: float, z: float = 0.0
    ) -> Optional[Tuple[float, float]]:
        """Project a world point to pixels; None when behind the camera.

        Pure scalar arithmetic: per-call numpy allocations were the single
        hottest cost of the frame loop, and BLAS matvec rounding differs
        from elementwise evaluation, which would break the bit-identity
        contract with the batched path (see project_objects).
        """
        dx = x - self._px
        dy = y - self._py
        dz = z - self._pz
        cz = (self._r20 * dx + self._r21 * dy) + self._r22 * dz
        if cz < 0.5:  # near plane at 0.5 m
            return None
        cx = (self._r00 * dx + self._r01 * dy) + self._r02 * dz
        cy = (self._r10 * dx + self._r11 * dy) + self._r12 * dz
        f = self._focal
        return (f * cx / cz + self._half_w, f * cy / cz + self._half_h)

    def project_object(self, obj: WorldObject) -> Optional[BBox]:
        """The object's clipped image bounding box, or None if not visible.

        Visibility requires: within range, in front of the camera, at least
        a third of the raw box inside the frame, and a box at least
        ``min_box_pixels`` on each side after clipping.
        """
        ddx = obj.x - self._px
        ddy = obj.y - self._py
        if ddx * ddx + ddy * ddy > self._max_range_sq:
            return None
        pts = []
        for cx, cy, cz in obj.corners_3d():
            uv = self.project_point(cx, cy, cz)
            if uv is None:
                return None  # partially behind the camera: treat as invisible
            pts.append(uv)
        raw = BBox.from_points(pts)
        w, h = self.frame_size
        clipped = raw.clip(float(w), float(h))
        if clipped.is_empty():
            return None
        if raw.area > 0 and clipped.area / raw.area < 1.0 / 3.0:
            return None
        if clipped.width < self.min_box_pixels or clipped.height < self.min_box_pixels:
            return None
        return clipped

    def project_objects(self, frame: "FrameArrays") -> Dict[int, BBox]:
        """Batched project_object over a whole frame's SoA snapshot.

        Returns ``{object_id: clipped_box}`` for exactly the objects
        project_object would accept, in object order, with bit-identical
        box coordinates: every expression mirrors the scalar path's
        grouping, and numpy's elementwise float64 ops round identically to
        CPython floats (unlike BLAS matvec, which is why project_point is
        scalar-form too).
        """
        n = frame.n
        if n == 0:
            return {}
        dx0 = frame.x - self._px
        dy0 = frame.y - self._py
        in_range = dx0 * dx0 + dy0 * dy0 <= self._max_range_sq
        dx = frame.corners_x - self._px
        dy = frame.corners_y - self._py
        dz = frame.corners_z - self._pz
        cz = (self._r20 * dx + self._r21 * dy) + self._r22 * dz
        candidates = in_range & (cz >= 0.5).all(axis=1)
        idx = np.nonzero(candidates)[0]
        if idx.size == 0:
            return {}
        dx, dy, dz, cz = dx[idx], dy[idx], dz[idx], cz[idx]
        cx = (self._r00 * dx + self._r01 * dy) + self._r02 * dz
        cy = (self._r10 * dx + self._r11 * dy) + self._r12 * dz
        f = self._focal
        us = f * cx / cz + self._half_w
        vs = f * cy / cz + self._half_h
        rx1 = us.min(axis=1)
        ry1 = vs.min(axis=1)
        rx2 = us.max(axis=1)
        ry2 = vs.max(axis=1)
        w, h = self.frame_size
        fw, fh = float(w), float(h)
        # Mirror of BBox.clip / is_empty / the area-ratio and minimum-side
        # visibility checks in project_object.
        cx1 = np.minimum(np.maximum(rx1, 0.0), fw)
        cy1 = np.minimum(np.maximum(ry1, 0.0), fh)
        cx2 = np.minimum(np.maximum(rx2, 0.0), fw)
        cy2 = np.minimum(np.maximum(ry2, 0.0), fh)
        cw = cx2 - cx1
        ch = cy2 - cy1
        raw_area = (rx2 - rx1) * (ry2 - ry1)
        visible = (cw > 1e-9) & (ch > 1e-9)
        with np.errstate(divide="ignore", invalid="ignore"):
            visible &= ~((raw_area > 0) & (cw * ch / raw_area < 1.0 / 3.0))
        visible &= (cw >= self.min_box_pixels) & (ch >= self.min_box_pixels)
        ids = frame.object_ids
        # float() casts keep BBox fields plain Python floats (same pickle
        # and repr bytes as the scalar path), not np.float64.
        return {
            int(ids[idx[k]]): BBox(
                float(cx1[k]), float(cy1[k]), float(cx2[k]), float(cy2[k])
            )
            for k in np.nonzero(visible)[0]
        }

    def can_see(self, obj: WorldObject) -> bool:
        """True when the object projects to a valid visible box."""
        return self.project_object(obj) is not None

    # ------------------------------------------------------------------
    # Internal flattened constants consumed by project_objects_multi.
    # ------------------------------------------------------------------
    def _projection_constants(self) -> Tuple[float, ...]:
        return (
            self._r00, self._r01, self._r02,
            self._r10, self._r11, self._r12,
            self._r20, self._r21, self._r22,
            self._px, self._py, self._pz,
            self._focal, self._half_w, self._half_h,
            self._max_range_sq,
            float(self.intrinsics.image_width),
            float(self.intrinsics.image_height),
            float(self.min_box_pixels),
        )

    def sees_ground_point(self, x: float, y: float) -> bool:
        """Whether the ground point projects into the frame within range."""
        if math.hypot(x - self.pose.x, y - self.pose.y) > self.max_range:
            return False
        uv = self.project_point(x, y, 0.0)
        if uv is None:
            return False
        u, v = uv
        w, h = self.frame_size
        return 0.0 <= u <= w and 0.0 <= v <= h

    def ground_fov_polygon(self, arc_segments: int = 10) -> ConvexPolygon:
        """Approximate ground-plane field of view as a view cone polygon."""
        half = min(self.intrinsics.horizontal_fov / 2.0, math.pi / 2 - 1e-3)
        return ConvexPolygon.sector(
            apex=(self.pose.x, self.pose.y),
            heading_rad=self.pose.yaw,
            half_angle_rad=half,
            radius=self.max_range,
            arc_segments=arc_segments,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Camera({self.name}, pos=({self.pose.x:.1f},{self.pose.y:.1f}))"


#: LRU of stacked per-rig projection-constant matrices. Camera poses and
#: intrinsics are immutable for the life of a run, so the (C, 19) stack
#: only depends on which cameras make up the rig. Entries pin the camera
#: objects so an id() can never be recycled while its key is alive.
_CONSTS_CAP = 8
_CONSTS_MEMO: "OrderedDict[Tuple[int, ...], Tuple[tuple, np.ndarray]]" = (
    OrderedDict()
)


def _stacked_constants(cameras: "Sequence[Camera]") -> np.ndarray:
    key = tuple(id(cam) for cam in cameras)
    entry = _CONSTS_MEMO.get(key)
    if entry is None or any(
        held is not cam for held, cam in zip(entry[0], cameras)
    ):
        consts = np.array([cam._projection_constants() for cam in cameras])
        entry = (tuple(cameras), consts)
        _CONSTS_MEMO[key] = entry
        while len(_CONSTS_MEMO) > _CONSTS_CAP:
            _CONSTS_MEMO.popitem(last=False)
    else:
        _CONSTS_MEMO.move_to_end(key)
    return entry[1]


def project_objects_multi(
    cameras: "Sequence[Camera]", frame: "FrameArrays"
) -> "List[Dict[int, BBox]]":
    """Batched :meth:`Camera.project_objects` over a whole camera rig.

    One stacked ``(C, n, 8)`` evaluation replaces ``C`` per-camera calls;
    every per-camera table is bit-identical to ``camera.project_objects``
    because all expressions stay elementwise with the same grouping —
    per-camera constants merely broadcast along the object/corner axes.
    Rows behind a camera run through the projective division anyway (the
    gather is what the batching removes); their NaN/inf results are
    discarded by the ``candidates`` mask exactly like the scalar path's
    early return, and never contaminate other entries.
    """
    if not cameras:
        return []
    n = frame.n
    if n == 0:
        return [{} for _ in cameras]
    consts = _stacked_constants(cameras)
    col = consts[:, :, None]  # (C, k, 1) for per-object broadcasts
    cor = consts[:, :, None, None]  # (C, k, 1, 1) for per-corner broadcasts
    r00, r01, r02 = cor[:, 0], cor[:, 1], cor[:, 2]
    r10, r11, r12 = cor[:, 3], cor[:, 4], cor[:, 5]
    r20, r21, r22 = cor[:, 6], cor[:, 7], cor[:, 8]
    dx0 = frame.x[None, :] - col[:, 9]
    dy0 = frame.y[None, :] - col[:, 10]
    in_range = dx0 * dx0 + dy0 * dy0 <= col[:, 15]
    dx = frame.corners_x[None, :, :] - cor[:, 9]
    dy = frame.corners_y[None, :, :] - cor[:, 10]
    dz = frame.corners_z[None, :, :] - cor[:, 11]
    cz = (r20 * dx + r21 * dy) + r22 * dz
    candidates = in_range & (cz >= 0.5).all(axis=2)
    if not candidates.any():
        return [{} for _ in cameras]
    with np.errstate(divide="ignore", invalid="ignore"):
        cx = (r00 * dx + r01 * dy) + r02 * dz
        cy = (r10 * dx + r11 * dy) + r12 * dz
        f = cor[:, 12]
        us = f * cx / cz + cor[:, 13]
        vs = f * cy / cz + cor[:, 14]
        rx1 = us.min(axis=2)
        ry1 = vs.min(axis=2)
        rx2 = us.max(axis=2)
        ry2 = vs.max(axis=2)
        fw = col[:, 16]
        fh = col[:, 17]
        cx1 = np.minimum(np.maximum(rx1, 0.0), fw)
        cy1 = np.minimum(np.maximum(ry1, 0.0), fh)
        cx2 = np.minimum(np.maximum(rx2, 0.0), fw)
        cy2 = np.minimum(np.maximum(ry2, 0.0), fh)
        cw = cx2 - cx1
        ch = cy2 - cy1
        raw_area = (rx2 - rx1) * (ry2 - ry1)
        visible = candidates & (cw > 1e-9) & (ch > 1e-9)
        visible &= ~((raw_area > 0) & (cw * ch / raw_area < 1.0 / 3.0))
        visible &= (cw >= col[:, 18]) & (ch >= col[:, 18])
    # Row-wise tolist() keeps the table build in plain Python floats
    # (exact for float64) instead of one ndarray-scalar cast per field.
    id_list = frame.id_list
    tables: "List[Dict[int, BBox]]" = []
    for ci in range(len(cameras)):
        vis_idx = np.nonzero(visible[ci])[0].tolist()
        if not vis_idx:
            tables.append({})
            continue
        x1r = cx1[ci].tolist()
        y1r = cy1[ci].tolist()
        x2r = cx2[ci].tolist()
        y2r = cy2[ci].tolist()
        tables.append(
            {
                id_list[k]: BBox(x1r[k], y1r[k], x2r[k], y2r[k])
                for k in vis_idx
            }
        )
    return tables


def _rotation_matrix(yaw: float, pitch_down: float) -> np.ndarray:
    """World->camera rotation: camera x=right, y=down, z=forward."""
    cy, sy = math.cos(yaw), math.sin(yaw)
    cp, sp = math.cos(pitch_down), math.sin(pitch_down)
    forward = np.array([cy * cp, sy * cp, -sp])
    right = np.array([sy, -cy, 0.0])
    down = np.cross(forward, right)
    # Guard against numerical drift: ensure 'down' has negative-z-up sense.
    if down[2] > 0:
        down = -down
    return np.vstack([right, down, forward])
