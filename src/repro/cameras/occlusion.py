"""Inter-object occlusion (paper Section V, "Dynamic occlusion").

The base camera model treats visibility as purely geometric. This module
adds the dynamic effect the paper lists as a limitation of single-camera
assignment: one object can block another from a camera's viewpoint, while
a differently placed camera still sees it. The redundant-assignment
extension (:mod:`repro.core.redundancy`) uses this to motivate tracking an
object from k > 1 cameras.

Occlusion is computed in image space with depth ordering: an object's
*visible fraction* is the share of its projected box not covered by boxes
of strictly closer objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import WorldObject


def visible_fractions(
    camera: Camera,
    objects: Sequence[WorldObject],
    boxes: Optional[Mapping[int, BBox]] = None,
) -> Dict[int, float]:
    """Per-object visible fraction in ``camera``'s view (0 = fully hidden).

    Only objects the camera geometrically sees are returned. Coverage by
    closer objects is accumulated with a union upper bound (summed overlap
    capped at 1), which is exact for disjoint occluders and conservative
    when occluders themselves overlap. ``boxes`` optionally supplies the
    frame's cached projection table; the coverage accumulation stays
    scalar in object order so both paths sum in the same order.
    """
    projected: List[Tuple[int, float, BBox]] = []
    for obj in objects:
        if boxes is None:
            box = camera.project_object(obj)
        else:
            box = boxes.get(obj.object_id)
        if box is None:
            continue
        distance = obj.distance_to(camera.pose.x, camera.pose.y)
        projected.append((obj.object_id, distance, box))

    fractions: Dict[int, float] = {}
    for oid, distance, box in projected:
        if box.area <= 0:
            fractions[oid] = 0.0
            continue
        covered = 0.0
        for other_id, other_dist, other_box in projected:
            if other_id == oid or other_dist >= distance:
                continue
            covered += box.intersection(other_box)
        fractions[oid] = max(0.0, 1.0 - covered / box.area)
    return fractions


@dataclass(frozen=True)
class OcclusionModel:
    """Visibility policy on top of raw fractions.

    ``visibility_threshold`` is the fraction below which an object counts
    as effectively invisible to the camera; between the threshold and 1.0
    the detector's miss probability is scaled up smoothly.
    """

    visibility_threshold: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.visibility_threshold < 1.0:
            raise ValueError("visibility_threshold must be in [0, 1)")

    def effectively_visible(self, fraction: float) -> bool:
        """Is a view with this visible fraction usable at all?"""
        return fraction >= self.visibility_threshold

    def miss_multiplier(self, fraction: float) -> float:
        """Detector miss-probability multiplier for a partially hidden box.

        1.0 at fully visible, growing smoothly to a hard miss below the
        threshold.
        """
        if fraction >= 1.0:
            return 1.0
        if fraction < self.visibility_threshold:
            return float("inf")  # treated as a guaranteed miss
        span = 1.0 - self.visibility_threshold
        hidden = (1.0 - fraction) / span
        return 1.0 + 8.0 * hidden**2

    def occluded_coverage_set(
        self,
        cameras: Sequence[Camera],
        obj: WorldObject,
        objects: Sequence[WorldObject],
    ) -> List[int]:
        """Cameras that see ``obj`` after occlusion filtering."""
        covering = []
        for camera in cameras:
            fractions = visible_fractions(camera, objects)
            fraction = fractions.get(obj.object_id)
            if fraction is not None and self.effectively_visible(fraction):
                covering.append(camera.camera_id)
        return covering
