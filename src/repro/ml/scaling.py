"""Feature standardization.

All distance- and margin-based models here (KNN, SVM, logistic regression)
are scale sensitive; bounding-box features mix pixel coordinates (~1000) and
aspect ratios (~1), so the association pipeline standardizes features before
fitting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError


class StandardScaler:
    """Per-feature zero-mean / unit-variance scaling.

    Constant features get a unit divisor so they pass through centred at 0
    instead of producing NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and scale from ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or len(x) == 0:
            raise ValueError("expected a non-empty (n, d) array")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardization to ``x``."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its standardized form."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Map standardized values back to the original feature scale."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        return np.asarray(x, dtype=float) * self.scale_ + self.mean_
