"""Evaluation metrics for the ML substrate and experiment harness.

Precision/recall drive the paper's Figure 10 (classification module), mean
absolute error drives Figure 11 (regression module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix-derived metrics for a binary classifier."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0


def binary_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> BinaryMetrics:
    """Compute a confusion matrix for 0/1 labels and predictions."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return BinaryMetrics(tp=tp, fp=fp, fn=fn, tn=tn)


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAE averaged over all coordinates — the Figure 11 regression metric."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute MAE on empty arrays")
    return float(np.mean(np.abs(y_true - y_pred)))


def train_test_split_indices(
    n: int, train_fraction: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Chronological split: first half trains, second half tests.

    The paper trains the association models on the first half of each video
    and tests on the remainder, so the split is by time, not shuffled.
    """
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    cut = max(1, min(n - 1, int(round(n * train_fraction))))
    idx = np.arange(n)
    return idx[:cut], idx[cut:]
