"""Linear models: least-squares regression and logistic classification.

Linear regression is the paper's "learnable homography transformation"
baseline for cross-camera location mapping (Figure 11); logistic
classification is one of its visibility-classifier baselines (Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    Regressor,
    check_features,
    check_xy,
    require_fitted,
)


class LinearRegressor(Regressor):
    """Ridge-regularized least squares with an intercept term.

    A tiny ridge term (``l2``) keeps the normal equations well conditioned
    on nearly collinear bounding-box features.
    """

    def __init__(self, l2: float = 1e-8) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.coef_: np.ndarray | None = None  # (d + 1, k), last row = intercept

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        x, y = check_xy(x, y, allow_vector_target=True)
        xb = np.hstack([x, np.ones((len(x), 1))])
        gram = xb.T @ xb
        reg = self.l2 * np.eye(gram.shape[0])
        reg[-1, -1] = 0.0  # do not penalize the intercept
        self.coef_ = np.linalg.solve(gram + reg, xb.T @ y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "coef_")
        assert self.coef_ is not None
        x = check_features(x, self.coef_.shape[0] - 1)
        xb = np.hstack([x, np.ones((len(x), 1))])
        return xb @ self.coef_


class LogisticClassifier(Classifier):
    """L2-regularized logistic regression trained by gradient descent.

    Plain batch gradient descent with a fixed number of iterations is
    sufficient for the small association training sets and keeps the
    implementation dependency free.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.5,
        n_iter: int = 500,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if lr <= 0:
            raise ValueError("lr must be positive")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.l2 = l2
        self.lr = lr
        self.n_iter = n_iter
        self.weights_: np.ndarray | None = None  # (d,)
        self.bias_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticClassifier":
        x, y = check_xy(x, y)
        if not np.all(np.isin(np.unique(y), (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            p = _sigmoid(x @ w + b)
            err = p - y
            grad_w = x.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "weights_")
        assert self.weights_ is not None
        x = check_features(x, len(self.weights_))
        return _sigmoid(x @ self.weights_ + self.bias_)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; probabilities saturate at ~1e-14.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))
