"""From-scratch ML substrate: models used by cross-camera association.

Primary models (the paper's choice): :class:`KNNClassifier` and
:class:`KNNRegressor`. Baselines evaluated in Figures 10/11:
:class:`LinearSVM`, :class:`LogisticClassifier`,
:class:`DecisionTreeClassifier`, :class:`LinearRegressor`,
:class:`RANSACRegressor` (plus homography in :mod:`repro.geometry`).
"""

from repro.ml.base import Classifier, NotFittedError, Regressor
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.hungarian import assignment_cost, hungarian
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.linear import LinearRegressor, LogisticClassifier
from repro.ml.metrics import (
    BinaryMetrics,
    binary_metrics,
    mean_absolute_error,
    train_test_split_indices,
)
from repro.ml.ransac import RANSACRegressor
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVM

__all__ = [
    "Classifier",
    "Regressor",
    "NotFittedError",
    "KNNClassifier",
    "KNNRegressor",
    "LogisticClassifier",
    "LinearRegressor",
    "LinearSVM",
    "DecisionTreeClassifier",
    "RANSACRegressor",
    "StandardScaler",
    "hungarian",
    "assignment_cost",
    "BinaryMetrics",
    "binary_metrics",
    "mean_absolute_error",
    "train_test_split_indices",
]
