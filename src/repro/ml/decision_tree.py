"""CART-style binary decision tree classifier.

The last of the paper's visibility-classifier baselines (Figure 10).
Greedy axis-aligned splits chosen by Gini impurity, with depth and
min-samples stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_features, check_xy, require_fitted


@dataclass
class _Node:
    """A tree node: either a split (feature/threshold) or a leaf (proba)."""

    proba: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier(Classifier):
    """Binary classification tree grown greedily on Gini impurity."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.root_: _Node | None = None
        self._n_features = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = check_xy(x, y)
        if not np.all(np.isin(np.unique(y), (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        self._n_features = x.shape[1]
        self.root_ = self._grow(x, y, depth=0)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "root_")
        assert self.root_ is not None
        x = check_features(x, self._n_features)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self.root_
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        require_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        assert self.root_ is not None
        return walk(self.root_)

    # ------------------------------------------------------------------
    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        proba = float(y.mean())
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or proba in (0.0, 1.0)
        ):
            return _Node(proba=proba)
        split = self._best_split(x, y)
        if split is None:
            return _Node(proba=proba)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        left = self._grow(x[mask], y[mask], depth + 1)
        right = self._grow(x[~mask], y[~mask], depth + 1)
        return _Node(
            proba=proba, feature=feature, threshold=threshold, left=left, right=right
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        """The (feature, threshold) minimizing weighted Gini, if any improves."""
        n = len(y)
        best: tuple[int, float] | None = None
        best_score = _gini(y)
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            # Prefix counts of positives let us score every split in O(n).
            pos_prefix = np.cumsum(ys)
            total_pos = pos_prefix[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # can't split between equal values
                if i >= n:
                    break
                left_n, right_n = i, n - i
                left_pos = pos_prefix[i - 1]
                right_pos = total_pos - left_pos
                score = (
                    left_n * _gini_from_counts(left_pos, left_n)
                    + right_n * _gini_from_counts(right_pos, right_n)
                ) / n
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, float((xs[i - 1] + xs[i]) / 2.0))
        return best


def _gini(y: np.ndarray) -> float:
    if len(y) == 0:
        return 0.0
    p = float(y.mean())
    return 2.0 * p * (1.0 - p)


def _gini_from_counts(pos: float, n: int) -> float:
    if n == 0:
        return 0.0
    p = pos / n
    return 2.0 * p * (1.0 - p)
