"""Linear support vector machine.

One of the paper's visibility-classifier baselines (Figure 10). Trained as
a primal L2-regularized hinge-loss problem with sub-gradient descent
(Pegasos-style learning-rate schedule), which is robust and dependency
free. Probabilities are obtained by squashing the margin with a sigmoid so
the SVM exposes the common ``Classifier`` interface.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_xy, require_fitted


class LinearSVM(Classifier):
    """Primal linear SVM with hinge loss and L2 regularization."""

    def __init__(self, c: float = 1.0, n_iter: int = 800, seed: int = 0) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.c = c
        self.n_iter = n_iter
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x, y01 = check_xy(x, y)
        if not np.all(np.isin(np.unique(y01), (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        y_pm = 2.0 * y01 - 1.0  # hinge loss wants +/-1 labels
        n, d = x.shape
        lam = 1.0 / (self.c * n)
        w = np.zeros(d)
        b = 0.0
        for t in range(1, self.n_iter + 1):
            eta = 1.0 / (lam * t)
            margins = y_pm * (x @ w + b)
            violating = margins < 1.0
            # Sub-gradient of the averaged hinge loss plus the L2 term.
            if np.any(violating):
                grad_w = lam * w - (y_pm[violating, None] * x[violating]).sum(
                    axis=0
                ) / n
                grad_b = -float(y_pm[violating].sum()) / n
            else:
                grad_w = lam * w
                grad_b = 0.0
            w -= eta * grad_w
            b -= eta * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margins ``w.x + b`` (positive = class 1 side)."""
        require_fitted(self, "weights_")
        assert self.weights_ is not None
        x = check_features(x, len(self.weights_))
        return x @ self.weights_ + self.bias_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        margin = self.decision_function(x)
        return 1.0 / (1.0 + np.exp(-np.clip(margin, -30.0, 30.0)))
