"""RANSAC-wrapped regression.

The paper's robust regression baseline (Figure 11, their reference [21]):
repeatedly fit a base regressor on random minimal subsets, keep the model
with the largest inlier consensus, and refit on all inliers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.base import Regressor, check_xy, require_fitted
from repro.ml.linear import LinearRegressor


class RANSACRegressor(Regressor):
    """Random sample consensus around an inner regressor (linear by default)."""

    def __init__(
        self,
        base_factory: Callable[[], Regressor] | None = None,
        n_trials: int = 50,
        min_samples: int | None = None,
        residual_threshold: float | None = None,
        seed: int = 0,
    ) -> None:
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        self.base_factory = base_factory or LinearRegressor
        self.n_trials = n_trials
        self.min_samples = min_samples
        self.residual_threshold = residual_threshold
        self.seed = seed
        self.model_: Regressor | None = None
        self.inlier_mask_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RANSACRegressor":
        x, y = check_xy(x, y, allow_vector_target=True)
        n, d = x.shape
        min_samples = self.min_samples or max(d + 1, 4)
        if n < min_samples:
            # Too few points for consensus; fall back to a plain fit.
            self.model_ = self.base_factory().fit(x, y)
            self.inlier_mask_ = np.ones(n, dtype=bool)
            return self

        threshold = self.residual_threshold
        if threshold is None:
            # MAD-style default: scaled median absolute deviation of targets.
            spread = np.median(np.abs(y - np.median(y, axis=0)), axis=0)
            threshold = float(np.mean(spread)) + 1e-6

        rng = np.random.default_rng(self.seed)
        best_mask: np.ndarray | None = None
        best_count = -1
        for _ in range(self.n_trials):
            idx = rng.choice(n, size=min_samples, replace=False)
            try:
                candidate = self.base_factory().fit(x[idx], y[idx])
            except (ValueError, np.linalg.LinAlgError):
                continue
            residuals = np.mean(np.abs(candidate.predict(x) - y), axis=1)
            mask = residuals <= threshold
            count = int(mask.sum())
            if count > best_count:
                best_count = count
                best_mask = mask

        if best_mask is None or best_count < min_samples:
            # No consensus found; use everything.
            best_mask = np.ones(n, dtype=bool)
        self.model_ = self.base_factory().fit(x[best_mask], y[best_mask])
        self.inlier_mask_ = best_mask
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "model_")
        assert self.model_ is not None
        return self.model_.predict(x)
