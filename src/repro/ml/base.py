"""Shared interfaces and validation helpers for the ML substrate.

The cross-camera association module (Section II-C of the paper) relies on a
classifier ("does this object appear in camera j?") and a regressor ("where
does it appear?"). The paper's primary models are K-nearest-neighbour
variants; its evaluation compares them against SVM, logistic regression and
decision trees (classification) and homography, linear regression and
RANSAC (regression). All of those models are implemented here from scratch
on top of numpy so the library has no learned-model dependencies.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np


class Classifier(abc.ABC):
    """Binary classifier over real-valued feature vectors (labels 0/1)."""

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Classifier":
        """Fit on features ``x`` of shape (n, d) and labels ``y`` of shape (n,)."""

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``x``."""

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions by thresholding :meth:`predict_proba`."""
        return (self.predict_proba(x) >= threshold).astype(int)


class Regressor(abc.ABC):
    """Vector-output regressor over real-valued feature vectors."""

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Regressor":
        """Fit on features ``x`` (n, d) and targets ``y`` (n, k)."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets, shape (n, k)."""


def check_xy(
    x: np.ndarray, y: np.ndarray, allow_vector_target: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalize a training pair.

    Returns float arrays with ``x`` of shape (n, d) and ``y`` of shape (n,)
    or (n, k) when ``allow_vector_target`` is set.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if len(x) == 0:
        raise ValueError("cannot fit on an empty dataset")
    if allow_vector_target:
        if y.ndim == 1:
            y = y[:, None]
        if y.ndim != 2:
            raise ValueError(f"y must be 1-D or 2-D, got shape {y.shape}")
    else:
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(x) != len(y):
        raise ValueError(f"x and y length mismatch: {len(x)} vs {len(y)}")
    if not np.all(np.isfinite(x)):
        raise ValueError("x contains non-finite values")
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains non-finite values")
    return x, y


def check_features(x: np.ndarray, n_features: int) -> np.ndarray:
    """Validate prediction-time features against the fitted dimensionality."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2 or x.shape[1] != n_features:
        raise ValueError(
            f"expected features of shape (n, {n_features}), got {x.shape}"
        )
    return x


class NotFittedError(RuntimeError):
    """Raised when predict is called before fit."""


def require_fitted(obj: object, attr: str) -> None:
    """Raise :class:`NotFittedError` when ``attr`` is still None."""
    if getattr(obj, attr, None) is None:
        raise NotFittedError(f"{type(obj).__name__} is not fitted yet")
