"""Hungarian algorithm for minimum-cost bipartite assignment.

The association matcher (Section II-C, step 3) runs the Hungarian algorithm
to pair predicted box locations with detected boxes by IoU proximity. This
is a from-scratch O(n^2 m) implementation of the shortest-augmenting-path
formulation with dual potentials, supporting rectangular cost matrices.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def hungarian(cost: np.ndarray) -> List[Tuple[int, int]]:
    """Solve min-cost assignment on an ``(n, m)`` cost matrix.

    Returns a list of ``(row, col)`` pairs of length ``min(n, m)``, sorted
    by row. Costs must be finite. For rectangular matrices the smaller side
    is fully matched.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return []
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix contains non-finite entries")

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n, m = cost.shape  # n <= m

    # 1-based arrays; match[j] is the row assigned to column j (0 = free).
    # Column 0 is a virtual column used to seed each augmentation.
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    match = np.zeros(m + 1, dtype=int)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        links = np.zeros(m + 1, dtype=int)
        mins = np.full(m + 1, np.inf)
        visited = np.zeros(m + 1, dtype=bool)
        while True:
            visited[j0] = True
            i0 = match[j0]
            delta = np.inf
            j1 = 0
            for j in range(1, m + 1):
                if visited[j]:
                    continue
                reduced = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if reduced < mins[j]:
                    mins[j] = reduced
                    links[j] = j0
                if mins[j] < delta:
                    delta = mins[j]
                    j1 = j
            for j in range(m + 1):
                if visited[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    mins[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Augment along the alternating path back to the virtual column.
        while j0 != 0:
            j1 = links[j0]
            match[j0] = match[j1]
            j0 = j1

    pairs = []
    for j in range(1, m + 1):
        if match[j] != 0:
            row, col = match[j] - 1, j - 1
            pairs.append((col, row) if transposed else (row, col))
    pairs.sort()
    return pairs


def assignment_cost(cost: np.ndarray, pairs: List[Tuple[int, int]]) -> float:
    """Total cost of an assignment returned by :func:`hungarian`."""
    cost = np.asarray(cost, dtype=float)
    return float(sum(cost[r, c] for r, c in pairs))
