"""Hungarian algorithm for minimum-cost bipartite assignment.

The association matcher (Section II-C, step 3) runs the Hungarian algorithm
to pair predicted box locations with detected boxes by IoU proximity. This
is a from-scratch O(n^2 m) implementation of the shortest-augmenting-path
formulation with dual potentials, supporting rectangular cost matrices.
"""

from __future__ import annotations

from math import isfinite
from typing import List, Tuple, Union

import numpy as np


def hungarian(
    cost: Union[np.ndarray, List[List[float]]]
) -> List[Tuple[int, int]]:
    """Solve min-cost assignment on an ``(n, m)`` cost matrix.

    Returns a list of ``(row, col)`` pairs of length ``min(n, m)``, sorted
    by row. Costs must be finite. For rectangular matrices the smaller side
    is fully matched. ``cost`` may be an ndarray or a rectangular nested
    list; the list form skips the ndarray round-trip, which dominates the
    runtime on the tiny matrices the matchers produce.
    """
    if (
        isinstance(cost, list)
        and cost
        and isinstance(cost[0], list)
        and cost[0]
        and all(len(r) == len(cost[0]) for r in cost)
    ):
        for r in cost:
            for val in r:
                if not isfinite(val):
                    raise ValueError(
                        "cost matrix contains non-finite entries"
                    )
        if len(cost) == 1:
            # Single row: the augmenting-path machinery reduces to
            # "first minimum wins", the same strict-< scan it performs.
            row = cost[0]
            best, best_val = 0, row[0]
            for j in range(1, len(row)):
                if row[j] < best_val:
                    best, best_val = j, row[j]
            return [(0, best)]
        if len(cost[0]) == 1:
            best, best_val = 0, cost[0][0]
            for i in range(1, len(cost)):
                if cost[i][0] < best_val:
                    best, best_val = i, cost[i][0]
            return [(best, 0)]
        transposed = len(cost) > len(cost[0])
        # The solver never mutates the rows, so the caller's lists are
        # used as-is when no transpose is needed.
        rows = (
            [list(col) for col in zip(*cost)] if transposed else cost
        )
        n, m = len(rows), len(rows[0])
    else:
        cost = np.asarray(cost, dtype=float)
        if cost.ndim != 2:
            raise ValueError("cost must be a 2-D matrix")
        if cost.size == 0:
            return []
        if not np.all(np.isfinite(cost)):
            raise ValueError("cost matrix contains non-finite entries")

        transposed = cost.shape[0] > cost.shape[1]
        if transposed:
            cost = cost.T
        n, m = cost.shape  # n <= m

        # The matrices here are tiny (detections per camera), where
        # indexing an ndarray element-by-element dominates the runtime;
        # plain Python lists are several times faster and tolist()
        # round-trips float64 exactly, so the arithmetic — and the
        # assignment — is unchanged.
        rows = cost.tolist()
    inf = float("inf")

    # 1-based arrays; match[j] is the row assigned to column j (0 = free).
    # Column 0 is a virtual column used to seed each augmentation.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        links = [0] * (m + 1)
        mins = [inf] * (m + 1)
        # The visited set is kept as two explicit column lists instead of
        # a boolean array: the scan loop then touches only live columns.
        # ``unvisited`` stays in ascending column order (removal preserves
        # order), so delta ties break toward the same (smallest) column as
        # the original ascending scan; the dual/slack updates are
        # element-independent, so applying them per-list is bit-identical.
        unvisited = list(range(1, m + 1))
        vis_cols = [0]
        while True:
            i0 = match[j0]
            delta = inf
            j1 = 0
            j1_pos = 0
            row = rows[i0 - 1]
            u_i0 = u[i0]
            for pos, j in enumerate(unvisited):
                reduced = row[j - 1] - u_i0 - v[j]
                mj = mins[j]
                if reduced < mj:
                    mins[j] = mj = reduced
                    links[j] = j0
                if mj < delta:
                    delta = mj
                    j1 = j
                    j1_pos = pos
            for j in vis_cols:
                u[match[j]] += delta
                v[j] -= delta
            for j in unvisited:
                mins[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
            del unvisited[j1_pos]
            vis_cols.append(j0)
        # Augment along the alternating path back to the virtual column.
        while j0 != 0:
            j1 = links[j0]
            match[j0] = match[j1]
            j0 = j1

    pairs = []
    for j in range(1, m + 1):
        if match[j] != 0:
            row, col = match[j] - 1, j - 1
            pairs.append((col, row) if transposed else (row, col))
    pairs.sort()
    return pairs


def assignment_cost(cost: np.ndarray, pairs: List[Tuple[int, int]]) -> float:
    """Total cost of an assignment returned by :func:`hungarian`."""
    cost = np.asarray(cost, dtype=float)
    return float(sum(cost[r, c] for r, c in pairs))
