"""K-nearest-neighbour models.

The paper's association module uses non-parametric KNN for both the
cross-camera visibility classifier and the location regressor: "It works as
a special lookup table which uses the nearest case(s) in the memory to
generate the prediction" (Section II-C).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    Regressor,
    check_features,
    check_xy,
    require_fitted,
)


def _k_nearest(train: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    """Indices (n_queries, k) of the k nearest training rows per query.

    Brute-force Euclidean search; the association training sets are a few
    thousand rows, so this is both simple and fast enough.
    """
    # (q, t) squared distances via the expansion |a-b|^2 = |a|^2 - 2ab + |b|^2.
    d2 = (
        np.sum(queries**2, axis=1)[:, None]
        - 2.0 * queries @ train.T
        + np.sum(train**2, axis=1)[None, :]
    )
    k = min(k, len(train))
    idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
    # Sort the selected k by distance so weighting is stable.
    rows = np.arange(len(queries))[:, None]
    order = np.argsort(d2[rows, idx], axis=1)
    return idx[rows, order]


class KNNClassifier(Classifier):
    """Majority-vote KNN binary classifier with optional distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = False) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x, y = check_xy(x, y)
        labels = np.unique(y)
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        self._x = x
        self._y = y
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "_x")
        assert self._x is not None and self._y is not None
        x = check_features(x, self._x.shape[1])
        idx = _k_nearest(self._x, x, self.k)
        votes = self._y[idx]
        if not self.weighted:
            return votes.mean(axis=1)
        dists = np.linalg.norm(x[:, None, :] - self._x[idx], axis=2)
        weights = 1.0 / (dists + 1e-9)
        return (votes * weights).sum(axis=1) / weights.sum(axis=1)


class KNNRegressor(Regressor):
    """Mean-of-neighbours KNN regressor with optional distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        x, y = check_xy(x, y, allow_vector_target=True)
        self._x = x
        self._y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "_x")
        assert self._x is not None and self._y is not None
        x = check_features(x, self._x.shape[1])
        idx = _k_nearest(self._x, x, self.k)
        targets = self._y[idx]  # (q, k, out)
        if not self.weighted:
            return targets.mean(axis=1)
        dists = np.linalg.norm(x[:, None, :] - self._x[idx], axis=2)
        weights = 1.0 / (dists + 1e-9)
        return (targets * weights[:, :, None]).sum(axis=1) / weights.sum(axis=1)[
            :, None
        ]
