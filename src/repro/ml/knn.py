"""K-nearest-neighbour models.

The paper's association module uses non-parametric KNN for both the
cross-camera visibility classifier and the location regressor: "It works as
a special lookup table which uses the nearest case(s) in the memory to
generate the prediction" (Section II-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import (
    Classifier,
    Regressor,
    check_features,
    check_xy,
    require_fitted,
)


def _k_nearest(
    train: np.ndarray,
    queries: np.ndarray,
    k: int,
    train_norms: Optional[np.ndarray] = None,
    train_neg2: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Indices (n_queries, k) of the k nearest training rows per query.

    Brute-force Euclidean search; the association training sets are a few
    thousand rows, so this is both simple and fast enough.
    ``train_norms`` optionally carries the precomputed per-row squared
    norms of ``train`` (fit-time cache) — recomputing them per query was
    most of the batch-query cost. ``train_neg2`` optionally carries
    ``train * -2.0`` (same cache): scaling by a power of two is exact and
    distributes over addition without rounding, and the pre-scaled array
    has the same layout as ``train`` so the gemm kernel choice is
    unchanged — the product is bit-identical to scaling afterwards.
    """
    if train_norms is None:
        train_norms = np.sum(train**2, axis=1)
    # (q, t) squared distances via the expansion |a-b|^2 = |a|^2 - 2ab + |b|^2,
    # built in place: gemm once, then scale-and-shift without temporaries.
    # Bit-identical to the one-expression chain — float addition is
    # commutative and the grouping ((-2g) + |a|^2) + |b|^2 matches the
    # left-to-right evaluation of |a|^2 - 2g + |b|^2 exactly.
    if train_neg2 is not None:
        d2 = queries @ train_neg2.T
    else:
        d2 = queries @ train.T
        d2 *= -2.0
    d2 += np.sum(queries**2, axis=1)[:, None]
    d2 += train_norms[None, :]
    k = min(k, len(train))
    idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
    # Sort the selected k by distance so weighting is stable.
    rows = _row_index(len(queries))
    order = np.argsort(d2[rows, idx], axis=1)
    return idx[rows, order]


_ROW_INDEX = np.arange(0)[:, None]


def _row_index(n: int) -> np.ndarray:
    """Cached ``arange(n)[:, None]`` (row selector for fancy indexing)."""
    global _ROW_INDEX
    if len(_ROW_INDEX) < n:
        _ROW_INDEX = np.arange(n)[:, None]
        _ROW_INDEX.setflags(write=False)
    return _ROW_INDEX[:n]


class KNNClassifier(Classifier):
    """Majority-vote KNN binary classifier with optional distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = False) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        # Fit-time cache of per-row squared norms; getattr-guarded at
        # query time so models unpickled from older artifacts still work.
        self._x_norms: np.ndarray | None = None
        self._x_neg2: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x, y = check_xy(x, y)
        labels = np.unique(y)
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        self._x = x
        self._y = y
        self._x_norms = np.sum(x**2, axis=1)
        self._x_neg2 = x * -2.0
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "_x")
        assert self._x is not None and self._y is not None
        x = check_features(x, self._x.shape[1])
        idx = _k_nearest(
            self._x,
            x,
            self.k,
            getattr(self, "_x_norms", None),
            getattr(self, "_x_neg2", None),
        )
        votes = self._y[idx]
        if not self.weighted:
            return votes.mean(axis=1)
        dists = np.linalg.norm(x[:, None, :] - self._x[idx], axis=2)
        weights = 1.0 / (dists + 1e-9)
        return (votes * weights).sum(axis=1) / weights.sum(axis=1)


class KNNRegressor(Regressor):
    """Mean-of-neighbours KNN regressor with optional distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._x_norms: np.ndarray | None = None
        self._x_neg2: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        x, y = check_xy(x, y, allow_vector_target=True)
        self._x = x
        self._y = y
        self._x_norms = np.sum(x**2, axis=1)
        self._x_neg2 = x * -2.0
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        require_fitted(self, "_x")
        assert self._x is not None and self._y is not None
        x = check_features(x, self._x.shape[1])
        idx = _k_nearest(
            self._x,
            x,
            self.k,
            getattr(self, "_x_norms", None),
            getattr(self, "_x_neg2", None),
        )
        targets = self._y[idx]  # (q, k, out)
        if not self.weighted:
            return targets.mean(axis=1)
        dists = np.linalg.norm(x[:, None, :] - self._x[idx], axis=2)
        weights = 1.0 / (dists + 1e-9)
        return (targets * weights[:, :, None]).sum(axis=1) / weights.sum(axis=1)[
            :, None
        ]
