"""ASCII visualization of scenes and runs.

Terminal-friendly rendering for debugging and the examples: a top-down
ground-plane map of a scenario (roads, cameras, objects, view cones) and
sparkline-style series for metrics. No plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cameras.rig import CameraRig
from repro.world.world import World

_SPARK_LEVELS = " .:-=+*#%@"


def render_ground_plane(
    world: World,
    rig: CameraRig,
    width: int = 72,
    height: int = 28,
    extent: Optional[Tuple[float, float, float, float]] = None,
) -> str:
    """Top-down ASCII map: routes '.', objects 'o'/'O', cameras digits,
    view-cone rays '~'.

    Objects seen by >= 2 cameras render as 'O', single-view as 'o',
    unseen as 'x'. ``extent`` is ``(x_min, y_min, x_max, y_max)`` in
    metres; by default it is fitted to the routes and cameras.
    """
    if width < 10 or height < 5:
        raise ValueError("canvas too small")
    if extent is None:
        extent = _fit_extent(world, rig)
    x_min, y_min, x_max, y_max = extent
    if x_max <= x_min or y_max <= y_min:
        raise ValueError("degenerate extent")

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, char: str, overwrite: bool = True) -> None:
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            return
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        # Image rows grow downward; world y grows upward.
        row = int((y_max - y) / (y_max - y_min) * (height - 1))
        if overwrite or grid[row][col] == " ":
            grid[row][col] = char

    # Routes as dotted polylines.
    for route in world.config.routes:
        s = 0.0
        step = route.length / max(2, int(route.length))
        while s <= route.length:
            x, y = route.point_at(s)
            plot(x, y, ".", overwrite=False)
            s += step

    # View cone rays.
    for camera in rig:
        half = camera.intrinsics.horizontal_fov / 2.0
        for angle in (camera.pose.yaw - half, camera.pose.yaw + half):
            for r in range(2, int(camera.max_range), 3):
                plot(
                    camera.pose.x + r * math.cos(angle),
                    camera.pose.y + r * math.sin(angle),
                    "~",
                    overwrite=False,
                )

    # Objects, coded by coverage.
    for obj in world.objects:
        n = len(rig.coverage_set(obj))
        char = "O" if n >= 2 else ("o" if n == 1 else "x")
        plot(obj.x, obj.y, char)

    # Cameras last so they stay visible.
    for camera in rig:
        plot(camera.pose.x, camera.pose.y, str(camera.camera_id % 10))

    legend = (
        "legend: digits=cameras  ~=view cone  .=route  "
        "O=multi-view  o=single-view  x=unseen"
    )
    return "\n".join("".join(row) for row in grid) + "\n" + legend


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into one line of density characters."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        # Average pooling down to the target width.
        pooled = []
        chunk = len(values) / width
        for i in range(width):
            lo = int(i * chunk)
            hi = max(lo + 1, int((i + 1) * chunk))
            pooled.append(sum(values[lo:hi]) / (hi - lo))
        values = pooled
    v_min, v_max = min(values), max(values)
    span = (v_max - v_min) or 1.0
    chars = []
    for v in values:
        idx = int((v - v_min) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def render_workload_series(
    counts: Dict[int, List[int]], width: int = 60
) -> str:
    """One sparkline per camera (the Figure 2 visual), labelled."""
    lines = []
    for cam in sorted(counts):
        series = counts[cam]
        peak = max(series) if series else 0
        lines.append(
            f"cam{cam} (max {peak:2d}): {sparkline(series, width)}"
        )
    return "\n".join(lines)


def _fit_extent(
    world: World, rig: CameraRig, margin: float = 8.0
) -> Tuple[float, float, float, float]:
    xs: List[float] = []
    ys: List[float] = []
    for route in world.config.routes:
        for x, y in route.waypoints:
            xs.append(x)
            ys.append(y)
    for camera in rig:
        xs.append(camera.pose.x)
        ys.append(camera.pose.y)
    return (min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin)
