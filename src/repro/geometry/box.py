"""Axis-aligned bounding boxes in pixel coordinates.

Boxes are the currency of the whole system: the simulated detector emits
them, the optical-flow tracker predicts them, the cross-camera association
models map them between views, and the scheduler sizes partial-frame
inspection tasks from them.

A box is stored as ``(x1, y1, x2, y2)`` with ``x1 <= x2`` and ``y1 <= y2``,
following the convention of the paper's detector (YOLO-style corner format).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import lru_cache
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BBox:
    """An axis-aligned rectangle ``(x1, y1) .. (x2, y2)`` in pixels.

    Instances are immutable; all mutating operations return new boxes.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"invalid box: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def long_side(self) -> float:
        """The longer of width/height — the quantity quantized for batching."""
        return max(self.width, self.height)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The box as ``(x1, y1, x2, y2)``."""
        return (self.x1, self.y1, self.x2, self.y2)

    def as_xywh(self) -> Tuple[float, float, float, float]:
        """Return ``(cx, cy, w, h)`` — the format the regression models use."""
        cx, cy = self.center
        return (cx, cy, self.width, self.height)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_xywh(cls, cx: float, cy: float, w: float, h: float) -> "BBox":
        """Build a box from center + size; negative sizes are clamped to 0."""
        w = max(0.0, w)
        h = max(0.0, h)
        return cls(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "BBox":
        """The tightest box containing all ``points``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a box from zero points")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------
    # Geometry operations
    # ------------------------------------------------------------------
    def intersection(self, other: "BBox") -> float:
        """Area of overlap with ``other`` (0 when disjoint)."""
        iw = min(self.x2, other.x2) - max(self.x1, other.x1)
        ih = min(self.y2, other.y2) - max(self.y1, other.y1)
        if iw <= 0.0 or ih <= 0.0:
            return 0.0
        return iw * ih

    def iou(self, other: "BBox") -> float:
        """Intersection-over-union, the proximity measure used for matching."""
        inter = self.intersection(other)
        if inter == 0.0:
            return 0.0
        union = self.area + other.area - inter
        if union <= 0.0:
            return 0.0
        return inter / union

    def contains_point(self, x: float, y: float) -> bool:
        """Is the point inside or on the boundary?"""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_box(self, other: "BBox") -> bool:
        """Does this box fully contain ``other``?"""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def expand(self, margin: float) -> "BBox":
        """Grow the box by ``margin`` pixels on every side."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            cx, cy = self.center
            return BBox(cx, cy, cx, cy)
        return BBox(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def scale(self, factor: float) -> "BBox":
        """Scale the box about its center by ``factor`` (must be >= 0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        cx, cy = self.center
        return BBox.from_xywh(cx, cy, self.width * factor, self.height * factor)

    def translate(self, dx: float, dy: float) -> "BBox":
        """The box shifted by ``(dx, dy)`` pixels."""
        return BBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def clip(self, frame_w: float, frame_h: float) -> "BBox":
        """Clip the box to a ``frame_w x frame_h`` image (may become empty)."""
        if (
            self.x1 >= 0.0
            and self.y1 >= 0.0
            and self.x2 <= frame_w
            and self.y2 <= frame_h
        ):
            # Already in frame: every min/max below would return the
            # original coordinate (Python's min/max keep the first
            # argument on ties, so even signed zeros survive unchanged).
            return self
        return BBox(
            min(max(self.x1, 0.0), frame_w),
            min(max(self.y1, 0.0), frame_h),
            min(max(self.x2, 0.0), frame_w),
            min(max(self.y2, 0.0), frame_h),
        )

    def union_box(self, other: "BBox") -> "BBox":
        """The tightest box containing both boxes."""
        return BBox(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def is_empty(self, eps: float = 1e-9) -> bool:
        """True when either side is (numerically) zero."""
        return self.width <= eps or self.height <= eps

    def l1_distance(self, other: "BBox") -> float:
        """Mean absolute error between the two boxes' corner coordinates.

        This is the MAE metric of the paper's Figure 11 for a single pair.
        """
        return (
            abs(self.x1 - other.x1)
            + abs(self.y1 - other.y1)
            + abs(self.x2 - other.x2)
            + abs(self.y2 - other.y2)
        ) / 4.0

    def center_distance(self, other: "BBox") -> float:
        """Euclidean distance between the two box centres."""
        ax, ay = self.center
        bx, by = other.center
        return math.hypot(ax - bx, ay - by)


# ----------------------------------------------------------------------
# Size quantization (Section III-A: target sizes quantized to a set S)
# ----------------------------------------------------------------------
DEFAULT_SIZE_SET: Tuple[int, ...] = (64, 128, 256, 512)
"""The paper's quantized partial-frame sizes (Section IV-A3)."""


def quantize_size(extent: float, size_set: Sequence[int] = DEFAULT_SIZE_SET) -> int:
    """Quantize a region extent to the smallest size in ``size_set`` >= extent.

    Regions larger than the largest size are *downsampled* to it, exactly as
    the paper does for regions above 512 px ("very large objects are easy to
    be detected").
    """
    if not size_set:
        raise ValueError("size_set must be non-empty")
    # Called once per region per frame with the same handful of size
    # sets; memoize the sort and binary-search instead of a linear scan.
    ordered = _ordered_sizes(tuple(size_set))
    idx = bisect_left(ordered, extent)
    return ordered[idx] if idx < len(ordered) else ordered[-1]


@lru_cache(maxsize=None)
def _ordered_sizes(size_set: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(sorted(size_set))


def quantized_region(
    box: BBox,
    size_set: Sequence[int] = DEFAULT_SIZE_SET,
    margin: float = 8.0,
) -> Tuple[BBox, int]:
    """Expand ``box`` by ``margin`` and square it up to a quantized size.

    Returns the square search region centred on the object together with its
    quantized target size. The region is what the simulated detector
    inspects on regular frames; the target size is the batching key.
    """
    grown = box.expand(margin)
    size = quantize_size(grown.long_side, size_set)
    cx, cy = grown.center
    return BBox.from_xywh(cx, cy, float(size), float(size)), size


def iou_matrix(
    boxes_a: Sequence[BBox], boxes_b: Sequence[BBox]
) -> np.ndarray:
    """Dense IoU matrix between two box lists (rows: a, cols: b).

    Every entry is bit-identical to ``boxes_a[i].iou(boxes_b[j])``: the
    batched expressions mirror :meth:`BBox.intersection`/:meth:`BBox.iou`
    term for term (np.minimum/np.maximum are the same exact selections as
    min/max, and the union grouping matches the scalar left-to-right
    evaluation), so matchers built on either form agree exactly.
    """
    n, m = len(boxes_a), len(boxes_b)
    if n == 0 or m == 0:
        return np.zeros((n, m))
    a = np.array([(b.x1, b.y1, b.x2, b.y2) for b in boxes_a]).reshape(-1, 1, 4)
    b = np.array([(b.x1, b.y1, b.x2, b.y2) for b in boxes_b]).reshape(1, -1, 4)
    iw = np.minimum(a[..., 2], b[..., 2]) - np.maximum(a[..., 0], b[..., 0])
    ih = np.minimum(a[..., 3], b[..., 3]) - np.maximum(a[..., 1], b[..., 1])
    inter = np.where((iw <= 0.0) | (ih <= 0.0), 0.0, iw * ih)
    union = (
        (a[..., 2] - a[..., 0]) * (a[..., 3] - a[..., 1])
        + (b[..., 2] - b[..., 0]) * (b[..., 3] - b[..., 1])
        - inter
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where((inter == 0.0) | (union <= 0.0), 0.0, inter / union)


#: Below this many cells, the scalar mirror of the batched IoU chain is
#: faster than paying numpy's fixed per-call overhead.
_IOU_SCALAR_MAX_CELLS = 64


def iou_cost_rows(
    boxes_a: Sequence[BBox], boxes_b: Sequence[BBox]
) -> List[List[float]]:
    """``1.0 - IoU`` cost matrix as nested lists (rows: a, cols: b).

    Bit-identical to ``(1.0 - iou_matrix(boxes_a, boxes_b)).tolist()``
    on every entry: small matrices run a scalar mirror of the batched
    expression — same min/max selections, same term grouping, same
    ``1.0 - x`` subtraction — and larger ones take the batched path,
    whose tolist round-trip is exact for float64.
    """
    n, m = len(boxes_a), len(boxes_b)
    if n * m > _IOU_SCALAR_MAX_CELLS:
        return (1.0 - iou_matrix(boxes_a, boxes_b)).tolist()
    corners_b = [(b.x1, b.y1, b.x2, b.y2) for b in boxes_b]
    rows: List[List[float]] = []
    for a in boxes_a:
        ax1, ay1, ax2, ay2 = a.x1, a.y1, a.x2, a.y2
        area_a = (ax2 - ax1) * (ay2 - ay1)
        row: List[float] = []
        for bx1, by1, bx2, by2 in corners_b:
            iw = (ax2 if ax2 < bx2 else bx2) - (ax1 if ax1 > bx1 else bx1)
            ih = (ay2 if ay2 < by2 else by2) - (ay1 if ay1 > by1 else by1)
            if iw <= 0.0 or ih <= 0.0:
                row.append(1.0)
                continue
            inter = iw * ih
            union = area_a + (bx2 - bx1) * (by2 - by1) - inter
            if inter == 0.0 or union <= 0.0:
                row.append(1.0)
            else:
                row.append(1.0 - inter / union)
        rows.append(row)
    return rows


def pairwise_iou_matrix(
    boxes_a: Sequence[BBox], boxes_b: Sequence[BBox]
) -> List[List[float]]:
    """Dense IoU matrix as nested lists (see :func:`iou_matrix`)."""
    return iou_matrix(boxes_a, boxes_b).tolist()
