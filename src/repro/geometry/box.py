"""Axis-aligned bounding boxes in pixel coordinates.

Boxes are the currency of the whole system: the simulated detector emits
them, the optical-flow tracker predicts them, the cross-camera association
models map them between views, and the scheduler sizes partial-frame
inspection tasks from them.

A box is stored as ``(x1, y1, x2, y2)`` with ``x1 <= x2`` and ``y1 <= y2``,
following the convention of the paper's detector (YOLO-style corner format).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import lru_cache
import math
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class BBox:
    """An axis-aligned rectangle ``(x1, y1) .. (x2, y2)`` in pixels.

    Instances are immutable; all mutating operations return new boxes.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"invalid box: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def long_side(self) -> float:
        """The longer of width/height — the quantity quantized for batching."""
        return max(self.width, self.height)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The box as ``(x1, y1, x2, y2)``."""
        return (self.x1, self.y1, self.x2, self.y2)

    def as_xywh(self) -> Tuple[float, float, float, float]:
        """Return ``(cx, cy, w, h)`` — the format the regression models use."""
        cx, cy = self.center
        return (cx, cy, self.width, self.height)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_xywh(cls, cx: float, cy: float, w: float, h: float) -> "BBox":
        """Build a box from center + size; negative sizes are clamped to 0."""
        w = max(0.0, w)
        h = max(0.0, h)
        return cls(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "BBox":
        """The tightest box containing all ``points``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a box from zero points")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------
    # Geometry operations
    # ------------------------------------------------------------------
    def intersection(self, other: "BBox") -> float:
        """Area of overlap with ``other`` (0 when disjoint)."""
        iw = min(self.x2, other.x2) - max(self.x1, other.x1)
        ih = min(self.y2, other.y2) - max(self.y1, other.y1)
        if iw <= 0.0 or ih <= 0.0:
            return 0.0
        return iw * ih

    def iou(self, other: "BBox") -> float:
        """Intersection-over-union, the proximity measure used for matching."""
        inter = self.intersection(other)
        if inter == 0.0:
            return 0.0
        union = self.area + other.area - inter
        if union <= 0.0:
            return 0.0
        return inter / union

    def contains_point(self, x: float, y: float) -> bool:
        """Is the point inside or on the boundary?"""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_box(self, other: "BBox") -> bool:
        """Does this box fully contain ``other``?"""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def expand(self, margin: float) -> "BBox":
        """Grow the box by ``margin`` pixels on every side."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            cx, cy = self.center
            return BBox(cx, cy, cx, cy)
        return BBox(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def scale(self, factor: float) -> "BBox":
        """Scale the box about its center by ``factor`` (must be >= 0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        cx, cy = self.center
        return BBox.from_xywh(cx, cy, self.width * factor, self.height * factor)

    def translate(self, dx: float, dy: float) -> "BBox":
        """The box shifted by ``(dx, dy)`` pixels."""
        return BBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def clip(self, frame_w: float, frame_h: float) -> "BBox":
        """Clip the box to a ``frame_w x frame_h`` image (may become empty)."""
        return BBox(
            min(max(self.x1, 0.0), frame_w),
            min(max(self.y1, 0.0), frame_h),
            min(max(self.x2, 0.0), frame_w),
            min(max(self.y2, 0.0), frame_h),
        )

    def union_box(self, other: "BBox") -> "BBox":
        """The tightest box containing both boxes."""
        return BBox(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def is_empty(self, eps: float = 1e-9) -> bool:
        """True when either side is (numerically) zero."""
        return self.width <= eps or self.height <= eps

    def l1_distance(self, other: "BBox") -> float:
        """Mean absolute error between the two boxes' corner coordinates.

        This is the MAE metric of the paper's Figure 11 for a single pair.
        """
        return (
            abs(self.x1 - other.x1)
            + abs(self.y1 - other.y1)
            + abs(self.x2 - other.x2)
            + abs(self.y2 - other.y2)
        ) / 4.0

    def center_distance(self, other: "BBox") -> float:
        """Euclidean distance between the two box centres."""
        ax, ay = self.center
        bx, by = other.center
        return math.hypot(ax - bx, ay - by)


# ----------------------------------------------------------------------
# Size quantization (Section III-A: target sizes quantized to a set S)
# ----------------------------------------------------------------------
DEFAULT_SIZE_SET: Tuple[int, ...] = (64, 128, 256, 512)
"""The paper's quantized partial-frame sizes (Section IV-A3)."""


def quantize_size(extent: float, size_set: Sequence[int] = DEFAULT_SIZE_SET) -> int:
    """Quantize a region extent to the smallest size in ``size_set`` >= extent.

    Regions larger than the largest size are *downsampled* to it, exactly as
    the paper does for regions above 512 px ("very large objects are easy to
    be detected").
    """
    if not size_set:
        raise ValueError("size_set must be non-empty")
    # Called once per region per frame with the same handful of size
    # sets; memoize the sort and binary-search instead of a linear scan.
    ordered = _ordered_sizes(tuple(size_set))
    idx = bisect_left(ordered, extent)
    return ordered[idx] if idx < len(ordered) else ordered[-1]


@lru_cache(maxsize=None)
def _ordered_sizes(size_set: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(sorted(size_set))


def quantized_region(
    box: BBox,
    size_set: Sequence[int] = DEFAULT_SIZE_SET,
    margin: float = 8.0,
) -> Tuple[BBox, int]:
    """Expand ``box`` by ``margin`` and square it up to a quantized size.

    Returns the square search region centred on the object together with its
    quantized target size. The region is what the simulated detector
    inspects on regular frames; the target size is the batching key.
    """
    grown = box.expand(margin)
    size = quantize_size(grown.long_side, size_set)
    cx, cy = grown.center
    return BBox.from_xywh(cx, cy, float(size), float(size)), size


def pairwise_iou_matrix(
    boxes_a: Sequence[BBox], boxes_b: Sequence[BBox]
) -> List[List[float]]:
    """Dense IoU matrix between two box lists (rows: a, cols: b)."""
    return [[a.iou(b) for b in boxes_b] for a in boxes_a]
