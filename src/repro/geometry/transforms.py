"""Planar projective transforms.

Provides the homography machinery used both by the camera projection model
(world ground plane -> image plane) and by the *Homography* baseline of the
paper's Figure 11, estimated from point correspondences with the normalized
Direct Linear Transform (DLT).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


class Homography:
    """A 3x3 planar projective transform acting on 2D points."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise ValueError(f"homography must be 3x3, got {matrix.shape}")
        if abs(matrix[2, 2]) < 1e-15:
            raise ValueError("homography matrix has a vanishing scale element")
        self.matrix = matrix / matrix[2, 2]

    def apply(self, x: float, y: float) -> Point:
        """Map a single point; raises when the point maps to infinity."""
        vec = self.matrix @ np.array([x, y, 1.0])
        if abs(vec[2]) < 1e-12:
            raise ValueError(f"point ({x}, {y}) maps to infinity")
        return (float(vec[0] / vec[2]), float(vec[1] / vec[2]))

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Map an ``(n, 2)`` array of points; rows mapping to infinity raise."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("expected an (n, 2) array of points")
        hom = np.hstack([pts, np.ones((len(pts), 1))])
        mapped = hom @ self.matrix.T
        w = mapped[:, 2]
        if np.any(np.abs(w) < 1e-12):
            raise ValueError("some points map to infinity")
        return mapped[:, :2] / w[:, None]

    def inverse(self) -> "Homography":
        """The inverse transform (maps target points back to source)."""
        return Homography(np.linalg.inv(self.matrix))

    def compose(self, other: "Homography") -> "Homography":
        """Return the transform that applies ``other`` first, then ``self``."""
        return Homography(self.matrix @ other.matrix)

    @classmethod
    def identity(cls) -> "Homography":
        return cls(np.eye(3))

    @classmethod
    def fit(cls, src: Sequence[Point], dst: Sequence[Point]) -> "Homography":
        """Estimate a homography from >= 4 correspondences via normalized DLT.

        This is the estimation procedure behind the paper's *Homography*
        regression baseline (their reference [20]).
        """
        src_arr = np.asarray(src, dtype=float)
        dst_arr = np.asarray(dst, dtype=float)
        if src_arr.shape != dst_arr.shape or src_arr.ndim != 2 or src_arr.shape[1] != 2:
            raise ValueError("src and dst must be matching (n, 2) arrays")
        n = len(src_arr)
        if n < 4:
            raise ValueError(f"homography needs >= 4 correspondences, got {n}")

        t_src, src_n = _normalize(src_arr)
        t_dst, dst_n = _normalize(dst_arr)

        rows = []
        for (x, y), (u, v) in zip(src_n, dst_n):
            rows.append([-x, -y, -1, 0, 0, 0, u * x, u * y, u])
            rows.append([0, 0, 0, -x, -y, -1, v * x, v * y, v])
        a = np.asarray(rows)
        _, _, vt = np.linalg.svd(a)
        h_norm = vt[-1].reshape(3, 3)
        matrix = np.linalg.inv(t_dst) @ h_norm @ t_src
        if abs(matrix[2, 2]) < 1e-15:
            raise ValueError("degenerate correspondences: cannot fit homography")
        return cls(matrix)


def _normalize(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Hartley normalization: zero mean, mean distance sqrt(2)."""
    centroid = points.mean(axis=0)
    shifted = points - centroid
    mean_dist = np.mean(np.linalg.norm(shifted, axis=1))
    scale = np.sqrt(2.0) / mean_dist if mean_dist > 1e-12 else 1.0
    t = np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )
    return t, shifted * scale
