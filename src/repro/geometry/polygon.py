"""Convex polygons on the ground plane.

Camera fields of view are modelled as convex polygons in world (metre)
coordinates. The multi-camera rig uses polygon intersection to compute view
overlaps, and the distributed BALB stage rasterizes polygons into cell
masks.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Sequence, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class ConvexPolygon:
    """A convex polygon with counter-clockwise vertices.

    Vertices are normalized to counter-clockwise order at construction so
    that clipping and containment work regardless of the input winding.
    """

    vertices: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        if _signed_area(self.vertices) < 0:
            object.__setattr__(self, "vertices", tuple(reversed(self.vertices)))

    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        return abs(_signed_area(self.vertices))

    @property
    def centroid(self) -> Point:
        sx = sum(v[0] for v in self.vertices)
        sy = sum(v[1] for v in self.vertices)
        n = len(self.vertices)
        return (sx / n, sy / n)

    def contains(self, x: float, y: float, eps: float = 1e-9) -> bool:
        """True when ``(x, y)`` is inside or on the boundary."""
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            ax, ay = verts[i]
            bx, by = verts[(i + 1) % n]
            cross = (bx - ax) * (y - ay) - (by - ay) * (x - ax)
            if cross < -eps:
                return False
        return True

    def intersect(self, other: "ConvexPolygon") -> "ConvexPolygon | None":
        """Sutherland–Hodgman clip of ``self`` against ``other``.

        Returns ``None`` when the intersection is empty or degenerate.
        """
        output: List[Point] = list(self.vertices)
        clip = other.vertices
        n = len(clip)
        for i in range(n):
            if not output:
                return None
            cp1 = clip[i]
            cp2 = clip[(i + 1) % n]
            input_pts = output
            output = []
            for j, cur in enumerate(input_pts):
                prev = input_pts[j - 1]
                cur_in = _inside_edge(cur, cp1, cp2)
                prev_in = _inside_edge(prev, cp1, cp2)
                if cur_in:
                    if not prev_in:
                        inter = _edge_intersection(prev, cur, cp1, cp2)
                        if inter is not None:
                            output.append(inter)
                    output.append(cur)
                elif prev_in:
                    inter = _edge_intersection(prev, cur, cp1, cp2)
                    if inter is not None:
                        output.append(inter)
        cleaned = _dedupe(output)
        if len(cleaned) < 3:
            return None
        poly = ConvexPolygon(tuple(cleaned))
        if poly.area < 1e-12:
            return None
        return poly

    def overlap_area(self, other: "ConvexPolygon") -> float:
        """Area of the intersection with ``other`` (0 when disjoint)."""
        inter = self.intersect(other)
        return inter.area if inter is not None else 0.0

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounds as ``(x_min, y_min, x_max, y_max)``."""
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------
    @classmethod
    def rectangle(cls, x1: float, y1: float, x2: float, y2: float) -> "ConvexPolygon":
        if x2 <= x1 or y2 <= y1:
            raise ValueError("rectangle corners must satisfy x1 < x2, y1 < y2")
        return cls(((x1, y1), (x2, y1), (x2, y2), (x1, y2)))

    @classmethod
    def sector(
        cls,
        apex: Point,
        heading_rad: float,
        half_angle_rad: float,
        radius: float,
        arc_segments: int = 8,
    ) -> "ConvexPolygon":
        """A camera-style view cone: apex + circular arc approximated by a fan.

        ``half_angle_rad`` must stay below pi/2 for the fan to be convex.
        """
        if not 0 < half_angle_rad < math.pi / 2:
            raise ValueError("half_angle_rad must be in (0, pi/2) for convexity")
        if radius <= 0:
            raise ValueError("radius must be positive")
        pts: List[Point] = [apex]
        for k in range(arc_segments + 1):
            a = heading_rad - half_angle_rad + (2 * half_angle_rad) * k / arc_segments
            pts.append((apex[0] + radius * math.cos(a), apex[1] + radius * math.sin(a)))
        return cls(tuple(pts))


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _signed_area(verts: Sequence[Point]) -> float:
    total = 0.0
    n = len(verts)
    for i in range(n):
        x1, y1 = verts[i]
        x2, y2 = verts[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def _inside_edge(p: Point, a: Point, b: Point) -> bool:
    """True when p is on the left of (or on) the directed edge a->b (CCW)."""
    return (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0]) >= -1e-12


def _edge_intersection(p1: Point, p2: Point, a: Point, b: Point) -> Point | None:
    """Intersection of segment p1-p2 with the infinite line through a-b."""
    dx1 = p2[0] - p1[0]
    dy1 = p2[1] - p1[1]
    dx2 = b[0] - a[0]
    dy2 = b[1] - a[1]
    denom = dx1 * dy2 - dy1 * dx2
    if abs(denom) < 1e-15:
        return None
    t = ((a[0] - p1[0]) * dy2 - (a[1] - p1[1]) * dx2) / denom
    return (p1[0] + t * dx1, p1[1] + t * dy1)


def _dedupe(pts: Sequence[Point], eps: float = 1e-9) -> List[Point]:
    out: List[Point] = []
    for p in pts:
        if not out or (abs(p[0] - out[-1][0]) > eps or abs(p[1] - out[-1][1]) > eps):
            out.append(p)
    if len(out) > 1 and abs(out[0][0] - out[-1][0]) <= eps and abs(out[0][1] - out[-1][1]) <= eps:
        out.pop()
    return out
