"""Geometry primitives: boxes, convex polygons, and planar transforms."""

from repro.geometry.box import (
    DEFAULT_SIZE_SET,
    BBox,
    iou_matrix,
    pairwise_iou_matrix,
    quantize_size,
    quantized_region,
)
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.transforms import Homography

__all__ = [
    "BBox",
    "ConvexPolygon",
    "Homography",
    "DEFAULT_SIZE_SET",
    "iou_matrix",
    "pairwise_iou_matrix",
    "quantize_size",
    "quantized_region",
]
