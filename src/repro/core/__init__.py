"""Core contribution: the MVS problem and the BALB scheduling algorithm."""

from repro.core.balb import BALBResult, balb_central, order_objects
from repro.core.bandwidth import (
    UploadPlan,
    all_cameras_upload_mbps,
    frame_upload_mbps,
    min_view_cover,
    upload_plan_for_instance,
)
from repro.core.baselines import (
    full_frame_latencies,
    greedy_min_latency_assignment,
    independent_latencies,
    unordered_balb_assignment,
)
from repro.core.distributed import DistributedPolicy
from repro.core.energy import (
    DEFAULT_ENERGY_MODELS,
    EnergyModel,
    assignment_energy_mj,
    energy_aware_assignment,
    energy_models_for,
)
from repro.core.hardness import bins_fit, mvs_from_bin_packing
from repro.core.masks import (
    CameraMask,
    build_camera_masks,
    capacity_owner,
    priority_owner,
)
from repro.core.optimal import approximation_ratio, optimal_assignment
from repro.core.problem import (
    Assignment,
    MVSInstance,
    SchedObject,
    camera_latency,
    camera_size_counts,
    is_feasible,
    latency_profile,
    system_latency,
)
from repro.core.quality import (
    QualityResult,
    qualities_from_boxes,
    quality_aware_central,
    view_quality,
)
from repro.core.redundancy import (
    MultiAssignment,
    RedundantResult,
    balb_redundant,
    is_feasible_multi,
    multi_camera_latency,
    multi_system_latency,
)

__all__ = [
    "MVSInstance",
    "SchedObject",
    "Assignment",
    "is_feasible",
    "camera_latency",
    "camera_size_counts",
    "system_latency",
    "latency_profile",
    "BALBResult",
    "balb_central",
    "order_objects",
    "DistributedPolicy",
    "CameraMask",
    "build_camera_masks",
    "priority_owner",
    "capacity_owner",
    "full_frame_latencies",
    "independent_latencies",
    "greedy_min_latency_assignment",
    "unordered_balb_assignment",
    "optimal_assignment",
    "approximation_ratio",
    "mvs_from_bin_packing",
    "bins_fit",
    "UploadPlan",
    "min_view_cover",
    "upload_plan_for_instance",
    "frame_upload_mbps",
    "all_cameras_upload_mbps",
    "EnergyModel",
    "DEFAULT_ENERGY_MODELS",
    "energy_models_for",
    "assignment_energy_mj",
    "energy_aware_assignment",
    "QualityResult",
    "view_quality",
    "qualities_from_boxes",
    "quality_aware_central",
    "MultiAssignment",
    "RedundantResult",
    "balb_redundant",
    "is_feasible_multi",
    "multi_camera_latency",
    "multi_system_latency",
]
