"""Guarded compiled kernels for scheduler inner loops.

The BALB central stage's packing loop is pure scalar bookkeeping —
exactly the shape a JIT compiles well. This module holds the flat-array
formulation of that loop and, when available and requested, its
numba-compiled twin. Kernel selection happens once at import time from
the ``REPRO_KERNEL`` environment variable:

``python``
    Always use the pure-Python reference path (the dict-based loop in
    :mod:`repro.core.balb`); never import numba.
``numba``
    Require the compiled kernel; raise ``ImportError`` if numba is not
    installed.
``auto`` (default, also when unset/empty)
    Use numba when importable, fall back to pure Python otherwise.

Both paths implement the same algorithm over the same iteration order
with the same strict comparisons, so they produce identical schedules
bit for bit; ``tests/core/test_balb_kernel.py`` proves the equivalence
on a property-test corpus. :func:`balb_pack_loop` is deliberately plain
Python with no numpy calls inside the loop: it runs unmodified under
the interpreter and under ``numba.njit``.
"""

from __future__ import annotations

import os

_REQUESTED = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
if _REQUESTED not in ("auto", "python", "numba"):
    raise ValueError(
        f"REPRO_KERNEL={_REQUESTED!r} is not a known kernel; "
        "use 'python', 'numba' or 'auto'"
    )

_njit = None
if _REQUESTED in ("auto", "numba"):
    try:
        from numba import njit as _njit  # type: ignore[no-redef]
    except ImportError:
        _njit = None
        if _REQUESTED == "numba":
            raise ImportError(
                "REPRO_KERNEL=numba but numba is not installed; "
                "install numba or select REPRO_KERNEL=python"
            ) from None


def balb_pack_loop(
    cov_off,
    cov_cams,
    cov_sizes,
    t_size,
    limits,
    open_slots,
    latencies,
    batch_aware,
    chosen_cam,
):
    """Algorithm 1's packing loop over flattened coverage arrays.

    Object ``j``'s coverage occupies ``cov_cams[cov_off[j]:cov_off[j+1]]``
    (camera indices, ascending — the reference's ``sorted_coverage``
    order) with the matching quantized-size indices in ``cov_sizes``.
    ``t_size``/``limits`` are dense ``(n_cams, n_sizes)`` lookup tables;
    ``open_slots`` (int64, zero-initialized) and ``latencies`` (float64,
    seeded with each camera's starting latency) are updated in place.
    ``chosen_cam[j]`` receives the index of the camera object ``j`` was
    assigned to.

    Mirrors the dict-based loop in :mod:`repro.core.balb` statement for
    statement: the relative-capacity and latency argmins keep the same
    scan order and the same strict ``>``/``<`` tie behaviour, and the
    float arithmetic (one int/int division, one float add per opened
    batch) is grouped identically — so the assignment, latencies and
    priority order all come out bit-identical.
    """
    inf = float("inf")
    n_objects = chosen_cam.shape[0]
    for j in range(n_objects):
        lo = cov_off[j]
        hi = cov_off[j + 1]
        chosen = -1
        chosen_size = -1
        if batch_aware:
            best_capacity = -1.0
            for p in range(lo, hi):
                cam = cov_cams[p]
                size = cov_sizes[p]
                slots = open_slots[cam, size]
                if slots > 0:
                    capacity = slots / limits[cam, size]
                    if capacity > best_capacity:
                        best_capacity = capacity
                        chosen = cam
                        chosen_size = size
        if chosen >= 0:
            open_slots[chosen, chosen_size] -= 1
        else:
            best_latency = inf
            for p in range(lo, hi):
                cam = cov_cams[p]
                size = cov_sizes[p]
                candidate = latencies[cam] + t_size[cam, size]
                if candidate < best_latency:
                    best_latency = candidate
                    chosen = cam
                    chosen_size = size
            latencies[chosen] += t_size[chosen, chosen_size]
            open_slots[chosen, chosen_size] += limits[chosen, chosen_size] - 1
        chosen_cam[j] = chosen


#: Name of the selected kernel ("python" or "numba").
KERNEL = "numba" if _njit is not None else "python"

#: The packing loop under the selected kernel. Identical semantics on
#: both paths; only the execution engine differs.
PACK_LOOP = (
    _njit(cache=True)(balb_pack_loop) if _njit is not None else balb_pack_loop
)
