"""Instance-level scheduling baselines (Section IV-C/D).

* **Full** — every camera runs full-frame inspection on every frame; the
  latency of each camera is simply ``t_i^full``.
* **BALB-Ind** — no cross-camera coordination: every camera tracks every
  object it can see (each object is inspected by all cameras in its
  coverage set, with batching).
* **Greedy min-latency** — an ablation of BALB without batch awareness.
* The **Static Partitioning** baseline needs object *positions* and lives
  in the pipeline (it is mask driven); see
  :func:`repro.core.masks.capacity_owner`.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.balb import balb_central
from repro.core.problem import Assignment, MVSInstance


def full_frame_latencies(instance: MVSInstance) -> Dict[int, float]:
    """Per-camera latency under full-frame inspection of every frame."""
    return {cam: instance.profiles[cam].t_full for cam in instance.camera_ids}


def independent_latencies(
    instance: MVSInstance, include_full_frame: bool = False
) -> Dict[int, float]:
    """Per-camera latency when every camera tracks all objects it sees.

    This is BALB-Ind at the instance level: slicing + batching happen, but
    overlapping objects are redundantly inspected by every covering
    camera.
    """
    out: Dict[int, float] = {}
    for cam in instance.camera_ids:
        profile = instance.profiles[cam]
        counts: Dict[int, int] = {}
        for obj in instance.objects:
            if cam in obj.coverage:
                size = obj.size_on(cam)
                counts[size] = counts.get(size, 0) + 1
        total = profile.t_full if include_full_frame else 0.0
        for size, count in counts.items():
            total += math.ceil(count / profile.batch_limit(size)) * profile.t_size(
                size
            )
        out[cam] = total
    return out


def greedy_min_latency_assignment(
    instance: MVSInstance, include_full_frame: bool = True
) -> Assignment:
    """Ablation: BALB without batch-awareness (always 'open a new batch').

    Each object goes to the coverage camera minimizing the updated
    latency, ignoring incomplete-batch reuse. Equivalent to
    ``balb_central(batch_aware=False)``.
    """
    return balb_central(
        instance,
        include_full_frame=include_full_frame,
        batch_aware=False,
    ).assignment


def unordered_balb_assignment(
    instance: MVSInstance, include_full_frame: bool = True
) -> Assignment:
    """Ablation: BALB without the coverage-size object ordering."""
    return balb_central(
        instance,
        include_full_frame=include_full_frame,
        coverage_ordered=False,
    ).assignment
