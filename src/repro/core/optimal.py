"""Exact MVS solver for small instances.

Branch-and-bound over per-object camera choices, used to measure BALB's
approximation quality (the MVS problem is strongly NP-hard, Claim 1, so
this is only tractable for small N). Objects are explored in the same
least-flexible-first order BALB uses, which tightens pruning.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.core.balb import balb_central, order_objects
from repro.core.problem import Assignment, MVSInstance, system_latency


def optimal_assignment(
    instance: MVSInstance,
    include_full_frame: bool = True,
    max_objects: int = 14,
) -> Tuple[Assignment, float]:
    """Exhaustively find a min-system-latency assignment.

    Raises ``ValueError`` for instances above ``max_objects`` to protect
    against accidental exponential blowups.
    """
    n = len(instance.objects)
    if n > max_objects:
        raise ValueError(
            f"instance has {n} objects; optimal solver capped at {max_objects}"
        )
    if n == 0:
        base = {
            cam: (instance.profiles[cam].t_full if include_full_frame else 0.0)
            for cam in instance.camera_ids
        }
        return {}, max(base.values())

    # Seed the bound with BALB's solution: branch-and-bound then only
    # explores assignments that could beat it.
    seed = balb_central(instance, include_full_frame=include_full_frame)
    best_assignment = dict(seed.assignment)
    best_latency = system_latency(
        instance, best_assignment, include_full_frame=include_full_frame
    )

    ordered = order_objects(list(instance.objects))
    base_latency = {
        cam: (instance.profiles[cam].t_full if include_full_frame else 0.0)
        for cam in instance.camera_ids
    }
    counts: Dict[int, Dict[int, int]] = {cam: {} for cam in instance.camera_ids}
    current: Assignment = {}

    def cam_latency(cam: int) -> float:
        profile = instance.profiles[cam]
        total = base_latency[cam]
        for size, count in counts[cam].items():
            total += math.ceil(count / profile.batch_limit(size)) * profile.t_size(
                size
            )
        return total

    def recurse(idx: int, current_max: float) -> None:
        nonlocal best_assignment, best_latency
        if current_max >= best_latency:
            return  # prune: already no better than the incumbent
        if idx == len(ordered):
            best_latency = current_max
            best_assignment = dict(current)
            return
        obj = ordered[idx]
        for cam in sorted(obj.coverage):
            size = obj.size_on(cam)
            counts[cam][size] = counts[cam].get(size, 0) + 1
            current[obj.key] = cam
            recurse(idx + 1, max(current_max, cam_latency(cam)))
            counts[cam][size] -= 1
            if counts[cam][size] == 0:
                del counts[cam][size]
            del current[obj.key]

    recurse(0, max(base_latency.values()))
    return best_assignment, best_latency


def approximation_ratio(
    instance: MVSInstance, include_full_frame: bool = True
) -> float:
    """BALB's system latency divided by the optimum (>= 1)."""
    result = balb_central(instance, include_full_frame=include_full_frame)
    balb_lat = system_latency(
        instance, result.assignment, include_full_frame=include_full_frame
    )
    _, opt_lat = optimal_assignment(
        instance, include_full_frame=include_full_frame
    )
    if opt_lat <= 0:
        raise RuntimeError("optimal latency must be positive")
    return balb_lat / opt_lat
