"""The bin-packing reduction behind Claim 1 (strong NP-hardness of MVS).

The paper proves MVS strongly NP-hard by restricting it to identical
machine scheduling and reducing bin packing to the decision version. This
module makes the reduction executable: it converts a bin-packing instance
into an MVS instance whose optimal system latency answers the bin-packing
question, which the tests verify on small cases.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.problem import MVSInstance, SchedObject
from repro.devices.profiler import DeviceProfile


def mvs_from_bin_packing(
    item_sizes: Sequence[float], n_bins: int
) -> MVSInstance:
    """Encode bin packing as MVS, per the Claim 1 construction.

    * each bin becomes one camera (identical processing speed),
    * batching is disabled (batch limit 1 everywhere),
    * every object is visible from all cameras,
    * each item becomes an object whose execution latency equals its size
      (distinct sizes map to distinct entries of the size set).

    With this encoding, ``optimal system latency <= capacity`` iff the
    items fit into ``n_bins`` bins of that capacity.
    """
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if not item_sizes:
        raise ValueError("need at least one item")
    if any(s <= 0 for s in item_sizes):
        raise ValueError("item sizes must be positive")

    # Distinct item sizes become the quantized size set. Sizes are floats;
    # map them to integer keys to satisfy the DeviceProfile interface.
    distinct = sorted(set(float(s) for s in item_sizes))
    size_key: Dict[float, int] = {s: idx + 1 for idx, s in enumerate(distinct)}
    size_set = tuple(size_key[s] for s in distinct)

    profiles = {
        cam: DeviceProfile(
            device_name=f"bin-{cam}",
            size_set=size_set,
            # t_full is irrelevant to the reduction (use include_full_frame
            # =False when solving); it just must be positive.
            t_full=1.0,
            batch_latency_ms={size_key[s]: s for s in distinct},
            batch_limits={size_key[s]: 1 for s in distinct},
        )
        for cam in range(n_bins)
    }
    objects = [
        SchedObject(
            key=j,
            target_sizes={cam: size_key[float(s)] for cam in range(n_bins)},
        )
        for j, s in enumerate(item_sizes)
    ]
    return MVSInstance(profiles=profiles, objects=tuple(objects))


def bins_fit(
    item_sizes: Sequence[float], n_bins: int, capacity: float
) -> bool:
    """Exact bin-packing feasibility by exhaustive search (small inputs).

    Reference implementation used to validate the reduction in tests.
    """
    items = sorted((float(s) for s in item_sizes), reverse=True)
    if any(s > capacity for s in items):
        return False
    loads = [0.0] * n_bins

    def place(idx: int) -> bool:
        if idx == len(items):
            return True
        seen: set = set()
        for b in range(n_bins):
            if loads[b] in seen:  # symmetry pruning
                continue
            seen.add(loads[b])
            if loads[b] + items[idx] <= capacity + 1e-9:
                loads[b] += items[idx]
                if place(idx + 1):
                    return True
                loads[b] -= items[idx]
        return False

    return place(0)
