"""Centralized-processing extension (paper Section V).

When cameras have no usable GPU, frames must be offloaded to an edge
server and the bottleneck becomes *network bandwidth*. The paper sketches
the multi-view answer: "scheduling only one camera to upload its images or
... uploading the minimum number of views that offers complete coverage of
all objects".

This module implements that formulation: choose the smallest set of
cameras whose combined views cover every object (weighted set cover,
solved greedily with the classical ln(n) guarantee), and account the
uplink bandwidth the selection consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple

from repro.core.problem import MVSInstance


@dataclass(frozen=True)
class UploadPlan:
    """Result of the minimum-view-cover selection."""

    cameras: Tuple[int, ...]  # selected cameras, in selection order
    covered_objects: FrozenSet[int]
    uncovered_objects: FrozenSet[int]  # objects no camera sees
    total_upload_mbps: float

    @property
    def n_cameras(self) -> int:
        return len(self.cameras)


def frame_upload_mbps(
    frame_size: Tuple[int, int],
    fps: float = 10.0,
    bits_per_pixel: float = 0.15,
) -> float:
    """Compressed video bitrate of one camera's stream in Mbps.

    ``bits_per_pixel`` ~0.1-0.2 is typical for H.264 at surveillance
    quality.
    """
    if fps <= 0 or bits_per_pixel <= 0:
        raise ValueError("fps and bits_per_pixel must be positive")
    w, h = frame_size
    return w * h * bits_per_pixel * fps / 1e6


def min_view_cover(
    coverage_sets: Mapping[int, Sequence[int]],
    upload_costs: Mapping[int, float],
) -> UploadPlan:
    """Greedy weighted set cover: cheapest coverage of all objects.

    ``coverage_sets`` maps object key -> cameras that see it;
    ``upload_costs`` maps camera -> Mbps of uploading its stream. Each
    round picks the camera with the lowest cost per newly covered object.
    """
    remaining = {
        key for key, cams in coverage_sets.items() if len(cams) > 0
    }
    uncovered_forever = frozenset(
        key for key, cams in coverage_sets.items() if len(cams) == 0
    )
    objects_by_camera: Dict[int, set] = {}
    for key, cams in coverage_sets.items():
        for cam in cams:
            objects_by_camera.setdefault(cam, set()).add(key)

    chosen: List[int] = []
    total_cost = 0.0
    while remaining:
        best_cam = None
        best_ratio = float("inf")
        for cam, objs in objects_by_camera.items():
            if cam in chosen:
                continue
            gain = len(objs & remaining)
            if gain == 0:
                continue
            cost = upload_costs.get(cam, 1.0)
            ratio = cost / gain
            if ratio < best_ratio or (
                ratio == best_ratio and (best_cam is None or cam < best_cam)
            ):
                best_ratio = ratio
                best_cam = cam
        if best_cam is None:
            break  # no camera can cover the rest (shouldn't happen)
        chosen.append(best_cam)
        total_cost += upload_costs.get(best_cam, 1.0)
        remaining -= objects_by_camera[best_cam]

    covered = frozenset(
        key
        for key, cams in coverage_sets.items()
        if any(cam in chosen for cam in cams)
    )
    return UploadPlan(
        cameras=tuple(chosen),
        covered_objects=covered,
        uncovered_objects=uncovered_forever,
        total_upload_mbps=total_cost,
    )


def upload_plan_for_instance(
    instance: MVSInstance,
    frame_sizes: Mapping[int, Tuple[int, int]],
    fps: float = 10.0,
) -> UploadPlan:
    """Minimum view cover for an MVS instance's current object set."""
    coverage = {
        obj.key: sorted(obj.coverage) for obj in instance.objects
    }
    costs = {
        cam: frame_upload_mbps(frame_sizes[cam], fps=fps)
        for cam in instance.camera_ids
    }
    return min_view_cover(coverage, costs)


def all_cameras_upload_mbps(
    frame_sizes: Mapping[int, Tuple[int, int]], fps: float = 10.0
) -> float:
    """Baseline: every camera streams (the cost min-cover avoids)."""
    return sum(
        frame_upload_mbps(size, fps=fps) for size in frame_sizes.values()
    )
