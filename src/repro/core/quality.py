"""Quality-aware scheduling extension (paper Section V).

Two of the paper's future-work notes point the same way: a camera's view
of an object has a *quality* (closer objects are easier to classify;
viewing distance and angle matter), and the scheduler should "optimize the
quality-efficiency tradeoff, instead of purely minimizing the frame
processing latency".

This module provides:

* :func:`view_quality` — a simple, monotone quality score for a camera's
  view of an object (pixel size saturating toward 1.0),
* :func:`quality_aware_central` — a generalization of the central stage
  whose camera choice blends latency balancing with view quality through a
  single trade-off knob ``alpha`` (0 = pure BALB, 1 = pure best-view).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, Mapping, Tuple

from repro.core.balb import order_objects
from repro.core.problem import Assignment, MVSInstance, is_feasible

QualityMap = Mapping[Tuple[int, int], float]
"""``{(object_key, camera_id): quality in [0, 1]}``."""


def view_quality(box_long_side_px: float, saturation_px: float = 250.0) -> float:
    """Quality of a view from the object's pixel extent.

    Monotone in apparent size and saturating: a 250 px object is
    essentially as classifiable as a larger one, while a 25 px object is
    poor. This captures the paper's "objects closer to the camera are
    generally easier to classify".
    """
    if box_long_side_px < 0:
        raise ValueError("box extent must be non-negative")
    if saturation_px <= 0:
        raise ValueError("saturation_px must be positive")
    return 1.0 - math.exp(-3.0 * box_long_side_px / saturation_px)


def qualities_from_boxes(
    boxes: Mapping[Tuple[int, int], float]
) -> Dict[Tuple[int, int], float]:
    """Convenience: map ``{(key, cam): long_side_px}`` to quality scores."""
    return {pair: view_quality(extent) for pair, extent in boxes.items()}


@dataclass
class QualityResult:
    """Output of the quality-aware central stage."""

    assignment: Assignment
    camera_latencies: Dict[int, float]
    mean_quality: float
    min_quality: float


def quality_aware_central(
    instance: MVSInstance,
    qualities: QualityMap,
    alpha: float = 0.3,
    include_full_frame: bool = True,
) -> QualityResult:
    """Latency-balanced assignment with a quality trade-off.

    Camera choice minimizes ``(1 - alpha) * normalized_latency -
    alpha * quality``: at ``alpha = 0`` this is the non-batch-aware BALB
    placement rule; at ``alpha = 1`` every object goes to its best view
    regardless of load. Unknown (object, camera) pairs default to quality
    0.5.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    latencies: Dict[int, float] = {
        cam: (instance.profiles[cam].t_full if include_full_frame else 0.0)
        for cam in instance.camera_ids
    }
    counts: Dict[int, Dict[int, int]] = {cam: {} for cam in instance.camera_ids}
    assignment: Assignment = {}
    chosen_quality: Dict[int, float] = {}

    def latency_with(cam: int, size: int) -> float:
        profile = instance.profiles[cam]
        counts[cam][size] = counts[cam].get(size, 0) + 1
        total = latencies[cam]
        batched = 0.0
        for s, count in counts[cam].items():
            batched += math.ceil(
                count / profile.batch_limit(s)
            ) * profile.t_size(s)
        counts[cam][size] -= 1
        if counts[cam][size] == 0:
            del counts[cam][size]
        return total + batched

    # Normalize latency against the worst single-camera horizon cost so
    # the two objectives share a scale.
    norm = max(p.t_full for p in instance.profiles.values()) or 1.0

    for obj in order_objects(list(instance.objects)):
        best_cam = -1
        best_score = float("inf")
        for cam in sorted(obj.coverage):
            size = obj.size_on(cam)
            quality = qualities.get((obj.key, cam), 0.5)
            score = (1.0 - alpha) * (latency_with(cam, size) / norm) - (
                alpha * quality
            )
            if score < best_score:
                best_score = score
                best_cam = cam
        size = obj.size_on(best_cam)
        counts[best_cam][size] = counts[best_cam].get(size, 0) + 1
        assignment[obj.key] = best_cam
        chosen_quality[obj.key] = qualities.get((obj.key, best_cam), 0.5)

    # Fold batched costs into the final latency bookkeeping.
    final_latencies = {}
    for cam in instance.camera_ids:
        profile = instance.profiles[cam]
        total = latencies[cam]
        for s, count in counts[cam].items():
            total += math.ceil(
                count / profile.batch_limit(s)
            ) * profile.t_size(s)
        final_latencies[cam] = total

    assert is_feasible(instance, assignment) or not instance.objects
    values = list(chosen_quality.values())
    return QualityResult(
        assignment=assignment,
        camera_latencies=final_latencies,
        mean_quality=sum(values) / len(values) if values else 1.0,
        min_quality=min(values) if values else 1.0,
    )
