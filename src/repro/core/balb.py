"""Central stage of the Batch-Aware Latency-Balanced algorithm.

A faithful implementation of the paper's Algorithm 1:

1. Initialize each camera's running latency to its full-frame time
   ``t_i^full`` (the key-frame cost it just paid).
2. Visit objects by non-decreasing coverage-set size, ties broken in
   favour of larger target size — least-flexible objects first.
3. For each object, prefer a camera with an *incomplete batch* of the
   object's target size (choose the one with the largest relative batch
   capacity, Definition 4); filling an incomplete batch is free under the
   paper's latency model.
4. Otherwise open a new batch on the camera minimizing
   ``L_i + t_i^{s_ij}`` (not merely min ``L_i`` — heterogeneous devices
   make those different), and charge that camera ``t_i^{s_ij}``.

Complexity: max(O(N log N), O(M N)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import _kernels
from repro.core.problem import Assignment, MVSInstance, SchedObject
from repro.obs.trace import get_tracer


@dataclass
class BALBResult:
    """Output of the central stage."""

    assignment: Assignment
    camera_latencies: Dict[int, float]
    priority_order: Tuple[int, ...]  # camera ids, increasing assigned latency

    def __post_init__(self) -> None:
        # priority_of is on the distributed-stage hot path (every cell of
        # every mask per key frame); an O(n) tuple.index there is real cost.
        self._rank: Dict[int, int] = {
            cam: rank for rank, cam in enumerate(self.priority_order)
        }

    def priority_of(self, camera_id: int) -> int:
        """Rank of a camera in the priority order (0 = highest priority)."""
        try:
            return self._rank[camera_id]
        except KeyError:
            raise ValueError(
                f"camera {camera_id} is not in the priority order"
            ) from None


@dataclass
class _BatchTracker:
    """Open (incomplete) batch bookkeeping for one camera."""

    open_slots: Dict[int, int] = field(default_factory=dict)  # size -> free slots

    def has_incomplete(self, size: int) -> bool:
        return self.open_slots.get(size, 0) > 0

    def fill_slot(self, size: int) -> None:
        slots = self.open_slots.get(size, 0)
        if slots <= 0:
            raise RuntimeError(f"no incomplete batch of size {size}")
        self.open_slots[size] = slots - 1

    def open_new(self, size: int, batch_limit: int) -> None:
        # A new batch holds this object, leaving limit - 1 free slots.
        self.open_slots[size] = self.open_slots.get(size, 0) + batch_limit - 1


def order_objects(objects: List[SchedObject]) -> List[SchedObject]:
    """Algorithm 1 line 2: sort by |C_j| ascending, ties to larger size.

    The tie-break size of an object is its largest target size across its
    coverage set (bigger regions are costlier, so they are placed first).
    """
    return sorted(
        objects,
        key=lambda o: (len(o.coverage), -max(o.target_sizes.values()), o.key),
    )


def balb_central(
    instance: MVSInstance,
    include_full_frame: bool = True,
    batch_aware: bool = True,
    coverage_ordered: bool = True,
) -> BALBResult:
    """Run the central-stage BALB assignment on an MVS instance.

    ``batch_aware`` and ``coverage_ordered`` exist for the ablation
    benches: disabling them falls back to min-latency placement and
    arbitrary object order respectively.
    """
    with get_tracer().span(
        "balb.central",
        n_objects=len(instance.objects),
        n_cameras=len(instance.camera_ids),
    ):
        if _kernels.KERNEL == "numba":
            return _balb_central_kernel(
                instance, include_full_frame, batch_aware, coverage_ordered
            )
        return _balb_central(
            instance, include_full_frame, batch_aware, coverage_ordered
        )


def _balb_central(
    instance: MVSInstance,
    include_full_frame: bool,
    batch_aware: bool,
    coverage_ordered: bool,
) -> BALBResult:
    latencies: Dict[int, float] = {
        cam: (instance.profiles[cam].t_full if include_full_frame else 0.0)
        for cam in instance.camera_ids
    }
    trackers: Dict[int, _BatchTracker] = {
        cam: _BatchTracker() for cam in instance.camera_ids
    }
    assignment: Assignment = {}

    ordered = (
        order_objects(list(instance.objects))
        if coverage_ordered
        else sorted(instance.objects, key=lambda o: o.key)
    )
    for obj in ordered:
        chosen: Optional[int] = None
        if batch_aware:
            chosen = _camera_with_incomplete_batch(instance, trackers, obj)
        if chosen is not None:
            trackers[chosen].fill_slot(obj.size_on(chosen))
        else:
            chosen = _camera_minimizing_updated_latency(instance, latencies, obj)
            size = obj.size_on(chosen)
            profile = instance.profiles[chosen]
            latencies[chosen] += profile.t_size(size)
            trackers[chosen].open_new(size, profile.batch_limit(size))
        assignment[obj.key] = chosen

    priority = tuple(
        sorted(instance.camera_ids, key=lambda cam: (latencies[cam], cam))
    )
    return BALBResult(
        assignment=assignment,
        camera_latencies=dict(latencies),
        priority_order=priority,
    )


def _balb_central_kernel(
    instance: MVSInstance,
    include_full_frame: bool,
    batch_aware: bool,
    coverage_ordered: bool,
) -> BALBResult:
    """The central stage over the flat-array packing kernel.

    Flattens the instance into the arrays :func:`_kernels.balb_pack_loop`
    consumes, runs the selected kernel, and rebuilds the dict-shaped
    result. The flattening preserves the reference loop's visit and scan
    orders exactly, so the output is bit-identical to
    :func:`_balb_central` (see tests/core/test_balb_kernel.py).
    """
    cam_ids = instance.camera_ids
    cam_index = {cam: i for i, cam in enumerate(cam_ids)}
    ordered = (
        order_objects(list(instance.objects))
        if coverage_ordered
        else sorted(instance.objects, key=lambda o: o.key)
    )

    # Dense per-(camera, size) lookup tables over the sizes this
    # instance actually uses; table cells are filled through the same
    # profile calls the reference loop makes, for the same pairs.
    size_index: Dict[Tuple[int, int], int] = {}
    cov_off = np.zeros(len(ordered) + 1, dtype=np.int64)
    flat_cams: List[int] = []
    flat_sizes: List[int] = []
    sizes_per_cam: Dict[int, Dict[int, int]] = {cam: {} for cam in cam_ids}
    for j, obj in enumerate(ordered):
        for cam in obj.sorted_coverage:
            size = obj.size_on(cam)
            key = (cam, size)
            idx = size_index.get(key)
            if idx is None:
                per_cam = sizes_per_cam[cam]
                idx = len(per_cam)
                per_cam[size] = idx
                size_index[key] = idx
            flat_cams.append(cam_index[cam])
            flat_sizes.append(idx)
        cov_off[j + 1] = len(flat_cams)

    n_sizes = max((len(v) for v in sizes_per_cam.values()), default=0) or 1
    t_size = np.zeros((len(cam_ids), n_sizes))
    limits = np.ones((len(cam_ids), n_sizes), dtype=np.int64)
    for cam, per_cam in sizes_per_cam.items():
        profile = instance.profiles[cam]
        for size, idx in per_cam.items():
            t_size[cam_index[cam], idx] = profile.t_size(size)
            limits[cam_index[cam], idx] = profile.batch_limit(size)

    latencies = np.array(
        [
            instance.profiles[cam].t_full if include_full_frame else 0.0
            for cam in cam_ids
        ]
    )
    open_slots = np.zeros((len(cam_ids), n_sizes), dtype=np.int64)
    chosen_cam = np.empty(len(ordered), dtype=np.int64)
    _kernels.PACK_LOOP(
        cov_off,
        np.asarray(flat_cams, dtype=np.int64),
        np.asarray(flat_sizes, dtype=np.int64),
        t_size,
        limits,
        open_slots,
        latencies,
        batch_aware,
        chosen_cam,
    )

    assignment: Assignment = {
        obj.key: cam_ids[chosen_cam[j]] for j, obj in enumerate(ordered)
    }
    final = {cam: float(latencies[cam_index[cam]]) for cam in cam_ids}
    priority = tuple(sorted(cam_ids, key=lambda cam: (final[cam], cam)))
    return BALBResult(
        assignment=assignment,
        camera_latencies=final,
        priority_order=priority,
    )


def _camera_with_incomplete_batch(
    instance: MVSInstance,
    trackers: Dict[int, _BatchTracker],
    obj: SchedObject,
) -> Optional[int]:
    """Line 4-7: the coverage camera with the largest relative capacity in
    an incomplete batch of the object's target size, if any exists.
    """
    best_cam: Optional[int] = None
    best_capacity = -1.0
    for cam in obj.sorted_coverage:
        size = obj.size_on(cam)
        tracker = trackers[cam]
        if not tracker.has_incomplete(size):
            continue
        limit = instance.profiles[cam].batch_limit(size)
        relative_capacity = tracker.open_slots[size] / limit
        if relative_capacity > best_capacity:
            best_capacity = relative_capacity
            best_cam = cam
    return best_cam


def _camera_minimizing_updated_latency(
    instance: MVSInstance,
    latencies: Dict[int, float],
    obj: SchedObject,
) -> int:
    """Line 10: argmin over C_j of ``L_i + t_i^{s_ij}``."""
    best_cam = -1
    best_latency = float("inf")
    for cam in obj.sorted_coverage:
        candidate = latencies[cam] + instance.profiles[cam].t_size(obj.size_on(cam))
        if candidate < best_latency:
            best_latency = candidate
            best_cam = cam
    return best_cam
