"""Distributed stage of BALB (Section III-C-2).

Runs independently on every camera at every regular frame, with **no
cross-camera communication**: decisions rely only on information
synchronized at the last key frame — the camera priority order, the cell
masks, and the object-to-camera assignment. Two rules:

* **New objects** (arrived after the key frame): a camera tracks a new
  object iff it is the highest-priority camera among those covering the
  object's cell — "each camera only tracks new objects at cells that are
  unobservable from all higher priority cameras".
* **Departures**: when an object's assigned camera can no longer see it
  (tested through the synchronized masks), the highest-priority camera in
  the object's *remaining* coverage set takes over.

Every camera evaluates the same deterministic rules on the same
synchronized inputs, so their decisions are consistent without messages.
Complexity per frame: O(N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.masks import CameraMask, priority_owner
from repro.geometry.box import BBox


@dataclass
class DistributedPolicy:
    """The per-camera distributed decision rules for one horizon."""

    camera_id: int
    mask: CameraMask
    priority_order: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.camera_id not in self.priority_order:
            raise ValueError(
                f"camera {self.camera_id} missing from priority order"
            )

    # ------------------------------------------------------------------
    def should_track_new_object(self, box: BBox) -> bool:
        """Rule 1: track a newly appeared object at ``box`` on this camera?"""
        coverage = self.mask.coverage_of(box)
        return priority_owner(coverage, self.priority_order) == self.camera_id

    def assigned_camera_lost_object(
        self, box_on_me: BBox, assigned_camera: int
    ) -> bool:
        """Has ``assigned_camera`` lost sight of the object at ``box_on_me``?

        Uses the cell mask: if the assigned camera is not in the coverage
        set of the object's current cell, it can no longer see the object.
        """
        if assigned_camera == self.camera_id:
            return False
        coverage = self.mask.coverage_of(box_on_me)
        return assigned_camera not in coverage

    def should_take_over(self, box_on_me: BBox, assigned_camera: int) -> bool:
        """Rule 2: take over an object whose assigned camera lost it?"""
        if not self.assigned_camera_lost_object(box_on_me, assigned_camera):
            return False
        coverage = self.mask.coverage_of(box_on_me)
        new_owner = priority_owner(
            coverage, self.priority_order, exclude=(assigned_camera,)
        )
        return new_owner == self.camera_id

    def owner_of(self, box: BBox) -> Optional[int]:
        """The priority owner of the cell under ``box`` (diagnostics)."""
        return priority_owner(self.mask.coverage_of(box), self.priority_order)
