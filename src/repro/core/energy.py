"""Energy-aware alternative formulation (paper Section V).

"An alternative formulation might ... minimize consumption of a different
resource, such as energy, as opposed to latency." This module provides
that variant: per-device energy models (calibrated to Jetson power
envelopes), the energy cost of an assignment, and a greedy scheduler that
minimizes *total energy* subject to a per-camera latency deadline — e.g.
the camera frame interval, so the fleet stays real-time while spending as
few joules as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, Mapping, Optional

from repro.core.balb import balb_central, order_objects
from repro.core.problem import (
    Assignment,
    MVSInstance,
    camera_latency,
    is_feasible,
)


@dataclass(frozen=True)
class EnergyModel:
    """Per-device inference energy: ``E = power_w * time`` + idle floor.

    ``active_power_w`` is the board's power draw while the GPU runs
    inference; energy per task is therefore proportional to its latency,
    which is how the schedulers trade energy against time.
    """

    active_power_w: float
    idle_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.active_power_w <= 0:
            raise ValueError("active_power_w must be positive")
        if self.idle_power_w < 0:
            raise ValueError("idle_power_w must be non-negative")

    def inference_energy_mj(self, latency_ms: float) -> float:
        """Millijoules spent running the GPU for ``latency_ms``."""
        if latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        return self.active_power_w * latency_ms  # W * ms = mJ


#: Approximate inference-mode power draw of the Jetson boards (10W/15W/30W
#: nominal envelopes; Nano pulls proportionally more of its budget).
DEFAULT_ENERGY_MODELS: Dict[str, EnergyModel] = {
    "jetson-nano": EnergyModel(active_power_w=8.0, idle_power_w=1.5),
    "jetson-tx2": EnergyModel(active_power_w=12.0, idle_power_w=2.5),
    "jetson-xavier-nx": EnergyModel(active_power_w=15.0, idle_power_w=3.0),
    "jetson-agx-xavier": EnergyModel(active_power_w=28.0, idle_power_w=5.0),
}


def energy_models_for(instance: MVSInstance) -> Dict[int, EnergyModel]:
    """Energy models per camera, resolved from device names (with a
    generic fallback for unknown devices)."""
    fallback = EnergyModel(active_power_w=12.0)
    return {
        cam: DEFAULT_ENERGY_MODELS.get(profile.device_name, fallback)
        for cam, profile in instance.profiles.items()
    }


def assignment_energy_mj(
    instance: MVSInstance,
    assignment: Assignment,
    energy_models: Optional[Mapping[int, EnergyModel]] = None,
    include_full_frame: bool = False,
) -> float:
    """Total per-frame inference energy across the fleet (mJ)."""
    models = energy_models or energy_models_for(instance)
    total = 0.0
    for cam in instance.camera_ids:
        latency = camera_latency(
            instance, assignment, cam, include_full_frame=include_full_frame
        )
        total += models[cam].inference_energy_mj(latency)
    return total


def energy_aware_assignment(
    instance: MVSInstance,
    latency_deadline_ms: float,
    energy_models: Optional[Mapping[int, EnergyModel]] = None,
) -> Assignment:
    """Greedy min-energy assignment under a per-camera latency deadline.

    Objects are visited least-flexible-first (as in Algorithm 1); each
    goes to the coverage camera with the smallest *marginal energy* whose
    post-assignment latency stays within the deadline. When no camera
    meets the deadline, the min-latency camera is used (coverage beats
    the deadline — an object must never go untracked).

    The greedy pass is myopic about batch sharing, so the result is
    finally compared against the latency-balanced BALB assignment: if
    BALB also meets the deadline and spends less energy, BALB's
    assignment is returned. The output therefore never uses more energy
    than BALB under any deadline both can satisfy.
    """
    if latency_deadline_ms <= 0:
        raise ValueError("latency_deadline_ms must be positive")
    models = energy_models or energy_models_for(instance)
    assignment: Assignment = {}
    counts: Dict[int, Dict[int, int]] = {cam: {} for cam in instance.camera_ids}

    def latency_of(cam: int) -> float:
        profile = instance.profiles[cam]
        total = 0.0
        for size, count in counts[cam].items():
            total += math.ceil(
                count / profile.batch_limit(size)
            ) * profile.t_size(size)
        return total

    for obj in order_objects(list(instance.objects)):
        best_cam = None
        best_energy = float("inf")
        fallback_cam = None
        fallback_latency = float("inf")
        for cam in sorted(obj.coverage):
            size = obj.size_on(cam)
            counts[cam][size] = counts[cam].get(size, 0) + 1
            new_latency = latency_of(cam)
            counts[cam][size] -= 1
            if counts[cam][size] == 0:
                del counts[cam][size]
            if new_latency < fallback_latency:
                fallback_latency = new_latency
                fallback_cam = cam
            if new_latency > latency_deadline_ms:
                continue
            old_latency = latency_of(cam)
            marginal = models[cam].inference_energy_mj(
                new_latency
            ) - models[cam].inference_energy_mj(old_latency)
            if marginal < best_energy:
                best_energy = marginal
                best_cam = cam
        chosen = best_cam if best_cam is not None else fallback_cam
        assert chosen is not None  # coverage sets are non-empty
        size = obj.size_on(chosen)
        counts[chosen][size] = counts[chosen].get(size, 0) + 1
        assignment[obj.key] = chosen

    assert is_feasible(instance, assignment)

    # Best-of-both backstop: greedy marginal-energy placement can miss
    # batch-sharing synergies that latency balancing happens to exploit.
    balb = balb_central(instance, include_full_frame=False)
    balb_meets_deadline = all(
        camera_latency(instance, balb.assignment, cam) <= latency_deadline_ms
        for cam in instance.camera_ids
    )
    if balb_meets_deadline:
        greedy_energy = assignment_energy_mj(instance, assignment, models)
        balb_energy = assignment_energy_mj(instance, balb.assignment, models)
        if balb_energy < greedy_energy:
            return dict(balb.assignment)
    return assignment
