"""The Multi-View Scheduling (MVS) problem (Section III-A/B).

An MVS instance consists of a camera set with profiled latencies and an
object set with coverage sets and per-camera target sizes. An assignment
maps objects to the cameras responsible for tracking them; its cost is the
*system latency*: the maximum over cameras of the summed batch execution
latencies for one frame (Definitions 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.devices.profiler import DeviceProfile


@dataclass(frozen=True)
class SchedObject:
    """One object ``o_j`` to be scheduled.

    ``target_sizes`` maps each camera in the coverage set ``C_j`` to the
    object's quantized target size ``s_ij`` on that camera.
    """

    key: int
    target_sizes: Mapping[int, int]

    def __post_init__(self) -> None:
        if not self.target_sizes:
            raise ValueError(f"object {self.key} has an empty coverage set")
        object.__setattr__(self, "target_sizes", dict(self.target_sizes))
        # The BALB inner loops scan coverage in sorted order once per
        # object per candidate step; cache the sort at construction.
        object.__setattr__(
            self, "_sorted_coverage", tuple(sorted(self.target_sizes))
        )

    @property
    def coverage(self) -> FrozenSet[int]:
        """The coverage set C_j: cameras that can see this object."""
        return frozenset(self.target_sizes)

    @property
    def sorted_coverage(self) -> Tuple[int, ...]:
        """The coverage set in ascending camera-id order (precomputed)."""
        return self._sorted_coverage  # type: ignore[attr-defined, no-any-return]

    def size_on(self, camera_id: int) -> int:
        """The quantized target size ``s_ij`` on one coverage camera."""
        try:
            return self.target_sizes[camera_id]
        except KeyError:
            raise KeyError(
                f"camera {camera_id} is not in object {self.key}'s coverage"
            ) from None


@dataclass(frozen=True)
class MVSInstance:
    """A complete scheduling instance: cameras + objects."""

    profiles: Mapping[int, DeviceProfile]
    objects: Tuple[SchedObject, ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("instance needs at least one camera")
        object.__setattr__(self, "profiles", dict(self.profiles))
        object.__setattr__(self, "objects", tuple(self.objects))
        cam_ids = set(self.profiles)
        for obj in self.objects:
            extra = obj.coverage - cam_ids
            if extra:
                raise ValueError(
                    f"object {obj.key} covered by unknown cameras {sorted(extra)}"
                )

    @property
    def camera_ids(self) -> List[int]:
        return sorted(self.profiles)

    def object_by_key(self, key: int) -> SchedObject:
        """Look up an object by key (KeyError if absent)."""
        for obj in self.objects:
            if obj.key == key:
                return obj
        raise KeyError(f"no object with key {key}")


Assignment = Dict[int, int]
"""Single-camera assignment: ``{object_key: camera_id}``.

The general Definition 2 allows an object on multiple cameras; BALB and
all baselines here emit exactly one camera per object, which is always
feasible and never worse for the min-max objective.
"""


def is_feasible(instance: MVSInstance, assignment: Assignment) -> bool:
    """Check Definition 2: every object on >= 1 camera that can see it,
    and never on a camera that cannot.
    """
    keys = {obj.key for obj in instance.objects}
    if set(assignment) != keys:
        return False
    for obj in instance.objects:
        if assignment[obj.key] not in obj.coverage:
            return False
    return True


def camera_size_counts(
    instance: MVSInstance, assignment: Assignment, camera_id: int
) -> Dict[int, int]:
    """``{target_size: n_objects}`` assigned to ``camera_id``."""
    counts: Dict[int, int] = {}
    for obj in instance.objects:
        if assignment.get(obj.key) == camera_id:
            size = obj.size_on(camera_id)
            counts[size] = counts.get(size, 0) + 1
    return counts


def camera_latency(
    instance: MVSInstance,
    assignment: Assignment,
    camera_id: int,
    include_full_frame: bool = False,
) -> float:
    """Definition 1: summed batch latencies on one camera for one frame.

    Same-size objects are batched greedily (the provably minimal number of
    batches per size), so the latency of camera ``i`` is
    ``sum_s ceil(n_s / B_i^s) * t_i^s``. With ``include_full_frame`` the
    key-frame inspection cost ``t_i^full`` is added — this mirrors the
    initialization of Algorithm 1.
    """
    profile = instance.profiles[camera_id]
    total = profile.t_full if include_full_frame else 0.0
    for size, count in camera_size_counts(instance, assignment, camera_id).items():
        n_batches = math.ceil(count / profile.batch_limit(size))
        total += n_batches * profile.t_size(size)
    return total


def system_latency(
    instance: MVSInstance,
    assignment: Assignment,
    include_full_frame: bool = False,
) -> float:
    """The MVS objective: max camera latency (Definition 3)."""
    return max(
        camera_latency(instance, assignment, cam, include_full_frame)
        for cam in instance.camera_ids
    )


def latency_profile(
    instance: MVSInstance,
    assignment: Assignment,
    include_full_frame: bool = False,
) -> Dict[int, float]:
    """Per-camera latencies for an assignment."""
    return {
        cam: camera_latency(instance, assignment, cam, include_full_frame)
        for cam in instance.camera_ids
    }
