"""Camera cell masks (Figure 8).

After the central stage, every camera's frame is divided into a grid of
pixel cells; for each cell we compute the *coverage set* — which cameras
can see the world region behind that cell — using the cross-camera
classification models (the same models used for association, so the masks
work with static camera poses only, as the paper notes). The distributed
stage resolves each cell to an owner camera by priority; the static
partitioning baseline resolves it by processing power instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.association.pairwise import PairwiseAssociator
from repro.geometry.box import BBox

#: Memoized mask builds, keyed by fitted associator instance. Masks are a
#: pure function of (static camera poses, fitted models), i.e. offline
#: artifacts: every run over the same trained models rebuilds byte-identical
#: grids, so the runtime path reuses them. CameraMask objects are never
#: mutated after construction (callers replace dict entries, not masks),
#: which is what makes sharing safe. Entries die with the associator.
_MASK_MEMO: "WeakKeyDictionary[PairwiseAssociator, Dict[tuple, Dict[int, CameraMask]]]" = (
    WeakKeyDictionary()
)


@dataclass
class CameraMask:
    """Per-cell coverage sets over one camera's frame."""

    camera_id: int
    frame_w: float
    frame_h: float
    nx: int
    ny: int
    coverage: List[List[Tuple[int, ...]]]  # [iy][ix] -> camera ids

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid must be at least 1x1")
        if len(self.coverage) != self.ny or any(
            len(row) != self.nx for row in self.coverage
        ):
            raise ValueError("coverage grid shape mismatch")

    def cell_of(self, box: BBox) -> Tuple[int, int]:
        """Grid cell containing the box centre (clamped to the frame)."""
        cx, cy = box.center
        ix = min(self.nx - 1, max(0, int(cx / self.frame_w * self.nx)))
        iy = min(self.ny - 1, max(0, int(cy / self.frame_h * self.ny)))
        return (ix, iy)

    def coverage_of(self, box: BBox) -> Tuple[int, ...]:
        """Coverage set of the cell under ``box``'s centre."""
        ix, iy = self.cell_of(box)
        return self.coverage[iy][ix]

    def owned_cells(self, owner_fn) -> List[Tuple[int, int]]:
        """Cells whose ``owner_fn(coverage)`` equals this camera."""
        owned = []
        for iy in range(self.ny):
            for ix in range(self.nx):
                if owner_fn(self.coverage[iy][ix]) == self.camera_id:
                    owned.append((ix, iy))
        return owned


def build_camera_masks(
    frame_sizes: Dict[int, Tuple[int, int]],
    associator: PairwiseAssociator,
    typical_box_sizes: Dict[int, float],
    grid: Tuple[int, int] = (16, 12),
) -> Dict[int, CameraMask]:
    """Compute masks for every camera via the visibility classifiers.

    ``typical_box_sizes`` gives, per camera, a representative box side
    length (e.g. the median training box size); the classifier is queried
    with a nominal box of that size at each cell centre.

    Results are memoized per fitted associator (masks only depend on the
    trained models and the static rig), so repeated runs and membership
    re-fits over the same subset skip the classifier sweep entirely. The
    returned dict is a fresh copy each call — callers may mutate it —
    while the CameraMask values are shared read-only.
    """
    key = (
        getattr(associator, "_fit_token", 0),
        tuple(grid),
        tuple(sorted(frame_sizes.items())),
        tuple(sorted(typical_box_sizes.items())),
    )
    try:
        per_assoc = _MASK_MEMO.setdefault(associator, {})
    except TypeError:  # test doubles that aren't weak-referenceable
        per_assoc = None
    if per_assoc is not None:
        cached = per_assoc.get(key)
        if cached is not None:
            return dict(cached)
    masks = _build_camera_masks_uncached(
        frame_sizes, associator, typical_box_sizes, grid
    )
    if per_assoc is not None:
        per_assoc[key] = masks
    return dict(masks)


def _build_camera_masks_uncached(
    frame_sizes: Dict[int, Tuple[int, int]],
    associator: PairwiseAssociator,
    typical_box_sizes: Dict[int, float],
    grid: Tuple[int, int],
) -> Dict[int, CameraMask]:
    """The actual classifier sweep behind :func:`build_camera_masks`."""
    nx, ny = grid
    camera_ids = sorted(frame_sizes)
    masks: Dict[int, CameraMask] = {}
    for cam in camera_ids:
        w, h = frame_sizes[cam]
        size = typical_box_sizes.get(cam, 60.0)
        # All nx*ny cell probes at once: one batched classifier call per
        # (cam, other) pair instead of one per cell per pair.
        probes: List[BBox] = []
        for iy in range(ny):
            cy = (iy + 0.5) / ny * h
            for ix in range(nx):
                cx = (ix + 0.5) / nx * w
                probes.append(BBox.from_xywh(cx, cy, size, size * 0.7))
        others = [other for other in camera_ids if other != cam]
        visible = {
            other: associator.predict_visible_many(cam, other, probes)
            for other in others
        }
        coverage_grid: List[List[Tuple[int, ...]]] = []
        for iy in range(ny):
            row: List[Tuple[int, ...]] = []
            for ix in range(nx):
                cell = iy * nx + ix
                covering = [cam] + [
                    other for other in others if visible[other][cell]
                ]
                row.append(tuple(sorted(covering)))
            coverage_grid.append(row)
        masks[cam] = CameraMask(
            camera_id=cam,
            frame_w=float(w),
            frame_h=float(h),
            nx=nx,
            ny=ny,
            coverage=coverage_grid,
        )
    return masks


def priority_owner(
    coverage: Sequence[int],
    priority_order: Sequence[int],
    exclude: Sequence[int] = (),
) -> Optional[int]:
    """BALB owner rule: the highest-priority camera covering the cell.

    ``priority_order`` lists camera ids by increasing central-stage
    latency; the first covering camera in that order owns the cell.
    """
    excluded = set(exclude)
    for cam in priority_order:
        if cam in coverage and cam not in excluded:
            return cam
    return None


def capacity_owner(
    coverage: Sequence[int],
    capacities: Dict[int, float],
    cell: Tuple[int, int],
    grid_nx: int = 16,
) -> Optional[int]:
    """Static-partitioning owner rule (Section IV-C baselines).

    Splits shared cells between covering cameras proportionally to their
    processing power, in *contiguous* vertical bands: the cell's horizontal
    position selects a camera by cumulative capacity share. Contiguous
    regions are what static spatial partitioning systems actually deploy —
    and they are exactly why SP suffers under bursty traffic: a platoon
    crossing one band lands entirely on one camera.
    """
    cams = sorted(set(coverage))
    if not cams:
        return None
    if len(cams) == 1:
        return cams[0]
    total = sum(capacities.get(c, 1.0) for c in cams)
    if total <= 0:
        return cams[0]
    ix, _ = cell
    r = (ix + 0.5) / max(grid_nx, 1)
    acc = 0.0
    for cam in cams:
        acc += capacities.get(cam, 1.0) / total
        if r < acc:
            return cam
    return cams[-1]
