"""Redundant multi-camera assignment (paper Section V extensions).

The paper's limitations section proposes assigning an object to *multiple*
cameras when association confidence is low or dynamic occlusion threatens
a single viewpoint: "we may allocate multiple cameras to track the same
object" / "assigning objects to multiple cameras with sufficiently
different vantage points can also reduce occlusion-related failures".

:func:`balb_redundant` generalizes the central stage: it first runs plain
BALB (primary assignment), then adds up to ``k - 1`` extra replicas per
object, each placed with the same batch-aware latency-balanced rule,
preferring the camera whose vantage point differs most from the ones
already chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.balb import balb_central
from repro.core.problem import MVSInstance, SchedObject

MultiAssignment = Dict[int, Tuple[int, ...]]
"""``{object_key: (camera_id, ...)}`` — first entry is the primary."""


@dataclass
class RedundantResult:
    """Output of the redundant central stage."""

    assignment: MultiAssignment
    camera_latencies: Dict[int, float]
    priority_order: Tuple[int, ...]

    @property
    def replica_count(self) -> int:
        return sum(len(cams) - 1 for cams in self.assignment.values())


def multi_camera_latency(
    instance: MVSInstance,
    assignment: MultiAssignment,
    camera_id: int,
    include_full_frame: bool = False,
) -> float:
    """Per-frame latency of one camera under a multi-assignment."""
    profile = instance.profiles[camera_id]
    counts: Dict[int, int] = {}
    for obj in instance.objects:
        if camera_id in assignment.get(obj.key, ()):
            size = obj.size_on(camera_id)
            counts[size] = counts.get(size, 0) + 1
    total = profile.t_full if include_full_frame else 0.0
    for size, count in counts.items():
        total += math.ceil(count / profile.batch_limit(size)) * profile.t_size(size)
    return total


def multi_system_latency(
    instance: MVSInstance,
    assignment: MultiAssignment,
    include_full_frame: bool = False,
) -> float:
    """Max per-camera latency under a multi-assignment (Definition 3)."""
    return max(
        multi_camera_latency(instance, assignment, cam, include_full_frame)
        for cam in instance.camera_ids
    )


def is_feasible_multi(
    instance: MVSInstance, assignment: MultiAssignment
) -> bool:
    """Definition 2 for multi-assignments: >= 1 camera each, all in C_j,
    and no camera repeated for the same object."""
    keys = {obj.key for obj in instance.objects}
    if set(assignment) != keys:
        return False
    for obj in instance.objects:
        cams = assignment[obj.key]
        if not cams or len(set(cams)) != len(cams):
            return False
        if any(cam not in obj.coverage for cam in cams):
            return False
    return True


def balb_redundant(
    instance: MVSInstance,
    k: int = 2,
    include_full_frame: bool = True,
    vantage_positions: Optional[Mapping[int, Tuple[float, float]]] = None,
) -> RedundantResult:
    """BALB with up to ``k`` cameras per object.

    The primary assignment is exactly Algorithm 1. Replicas are then added
    object-by-object (same least-flexible-first order): each replica goes
    to the unused coverage camera minimizing ``L_i + t_i^{s_ij}``, with a
    vantage-diversity bonus when camera positions are supplied — cameras
    far from the already-assigned ones are preferred, which is the paper's
    occlusion-robustness argument.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    base = balb_central(instance, include_full_frame=include_full_frame)
    latencies = dict(base.camera_latencies)
    assignment: MultiAssignment = {
        key: (cam,) for key, cam in base.assignment.items()
    }
    if k == 1:
        return RedundantResult(
            assignment=assignment,
            camera_latencies=latencies,
            priority_order=base.priority_order,
        )

    # Largest coverage first for replicas: flexible objects gain the most
    # from redundancy and constrain the remaining placements the least.
    ordered = sorted(
        instance.objects, key=lambda o: (-len(o.coverage), o.key)
    )
    for _ in range(k - 1):
        for obj in ordered:
            used = assignment[obj.key]
            candidates = sorted(obj.coverage - set(used))
            if not candidates:
                continue
            best_cam = _best_replica_camera(
                instance, latencies, obj, used, candidates, vantage_positions
            )
            size = obj.size_on(best_cam)
            latencies[best_cam] += instance.profiles[best_cam].t_size(size)
            assignment[obj.key] = used + (best_cam,)

    priority = tuple(
        sorted(instance.camera_ids, key=lambda cam: (latencies[cam], cam))
    )
    return RedundantResult(
        assignment=assignment,
        camera_latencies=latencies,
        priority_order=priority,
    )


def _best_replica_camera(
    instance: MVSInstance,
    latencies: Dict[int, float],
    obj: SchedObject,
    used: Tuple[int, ...],
    candidates: List[int],
    vantage_positions: Optional[Mapping[int, Tuple[float, float]]],
) -> int:
    """Min updated latency, discounted by vantage-point diversity."""
    best_cam = candidates[0]
    best_score = float("inf")
    max_lat = max(latencies.values()) or 1.0
    for cam in candidates:
        updated = latencies[cam] + instance.profiles[cam].t_size(
            obj.size_on(cam)
        )
        score = updated
        if vantage_positions:
            min_dist = min(
                _distance(vantage_positions.get(cam), vantage_positions.get(u))
                for u in used
            )
            # Diversity bonus: up to 20% latency discount for the farthest
            # vantage, scaled by the current system latency.
            score -= 0.2 * max_lat * min(min_dist / 50.0, 1.0)
        if score < best_score:
            best_score = score
            best_cam = cam
    return best_cam


def _distance(
    a: Optional[Tuple[float, float]], b: Optional[Tuple[float, float]]
) -> float:
    if a is None or b is None:
        return 0.0
    return math.hypot(a[0] - b[0], a[1] - b[1])
