"""Reproduction of "Multi-View Scheduling of Onboard Live Video Analytics
to Minimize Frame Processing Latency" (Liu et al., ICDCS 2022).

The library implements the paper's full stack in pure Python:

* :mod:`repro.world`, :mod:`repro.cameras`, :mod:`repro.scenarios` — a
  ground-plane traffic world projected through calibrated cameras,
  replacing the AI City Challenge footage.
* :mod:`repro.devices` — Jetson-calibrated GPU latency/batching models,
  replacing the physical testbed.
* :mod:`repro.vision` — the simulated detector, optical-flow tracking
  stand-in, and tracking-based image slicing.
* :mod:`repro.ml`, :mod:`repro.association` — from-scratch KNN/SVM/
  logistic/tree/RANSAC models, the Hungarian algorithm, and the
  cross-camera association module.
* :mod:`repro.core` — the MVS problem formulation and the two-stage BALB
  scheduling algorithm with all baselines.
* :mod:`repro.runtime` — camera nodes, the central scheduler and the
  end-to-end pipeline producing the paper's metrics.
* :mod:`repro.experiments` — one harness per paper figure/table.

Quickstart::

    from repro.scenarios import get_scenario
    from repro.runtime import PipelineConfig, run_policy

    scenario = get_scenario("S2")
    result = run_policy(scenario, "balb", PipelineConfig(n_horizons=10))
    print(result.object_recall(), result.mean_slowest_latency())
"""

__version__ = "1.0.0"
