"""Simulated object detector (the YOLOv5 stand-in).

The real system runs YOLOv5 on full frames (key frames) and on sliced
partial regions (regular frames). Here the detector consumes ground truth
from the world model through a camera's projection and produces *noisy*
detections:

* localization jitter proportional to box size,
* size-dependent miss probability (small boxes are missed more often),
* occasional false positives on full-frame inspections,
* region queries only find objects whose true box overlaps the region.

Detections carry the ground-truth object id **for evaluation and
supervision only** — scheduling and association logic never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import ObjectClass, WorldObject


@dataclass(frozen=True)
class Detection:
    """One detector output box on one camera."""

    bbox: BBox
    confidence: float
    object_class: ObjectClass
    gt_object_id: int  # -1 for false positives; for evaluation only
    camera_id: int


@dataclass(frozen=True)
class DetectorErrorModel:
    """Tunables of the detection noise process."""

    center_jitter_frac: float = 0.03  # std of centre noise, fraction of size
    size_jitter_frac: float = 0.05  # std of width/height noise
    base_miss_prob: float = 0.02
    small_box_pixels: float = 32.0  # boxes below this side length miss more
    small_box_extra_miss: float = 0.25
    false_positive_rate: float = 0.05  # expected FPs per full-frame run
    min_confidence: float = 0.35

    def miss_probability(self, box: BBox) -> float:
        """Per-inspection miss probability for a box of this size."""
        side = min(box.width, box.height)
        p = self.base_miss_prob
        if side < self.small_box_pixels:
            deficit = 1.0 - side / self.small_box_pixels
            p += self.small_box_extra_miss * deficit
        return min(0.95, p)


class SimulatedDetector:
    """Generates detections for full-frame and region-sliced inspections."""

    def __init__(
        self,
        camera: Camera,
        error_model: Optional[DetectorErrorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.camera = camera
        self.errors = error_model or DetectorErrorModel()
        self._rng = rng or np.random.default_rng(camera.camera_id)

    # ------------------------------------------------------------------
    def detect_full_frame(
        self,
        objects: Sequence[WorldObject],
        miss_multipliers: Optional[dict] = None,
    ) -> List[Detection]:
        """Full-frame inspection: sees every visible object, with noise.

        ``miss_multipliers`` optionally scales each object's miss
        probability (e.g. from the occlusion model); ``inf`` forces a miss.
        """
        detections = [
            d
            for obj in objects
            if (
                d := self._detect_object(
                    obj,
                    miss_multiplier=(miss_multipliers or {}).get(
                        obj.object_id, 1.0
                    ),
                )
            )
            is not None
        ]
        detections.extend(self._false_positives())
        return detections

    def detect_regions(
        self,
        objects: Sequence[WorldObject],
        regions: Sequence[BBox],
        miss_multipliers: Optional[dict] = None,
    ) -> List[Detection]:
        """Partial-frame inspection: only objects whose true box centre lies
        in some region are detectable. One object yields at most one
        detection even when regions overlap.
        """
        detections: List[Detection] = []
        seen: set[int] = set()
        for obj in objects:
            if obj.object_id in seen:
                continue
            true_box = self.camera.project_object(obj)
            if true_box is None:
                continue
            cx, cy = true_box.center
            if not any(r.contains_point(cx, cy) for r in regions):
                continue
            det = self._detect_object(
                obj,
                true_box=true_box,
                miss_multiplier=(miss_multipliers or {}).get(
                    obj.object_id, 1.0
                ),
            )
            if det is not None:
                seen.add(obj.object_id)
                detections.append(det)
        return detections

    # ------------------------------------------------------------------
    def _detect_object(
        self,
        obj: WorldObject,
        true_box: Optional[BBox] = None,
        miss_multiplier: float = 1.0,
    ) -> Optional[Detection]:
        box = true_box if true_box is not None else self.camera.project_object(obj)
        if box is None:
            return None
        miss_prob = self.errors.miss_probability(box) * miss_multiplier
        if miss_multiplier == float("inf") or self._rng.random() < min(
            miss_prob, 1.0
        ):
            return None
        noisy = self._jitter_box(box)
        w, h = self.camera.frame_size
        noisy = noisy.clip(float(w), float(h))
        if noisy.is_empty():
            return None
        confidence = float(
            np.clip(self._rng.normal(0.85, 0.08), self.errors.min_confidence, 0.99)
        )
        return Detection(
            bbox=noisy,
            confidence=confidence,
            object_class=obj.object_class,
            gt_object_id=obj.object_id,
            camera_id=self.camera.camera_id,
        )

    def _jitter_box(self, box: BBox) -> BBox:
        cx, cy = box.center
        w, h = box.width, box.height
        cj = self.errors.center_jitter_frac
        sj = self.errors.size_jitter_frac
        ncx = cx + self._rng.normal(0.0, cj * w)
        ncy = cy + self._rng.normal(0.0, cj * h)
        nw = max(2.0, w * (1.0 + self._rng.normal(0.0, sj)))
        nh = max(2.0, h * (1.0 + self._rng.normal(0.0, sj)))
        return BBox.from_xywh(ncx, ncy, nw, nh)

    def _false_positives(self) -> List[Detection]:
        n = int(self._rng.poisson(self.errors.false_positive_rate))
        out: List[Detection] = []
        w, h = self.camera.frame_size
        for _ in range(n):
            size = float(self._rng.uniform(20, 120))
            cx = float(self._rng.uniform(size, w - size))
            cy = float(self._rng.uniform(size, h - size))
            out.append(
                Detection(
                    bbox=BBox.from_xywh(cx, cy, size, size * 0.7),
                    confidence=float(self._rng.uniform(0.35, 0.6)),
                    object_class=ObjectClass.CAR,
                    gt_object_id=-1,
                    camera_id=self.camera.camera_id,
                )
            )
        return out
