"""Simulated object detector (the YOLOv5 stand-in).

The real system runs YOLOv5 on full frames (key frames) and on sliced
partial regions (regular frames). Here the detector consumes ground truth
from the world model through a camera's projection and produces *noisy*
detections:

* localization jitter proportional to box size,
* size-dependent miss probability (small boxes are missed more often),
* occasional false positives on full-frame inspections,
* region queries only find objects whose true box overlaps the region.

Detections carry the ground-truth object id **for evaluation and
supervision only** — scheduling and association logic never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import ObjectClass, WorldObject

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector output box on one camera."""

    bbox: BBox
    confidence: float
    object_class: ObjectClass
    gt_object_id: int  # -1 for false positives; for evaluation only
    camera_id: int


@dataclass(frozen=True)
class DetectorErrorModel:
    """Tunables of the detection noise process."""

    center_jitter_frac: float = 0.03  # std of centre noise, fraction of size
    size_jitter_frac: float = 0.05  # std of width/height noise
    base_miss_prob: float = 0.02
    small_box_pixels: float = 32.0  # boxes below this side length miss more
    small_box_extra_miss: float = 0.25
    false_positive_rate: float = 0.05  # expected FPs per full-frame run
    min_confidence: float = 0.35

    def miss_probability(self, box: BBox) -> float:
        """Per-inspection miss probability for a box of this size."""
        side = min(box.width, box.height)
        p = self.base_miss_prob
        if side < self.small_box_pixels:
            deficit = 1.0 - side / self.small_box_pixels
            p += self.small_box_extra_miss * deficit
        return min(0.95, p)


class SimulatedDetector:
    """Generates detections for full-frame and region-sliced inspections."""

    def __init__(
        self,
        camera: Camera,
        error_model: Optional[DetectorErrorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.camera = camera
        self.errors = error_model or DetectorErrorModel()
        self._rng = rng or np.random.default_rng(camera.camera_id)

    # ------------------------------------------------------------------
    def detect_full_frame(
        self,
        objects: Sequence[WorldObject],
        miss_multipliers: Optional[dict] = None,
        boxes: Optional[Mapping[int, BBox]] = None,
    ) -> List[Detection]:
        """Full-frame inspection: sees every visible object, with noise.

        ``miss_multipliers`` optionally scales each object's miss
        probability (e.g. from the occlusion model); ``inf`` forces a miss.
        ``boxes`` optionally supplies the frame's cached projection table
        (visible object id -> true box) so nothing is re-projected here;
        invisible objects draw no noise on either path.
        """
        multipliers_get = (miss_multipliers or {}).get
        detections: List[Detection] = []
        boxes_get = boxes.get if boxes is not None else None
        detect_object = self._detect_object
        for obj in objects:
            if boxes_get is None:
                true_box = self.camera.project_object(obj)
            else:
                true_box = boxes_get(obj.object_id)
            if true_box is None:
                continue
            det = detect_object(
                obj,
                true_box=true_box,
                miss_multiplier=multipliers_get(obj.object_id, 1.0),
            )
            if det is not None:
                detections.append(det)
        detections.extend(self._false_positives())
        return detections

    def detect_regions(
        self,
        objects: Sequence[WorldObject],
        regions: Sequence[BBox],
        miss_multipliers: Optional[dict] = None,
        boxes: Optional[Mapping[int, BBox]] = None,
    ) -> List[Detection]:
        """Partial-frame inspection: only objects whose true box centre lies
        in some region are detectable. One object yields at most one
        detection even when regions overlap.
        """
        detections: List[Detection] = []
        seen: set[int] = set()
        # Region corners unpacked once; the inner test walks them with
        # the same comparisons and short-circuit order as
        # BBox.contains_point.
        rects = [(r.x1, r.y1, r.x2, r.y2) for r in regions]
        multipliers_get = (miss_multipliers or {}).get
        boxes_get = boxes.get if boxes is not None else None
        detect_object = self._detect_object
        for obj in objects:
            obj_id = obj.object_id
            if obj_id in seen:
                continue
            if boxes_get is None:
                true_box = self.camera.project_object(obj)
            else:
                true_box = boxes_get(obj_id)
            if true_box is None:
                continue
            cx = (true_box.x1 + true_box.x2) / 2.0
            cy = (true_box.y1 + true_box.y2) / 2.0
            for rx1, ry1, rx2, ry2 in rects:
                if rx1 <= cx <= rx2 and ry1 <= cy <= ry2:
                    break
            else:
                continue
            det = detect_object(
                obj,
                true_box=true_box,
                miss_multiplier=multipliers_get(obj_id, 1.0),
            )
            if det is not None:
                seen.add(obj_id)
                detections.append(det)
        return detections

    # ------------------------------------------------------------------
    def _detect_object(
        self,
        obj: WorldObject,
        true_box: Optional[BBox] = None,
        miss_multiplier: float = 1.0,
    ) -> Optional[Detection]:
        box = true_box if true_box is not None else self.camera.project_object(obj)
        if box is None:
            return None
        # errors.miss_probability inlined: min()/property calls were a
        # visible slice of the per-detection cost. Python min/max keep
        # the first argument on ties, so the conditional forms below
        # select the same values bit-for-bit.
        errors = self.errors
        bw = box.x2 - box.x1
        bh = box.y2 - box.y1
        side = bw if bw < bh else bh
        p = errors.base_miss_prob
        small = errors.small_box_pixels
        if side < small:
            p += errors.small_box_extra_miss * (1.0 - side / small)
        if p > 0.95:
            p = 0.95
        miss_prob = p * miss_multiplier
        if miss_prob > 1.0:
            miss_prob = 1.0
        if miss_multiplier == _INF or self._rng.random() < miss_prob:
            return None
        noisy = self._jitter_box(box)
        w, h = self.camera.frame_size
        noisy = noisy.clip(float(w), float(h))
        if noisy.is_empty():
            return None
        # Scalar clamp written as min(max(v, lo), hi) — the exact
        # element rule of the np.clip call it replaces, without the
        # array round-trip.
        confidence = float(self._rng.normal(0.85, 0.08))
        lo = self.errors.min_confidence
        if confidence < lo:
            confidence = lo
        if confidence > 0.99:
            confidence = 0.99
        return Detection(
            bbox=noisy,
            confidence=confidence,
            object_class=obj.object_class,
            gt_object_id=obj.object_id,
            camera_id=self.camera.camera_id,
        )

    def _jitter_box(self, box: BBox) -> BBox:
        # Inlined center/size/from_xywh arithmetic with the exact same
        # grouping (the jittered sizes are >= 2, so from_xywh's
        # non-negative clamp was always a no-op).
        x1, y1, x2, y2 = box.x1, box.y1, box.x2, box.y2
        cx = (x1 + x2) / 2.0
        cy = (y1 + y2) / 2.0
        w = x2 - x1
        h = y2 - y1
        rng = self._rng
        errors = self.errors
        ncx = cx + rng.normal(0.0, errors.center_jitter_frac * w)
        ncy = cy + rng.normal(0.0, errors.center_jitter_frac * h)
        sj = errors.size_jitter_frac
        nw = max(2.0, w * (1.0 + rng.normal(0.0, sj)))
        nh = max(2.0, h * (1.0 + rng.normal(0.0, sj)))
        return BBox(
            ncx - nw / 2.0, ncy - nh / 2.0, ncx + nw / 2.0, ncy + nh / 2.0
        )

    def _false_positives(self) -> List[Detection]:
        n = int(self._rng.poisson(self.errors.false_positive_rate))
        out: List[Detection] = []
        w, h = self.camera.frame_size
        for _ in range(n):
            size = float(self._rng.uniform(20, 120))
            cx = float(self._rng.uniform(size, w - size))
            cy = float(self._rng.uniform(size, h - size))
            out.append(
                Detection(
                    bbox=BBox.from_xywh(cx, cy, size, size * 0.7),
                    confidence=float(self._rng.uniform(0.35, 0.6)),
                    object_class=ObjectClass.CAR,
                    gt_object_id=-1,
                    camera_id=self.camera.camera_id,
                )
            )
        return out
