"""Optical-flow stand-in: location prediction and new-region detection.

The real pipeline runs dense-inverse-search optical flow to (a) predict
where each tracked object's box moved in the new frame and (b) find
clusters of moving pixels that belong to no tracked object ("new regions",
Section II-B). We reproduce both contracts:

* :class:`FlowPredictor` propagates a box by the object's *apparent* pixel
  velocity with noise that grows the longer the object goes unobserved —
  matching flow-based drift between detections.
* :func:`find_new_regions` reports image regions of moving objects not
  covered by any predicted box, with a miss probability for slow movers
  (flow cannot see what barely moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import WorldObject


@dataclass(slots=True)
class TrackState:
    """Per-object motion state maintained by the predictor."""

    bbox: BBox
    velocity: Tuple[float, float] = (0.0, 0.0)  # px/frame
    frames_since_update: int = 0


@dataclass(frozen=True)
class FlowNoiseModel:
    """Noise of flow-based prediction."""

    base_sigma_px: float = 1.5  # per-frame positional noise
    drift_growth: float = 1.6  # noise multiplier per unobserved frame
    min_apparent_speed_px: float = 0.8  # below this, motion is invisible


class FlowPredictor:
    """Predicts per-object boxes between detections, one instance per camera."""

    def __init__(
        self,
        noise: Optional[FlowNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng is None:
            raise ValueError(
                "FlowPredictor requires an explicit rng seeded from the "
                "run config; every predict() call draws from it"
            )
        self.noise = noise or FlowNoiseModel()
        self._rng = rng
        self._states: Dict[int, TrackState] = {}

    # ------------------------------------------------------------------
    def observe(self, key: int, bbox: BBox) -> None:
        """Feed a confirmed detection for ``key`` (a local track id)."""
        prev = self._states.get(key)
        if prev is not None:
            # Centres inlined with BBox.center's exact grouping.
            pbox = prev.bbox
            pcx = (pbox.x1 + pbox.x2) / 2.0
            pcy = (pbox.y1 + pbox.y2) / 2.0
            ccx = (bbox.x1 + bbox.x2) / 2.0
            ccy = (bbox.y1 + bbox.y2) / 2.0
            frames = prev.frames_since_update + 1
            if frames < 1:
                frames = 1
            velocity = ((ccx - pcx) / frames, (ccy - pcy) / frames)
        else:
            velocity = (0.0, 0.0)
        self._states[key] = TrackState(bbox=bbox, velocity=velocity)

    def predict(self, key: int) -> Optional[BBox]:
        """Advance ``key``'s box by one frame of estimated motion + noise."""
        state = self._states.get(key)
        if state is None:
            return None
        unobserved = state.frames_since_update + 1
        state.frames_since_update = unobserved
        # The common case is a track observed last frame: growth**0 is
        # exactly 1.0 and multiplying by it is exact, so the pow can be
        # skipped without changing a bit.
        sigma = self.noise.base_sigma_px
        if unobserved != 1:
            sigma = sigma * (self.noise.drift_growth ** (unobserved - 1))
        rng = self._rng
        vx, vy = state.velocity
        dx = vx + rng.normal(0.0, sigma)
        dy = vy + rng.normal(0.0, sigma)
        box = state.bbox
        predicted = BBox(
            box.x1 + dx, box.y1 + dy, box.x2 + dx, box.y2 + dy
        )
        state.bbox = predicted
        return predicted

    def drop(self, key: int) -> None:
        """Forget the motion state of ``key``."""
        self._states.pop(key, None)

    def tracked_keys(self) -> List[int]:
        """Sorted keys currently carrying motion state."""
        return sorted(self._states)

    def staleness(self, key: int) -> int:
        """Frames since ``key`` was last observed (-1 if unknown)."""
        state = self._states.get(key)
        return state.frames_since_update if state else -1


def find_new_regions(
    camera: Camera,
    objects: Sequence[WorldObject],
    predicted_boxes: Sequence[BBox],
    rng: np.random.Generator,
    noise: Optional[FlowNoiseModel] = None,
    dt: float = 0.1,
    boxes: Optional[Mapping[int, BBox]] = None,
) -> List[BBox]:
    """Regions of moving pixels not explained by any predicted box.

    For each visible, sufficiently fast-moving object whose true box centre
    is not covered by a predicted box, emit a loose region around it (the
    pixel-motion cluster). This is how new arrivals get detected at their
    first appearance instead of waiting for the next key frame. ``boxes``
    optionally supplies the frame's cached projection table; RNG draws
    happen per emitted region only, in object order, on both paths.
    """
    noise = noise or FlowNoiseModel()
    regions: List[BBox] = []
    # Predicted-box corners unpacked once; the coverage test walks them
    # with the same comparisons and short-circuit order as
    # BBox.contains_point.
    rects = [(p.x1, p.y1, p.x2, p.y2) for p in predicted_boxes]
    boxes_get = boxes.get if boxes is not None else None
    min_speed = noise.min_apparent_speed_px
    for obj in objects:
        if boxes_get is None:
            box = camera.project_object(obj)
        else:
            box = boxes_get(obj.object_id)
        if box is None:
            continue
        cx = (box.x1 + box.x2) / 2.0
        cy = (box.y1 + box.y2) / 2.0
        covered = False
        for px1, py1, px2, py2 in rects:
            if px1 <= cx <= px2 and py1 <= cy <= py2:
                covered = True
                break
        if covered:
            continue
        apparent_speed = _apparent_speed_px(camera, obj, dt)
        if apparent_speed < min_speed:
            continue  # flow can't see near-static targets
        # Flow clusters are coarse: inflate and jitter the region.
        inflate = 1.0 + float(rng.uniform(0.1, 0.4))
        jitter = float(rng.normal(0.0, 2.0))
        region = box.scale(inflate).translate(jitter, jitter)
        w, h = camera.frame_size
        region = region.clip(float(w), float(h))
        if not region.is_empty():
            regions.append(region)
    return regions


def _apparent_speed_px(camera: Camera, obj: WorldObject, dt: float) -> float:
    """Pixel-space speed of the object's centre over one frame interval."""
    now = camera.project_point(obj.x, obj.y, obj.height / 2.0)
    vx, vy = obj.velocity
    nxt = camera.project_point(obj.x + vx * dt, obj.y + vy * dt, obj.height / 2.0)
    if now is None or nxt is None:
        return 0.0
    return float(np.hypot(nxt[0] - now[0], nxt[1] - now[1]))
