"""Optical-flow stand-in: location prediction and new-region detection.

The real pipeline runs dense-inverse-search optical flow to (a) predict
where each tracked object's box moved in the new frame and (b) find
clusters of moving pixels that belong to no tracked object ("new regions",
Section II-B). We reproduce both contracts:

* :class:`FlowPredictor` propagates a box by the object's *apparent* pixel
  velocity with noise that grows the longer the object goes unobserved —
  matching flow-based drift between detections.
* :func:`find_new_regions` reports image regions of moving objects not
  covered by any predicted box, with a miss probability for slow movers
  (flow cannot see what barely moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cameras.camera import Camera
from repro.geometry.box import BBox
from repro.world.entities import WorldObject


@dataclass
class TrackState:
    """Per-object motion state maintained by the predictor."""

    bbox: BBox
    velocity: Tuple[float, float] = (0.0, 0.0)  # px/frame
    frames_since_update: int = 0


@dataclass(frozen=True)
class FlowNoiseModel:
    """Noise of flow-based prediction."""

    base_sigma_px: float = 1.5  # per-frame positional noise
    drift_growth: float = 1.6  # noise multiplier per unobserved frame
    min_apparent_speed_px: float = 0.8  # below this, motion is invisible


class FlowPredictor:
    """Predicts per-object boxes between detections, one instance per camera."""

    def __init__(
        self,
        noise: Optional[FlowNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng is None:
            raise ValueError(
                "FlowPredictor requires an explicit rng seeded from the "
                "run config; every predict() call draws from it"
            )
        self.noise = noise or FlowNoiseModel()
        self._rng = rng
        self._states: Dict[int, TrackState] = {}

    # ------------------------------------------------------------------
    def observe(self, key: int, bbox: BBox) -> None:
        """Feed a confirmed detection for ``key`` (a local track id)."""
        prev = self._states.get(key)
        if prev is not None:
            pcx, pcy = prev.bbox.center
            ccx, ccy = bbox.center
            frames = max(1, prev.frames_since_update + 1)
            velocity = ((ccx - pcx) / frames, (ccy - pcy) / frames)
        else:
            velocity = (0.0, 0.0)
        self._states[key] = TrackState(bbox=bbox, velocity=velocity)

    def predict(self, key: int) -> Optional[BBox]:
        """Advance ``key``'s box by one frame of estimated motion + noise."""
        state = self._states.get(key)
        if state is None:
            return None
        state.frames_since_update += 1
        sigma = self.noise.base_sigma_px * (
            self.noise.drift_growth ** (state.frames_since_update - 1)
        )
        dx = state.velocity[0] + self._rng.normal(0.0, sigma)
        dy = state.velocity[1] + self._rng.normal(0.0, sigma)
        predicted = state.bbox.translate(dx, dy)
        state.bbox = predicted
        return predicted

    def drop(self, key: int) -> None:
        """Forget the motion state of ``key``."""
        self._states.pop(key, None)

    def tracked_keys(self) -> List[int]:
        """Sorted keys currently carrying motion state."""
        return sorted(self._states)

    def staleness(self, key: int) -> int:
        """Frames since ``key`` was last observed (-1 if unknown)."""
        state = self._states.get(key)
        return state.frames_since_update if state else -1


def find_new_regions(
    camera: Camera,
    objects: Sequence[WorldObject],
    predicted_boxes: Sequence[BBox],
    rng: np.random.Generator,
    noise: Optional[FlowNoiseModel] = None,
    dt: float = 0.1,
) -> List[BBox]:
    """Regions of moving pixels not explained by any predicted box.

    For each visible, sufficiently fast-moving object whose true box centre
    is not covered by a predicted box, emit a loose region around it (the
    pixel-motion cluster). This is how new arrivals get detected at their
    first appearance instead of waiting for the next key frame.
    """
    noise = noise or FlowNoiseModel()
    regions: List[BBox] = []
    for obj in objects:
        box = camera.project_object(obj)
        if box is None:
            continue
        cx, cy = box.center
        if any(p.contains_point(cx, cy) for p in predicted_boxes):
            continue
        apparent_speed = _apparent_speed_px(camera, obj, dt)
        if apparent_speed < noise.min_apparent_speed_px:
            continue  # flow can't see near-static targets
        # Flow clusters are coarse: inflate and jitter the region.
        inflate = 1.0 + float(rng.uniform(0.1, 0.4))
        jitter = float(rng.normal(0.0, 2.0))
        region = box.scale(inflate).translate(jitter, jitter)
        w, h = camera.frame_size
        region = region.clip(float(w), float(h))
        if not region.is_empty():
            regions.append(region)
    return regions


def _apparent_speed_px(camera: Camera, obj: WorldObject, dt: float) -> float:
    """Pixel-space speed of the object's centre over one frame interval."""
    now = camera.project_point(obj.x, obj.y, obj.height / 2.0)
    vx, vy = obj.velocity
    nxt = camera.project_point(obj.x + vx * dt, obj.y + vy * dt, obj.height / 2.0)
    if now is None or nxt is None:
        return 0.0
    return float(np.hypot(nxt[0] - now[0], nxt[1] - now[1]))
