"""Tracking-based image slicing (Section II-B).

On regular frames the DNN only inspects square regions around the
predicted object locations, quantized to the size set so same-size regions
can be batched. The quantized size of an object is **fixed within a
scheduling horizon** on a given camera — with one exception: when the
object grows beyond its region, the region is re-quantized upward (the
paper performs "downsizing" of the image content instead, which costs the
same; we model it as the size staying servable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.box import DEFAULT_SIZE_SET, BBox, quantize_size


@dataclass(frozen=True, slots=True)
class Slice:
    """One partial-frame inspection task: a search region + batching key."""

    key: int  # local track id on this camera
    region: BBox
    target_size: int


class TargetSizeBook:
    """Per-horizon registry fixing each object's quantized target size.

    ``assign`` pins a size at the start of a horizon (or on first sight);
    ``lookup`` returns the pinned size; ``reset`` starts a new horizon.
    """

    def __init__(self, size_set: Sequence[int] = DEFAULT_SIZE_SET) -> None:
        if not size_set:
            raise ValueError("size_set must be non-empty")
        self.size_set = tuple(sorted(size_set))
        self._sizes: Dict[int, int] = {}

    def assign(self, key: int, box: BBox, margin: float = 8.0) -> int:
        """Pin (or re-pin) the quantized size for ``key`` from its box."""
        size = quantize_size(box.expand(margin).long_side, self.size_set)
        self._sizes[key] = size
        return size

    def lookup(self, key: int) -> Optional[int]:
        """The pinned size for ``key``, or None if unassigned."""
        return self._sizes.get(key)

    def lookup_or_assign(self, key: int, box: BBox, margin: float = 8.0) -> int:
        """Return the pinned size, assigning it on first sight."""
        existing = self._sizes.get(key)
        if existing is not None:
            return existing
        return self.assign(key, box, margin)

    def drop(self, key: int) -> None:
        """Remove ``key``'s pinned size."""
        self._sizes.pop(key, None)

    def reset(self) -> None:
        """Start a new horizon: clear every pinned size."""
        self._sizes.clear()

    def sizes(self) -> Dict[int, int]:
        """A snapshot copy of all pinned sizes."""
        return dict(self._sizes)


def build_slices(
    predicted: Dict[int, BBox],
    book: TargetSizeBook,
    frame_size: Tuple[int, int],
    margin: float = 8.0,
) -> List[Slice]:
    """Turn predicted boxes into quantized, frame-clipped slices.

    The square region is centred on the predicted box; its side is the
    pinned target size. Regions are shifted (not shrunk) to stay inside the
    frame so the batching key remains exact.
    """
    w, h = frame_size
    slices: List[Slice] = []
    for key in sorted(predicted):
        box = predicted[key]
        size = book.lookup_or_assign(key, box, margin)
        cx, cy = box.center
        half = size / 2.0
        # Shift the centre so the square fits the frame where possible.
        cx = min(max(cx, half), max(half, w - half))
        cy = min(max(cy, half), max(half, h - half))
        region = BBox.from_xywh(cx, cy, float(size), float(size)).clip(
            float(w), float(h)
        )
        if region.is_empty():
            continue
        slices.append(Slice(key=key, region=region, target_size=size))
    return slices


def slice_counts_by_size(slices: Sequence[Slice]) -> Dict[int, int]:
    """``{target_size: n_slices}`` — the GPU planner's input."""
    counts: Dict[int, int] = {}
    for s in slices:
        counts[s.target_size] = counts.get(s.target_size, 0) + 1
    return counts
