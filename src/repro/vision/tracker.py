"""Local track management: tracking-by-detection with IoU association.

Each camera node maintains a set of :class:`Track` objects. New detections
are associated to existing tracks by IoU using the Hungarian matcher (the
SORT recipe the paper builds on, its reference [14]); unmatched detections
open new tracks; tracks unseen for too long are retired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.box import BBox
from repro.ml.hungarian import hungarian
from repro.vision.detector import Detection
from repro.world.entities import ObjectClass


@dataclass
class Track:
    """A locally tracked object on one camera."""

    track_id: int
    bbox: BBox
    object_class: ObjectClass
    last_gt_id: int  # ground-truth id of last matched detection (eval only)
    age: int = 0  # frames since creation
    misses: int = 0  # consecutive frames without a matched detection
    hits: int = 1  # total matched detections

    def mark_matched(self, det: Detection) -> None:
        """Refresh the track from a matched detection."""
        self.bbox = det.bbox
        self.object_class = det.object_class
        self.last_gt_id = det.gt_object_id
        self.misses = 0
        self.hits += 1

    def mark_missed(self) -> None:
        """Record one frame without a matched detection."""
        self.misses += 1


class TrackManager:
    """IoU/Hungarian tracking-by-detection for a single camera."""

    def __init__(
        self,
        iou_threshold: float = 0.25,
        max_misses: int = 3,
        first_track_id: int = 0,
    ) -> None:
        if not 0.0 < iou_threshold < 1.0:
            raise ValueError("iou_threshold must be in (0, 1)")
        if max_misses < 0:
            raise ValueError("max_misses must be non-negative")
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self._tracks: Dict[int, Track] = {}
        self._next_id = first_track_id

    # ------------------------------------------------------------------
    @property
    def tracks(self) -> List[Track]:
        return [self._tracks[k] for k in sorted(self._tracks)]

    def track(self, track_id: int) -> Optional[Track]:
        """Look up a live track by id (None if absent)."""
        return self._tracks.get(track_id)

    def update(
        self,
        detections: Sequence[Detection],
        predicted: Optional[Dict[int, BBox]] = None,
    ) -> Tuple[List[Track], List[Track]]:
        """Associate ``detections`` with live tracks.

        ``predicted`` optionally supplies flow-predicted boxes per track id
        to match against (instead of each track's last box), which is the
        paper's optical-flow-aided association. Returns
        ``(matched_or_new_tracks, retired_tracks)``.
        """
        track_ids = sorted(self._tracks)
        ref_boxes = [
            (predicted or {}).get(tid, self._tracks[tid].bbox) for tid in track_ids
        ]
        matched_tids, unmatched_dets = self._match(ref_boxes, track_ids, detections)

        touched: List[Track] = []
        for tid, det in matched_tids:
            self._tracks[tid].mark_matched(det)
            touched.append(self._tracks[tid])
        matched_set = {tid for tid, _ in matched_tids}
        for tid in track_ids:
            if tid not in matched_set:
                self._tracks[tid].mark_missed()
        for det in unmatched_dets:
            track = Track(
                track_id=self._next_id,
                bbox=det.bbox,
                object_class=det.object_class,
                last_gt_id=det.gt_object_id,
            )
            self._next_id += 1
            self._tracks[track.track_id] = track
            touched.append(track)

        retired = self._retire()
        for track in self._tracks.values():
            track.age += 1
        return touched, retired

    def retire_track(self, track_id: int) -> None:
        """Drop a track immediately, regardless of its miss count."""
        self._tracks.pop(track_id, None)

    def reset(self) -> None:
        """Clear all tracks."""
        self._tracks.clear()

    # ------------------------------------------------------------------
    def _match(
        self,
        ref_boxes: Sequence[BBox],
        track_ids: Sequence[int],
        detections: Sequence[Detection],
    ) -> Tuple[List[Tuple[int, Detection]], List[Detection]]:
        if not track_ids or not detections:
            return [], list(detections)
        cost = np.array(
            [[1.0 - ref.iou(det.bbox) for det in detections] for ref in ref_boxes]
        )
        pairs = hungarian(cost)
        matched: List[Tuple[int, Detection]] = []
        used_dets = set()
        for r, c in pairs:
            if cost[r, c] <= 1.0 - self.iou_threshold:
                matched.append((track_ids[r], detections[c]))
                used_dets.add(c)
        unmatched = [d for i, d in enumerate(detections) if i not in used_dets]
        return matched, unmatched

    def _retire(self) -> List[Track]:
        dead = [
            tid
            for tid, t in self._tracks.items()
            if t.misses > self.max_misses
        ]
        return [self._tracks.pop(tid) for tid in dead]
