"""Vision pipeline: simulated detector, flow prediction, slicing, tracking."""

from repro.vision.detector import Detection, DetectorErrorModel, SimulatedDetector
from repro.vision.flow import (
    FlowNoiseModel,
    FlowPredictor,
    TrackState,
    find_new_regions,
)
from repro.vision.slicing import (
    Slice,
    TargetSizeBook,
    build_slices,
    slice_counts_by_size,
)
from repro.vision.tracker import Track, TrackManager

__all__ = [
    "Detection",
    "DetectorErrorModel",
    "SimulatedDetector",
    "FlowPredictor",
    "FlowNoiseModel",
    "TrackState",
    "find_new_regions",
    "Slice",
    "TargetSizeBook",
    "build_slices",
    "slice_counts_by_size",
    "Track",
    "TrackManager",
]
