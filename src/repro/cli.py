"""Command-line interface.

Usage::

    python -m repro.cli run --scenario S1 --policy balb --horizons 30
    python -m repro.cli compare --scenario S2
    python -m repro.cli experiments --only FIG13 --out report.txt
    python -m repro.cli scenarios

Every subcommand prints plain-text tables; ``experiments`` can also write
the combined report to a file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.report import format_table
from repro.faults import CHAOS_PRESETS, validate_fault_spec
from repro.faults.spec import spec_carries_ingest_bursts
from repro.obs import (
    format_metrics_table,
    format_span_summary,
    read_spans_jsonl,
    write_spans_jsonl,
)
from repro.runtime.ingest import INGEST_POLICIES
from repro.runtime.metrics import speedup_vs
from repro.runtime.pipeline import (
    POLICIES,
    RUNTIMES,
    PipelineConfig,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import ALL_SCENARIOS, get_scenario


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="S1", help="S1, S2 or S3")
    parser.add_argument("--horizon", type=int, default=10,
                        help="frames per scheduling horizon (T)")
    parser.add_argument("--horizons", type=int, default=30,
                        help="number of horizons to simulate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--train-duration", type=float, default=120.0,
                        help="association training segment (seconds)")
    parser.add_argument("--occlusion", action="store_true",
                        help="enable inter-object occlusion")
    parser.add_argument("--redundancy", type=int, default=1,
                        help="cameras per object (Section V extension)")
    parser.add_argument("--gpu-jitter", type=float, default=0.02,
                        help="GPU latency noise as a std fraction, >= 0 "
                             "(0 disables jitter)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault spec, e.g. 'crash:cam=1,at=12,for=10;"
                             "loss:p=0.1' (see repro.faults.spec)")
    parser.add_argument("--chaos", default=None,
                        choices=sorted(CHAOS_PRESETS),
                        help="named chaos preset of stochastic faults, "
                             "compiled deterministically from --seed")
    parser.add_argument("--runtime", default="sync", choices=RUNTIMES,
                        help="frame-loop implementation; 'event' adds the "
                             "bounded ingest edge (byte-identical to 'sync' "
                             "without ingest_burst faults)")
    parser.add_argument("--ingest-capacity", type=int, default=4,
                        help="per-camera ingest queue capacity "
                             "(event runtime)")
    parser.add_argument("--ingest-policy", default="drop-oldest",
                        choices=INGEST_POLICIES,
                        help="backpressure policy when a burst overflows "
                             "the ingest queue (event runtime)")
    parser.add_argument("--serve-subscribers", type=int, default=0,
                        help="simulated live-state subscribers on the "
                             "serving edge (0 disables it)")
    parser.add_argument("--serve-every", type=int, default=1,
                        help="snapshot publication cadence in frames "
                             "(bounds subscriber staleness)")


def _faults_from(args: argparse.Namespace) -> Optional[str]:
    """Resolve --faults / --chaos into one spec string (or None)."""
    spec = getattr(args, "faults", None)
    chaos = getattr(args, "chaos", None)
    if spec and chaos:
        raise SystemExit("error: --faults and --chaos are mutually exclusive")
    if spec:
        try:
            validate_fault_spec(spec)
        except ValueError as exc:
            raise SystemExit(f"error: bad --faults spec: {exc}") from exc
        return spec
    return chaos


def _config_from(
    args: argparse.Namespace, policy: str, trace: bool = False
) -> PipelineConfig:
    faults = _faults_from(args)
    runtime = getattr(args, "runtime", "sync")
    if runtime != "event" and spec_carries_ingest_bursts(faults):
        raise SystemExit(
            "error: ingest_burst faults need --runtime event (the sync "
            "loop has no ingest edge to absorb a burst)"
        )
    try:
        return PipelineConfig(
            policy=policy,
            horizon=args.horizon,
            n_horizons=args.horizons,
            warmup_s=30.0,
            train_duration_s=args.train_duration,
            seed=args.seed,
            occlusion=args.occlusion,
            redundancy=args.redundancy,
            gpu_jitter=getattr(args, "gpu_jitter", 0.02),
            trace=trace,
            faults=faults,
            checkpoint_path=getattr(args, "checkpoint", None),
            checkpoint_every=getattr(args, "checkpoint_every", 0) or 0,
            stop_after_frames=getattr(args, "stop_after", None),
            runtime=runtime,
            ingest_capacity=getattr(args, "ingest_capacity", 4),
            ingest_policy=getattr(args, "ingest_policy", "drop-oldest"),
            serve_subscribers=getattr(args, "serve_subscribers", 0),
            serve_every=getattr(args, "serve_every", 1),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _serving_summary_table(result) -> str:
    """The serving-edge table printed when --serve-subscribers is set."""
    def metric(name: str, kind: str = "counter") -> int:
        return int(sum(
            m["value"] for m in result.metrics
            if m["kind"] == kind and m["name"] == name
        ))

    requests = metric("serving_requests_total")
    hits = metric("serving_cache_hits_total")
    rows = [
        ("snapshots published", metric("serving_snapshots_total")),
        ("subscriber requests", requests),
        ("cache hits", hits),
        ("cache misses", metric("serving_cache_misses_total")),
        ("hit rate", round(hits / requests, 4) if requests else 0.0),
        ("max staleness frames",
         metric("serving_staleness_frames", "gauge")),
    ]
    return format_table(["metric", "value"], rows, title="serving summary")


def _fault_summary_table(result, title: str = "fault summary") -> str:
    """The fault-summary table shared by ``run`` and ``compare``."""
    def counter_sum(name: str) -> int:
        return int(sum(
            m["value"] for m in result.metrics
            if m["kind"] == "counter" and m["name"] == name
        ))

    rows = [
        ("coverage loss", round(result.coverage_loss(), 4)),
        ("recall (lost counted as missed)",
         round(result.object_recall(count_lost_as_missed=True), 4)),
        ("fault events", counter_sum("fault_events_total")),
        ("forced key frames", counter_sum("forced_key_frames_total")),
        ("assignment fallbacks", counter_sum("assignment_fallbacks_total")),
        ("messages dropped", counter_sum("messages_dropped_total")),
    ]
    if counter_sum("ingest_offered_total"):
        rows += [
            ("ingest frames offered", counter_sum("ingest_offered_total")),
            ("ingest frames served", counter_sum("ingest_served_total")),
            ("ingest frames dropped", counter_sum("ingest_dropped_total")),
            ("ingest frames coalesced",
             counter_sum("ingest_coalesced_total")),
            ("ingest stalls", counter_sum("ingest_stalled_frames_total")),
            ("ingest degraded key frames",
             counter_sum("ingest_degraded_frames_total")),
        ]
    wire_dropped = (
        counter_sum("wire_corrupt_dropped_total")
        + counter_sum("wire_duplicates_dropped_total")
        + counter_sum("wire_reordered_total")
    )
    if counter_sum("link_giveups_total") or wire_dropped:
        rows += [
            ("link give-ups", counter_sum("link_giveups_total")),
            ("messages corrupted",
             counter_sum("messages_corrupted_total")),
            ("wire corrupt dropped",
             counter_sum("wire_corrupt_dropped_total")),
            ("wire duplicates dropped",
             counter_sum("wire_duplicates_dropped_total")),
            ("wire reordered held",
             counter_sum("wire_reordered_total")),
        ]
    if counter_sum("failover_split_takeovers_total"):
        rows += [
            ("split takeovers",
             counter_sum("failover_split_takeovers_total")),
            ("partition reunites",
             counter_sum("failover_reunites_total")),
            ("stale epochs fenced",
             counter_sum("failover_fenced_total")),
        ]
    if counter_sum("health_suspects_total") or counter_sum(
        "health_quarantines_total"
    ):
        rows += [
            ("health suspects", counter_sum("health_suspects_total")),
            ("cameras quarantined",
             counter_sum("health_quarantines_total")),
            ("probation admissions",
             counter_sum("health_probations_total")),
            ("cameras readmitted",
             counter_sum("health_readmissions_total")),
            ("membership re-fits",
             counter_sum("membership_refits_total")),
            ("frozen sensor frames",
             counter_sum("sensor_frozen_frames_total")),
        ]
    if counter_sum("scheduler_down_frames_total"):
        recovery = next(
            (m for m in result.metrics
             if m["kind"] == "histogram"
             and m["name"] == "failover_recovery_ms"),
            None,
        )
        rows += [
            ("scheduler down frames",
             counter_sum("scheduler_down_frames_total")),
            ("skipped key frames", counter_sum("skipped_key_frames_total")),
            ("failover takeovers", counter_sum("failover_takeovers_total")),
            ("failover handbacks", counter_sum("failover_handbacks_total")),
            ("checkpoint replications",
             counter_sum("failover_replications_total")),
            ("mean recovery ms",
             0.0 if recovery is None else round(recovery["mean"], 1)),
        ]
    return format_table(["metric", "value"], rows, title=title)


def cmd_run(args: argparse.Namespace) -> int:
    """Run one policy on one scenario and print its metrics."""
    if args.resume:
        if (
            args.faults or args.chaos or args.trace or args.checkpoint
            or args.runtime == "event"
        ):
            raise SystemExit(
                "error: --resume restores the checkpointed run; it cannot "
                "be combined with --faults/--chaos/--trace/--checkpoint/"
                "--runtime event"
            )
        from repro.checkpoint import CheckpointError, load_checkpoint
        from repro.runtime.pipeline import Pipeline

        try:
            checkpoint = load_checkpoint(args.resume)
        except CheckpointError as exc:
            raise SystemExit(f"error: {exc}") from exc
        scenario = checkpoint.scenario
        config = checkpoint.config
        trained = checkpoint.trained
        print(f"Scenario {scenario.name}: {scenario.description}")
        pipeline = Pipeline(scenario, config, trained=trained)
        result = pipeline.resume_state(checkpoint.state)
    else:
        if (args.checkpoint_every or args.stop_after) and not args.checkpoint:
            raise SystemExit(
                "error: --checkpoint-every/--stop-after require --checkpoint"
            )
        scenario = get_scenario(args.scenario, seed=args.seed)
        config = _config_from(args, args.policy, trace=bool(args.trace))
        print(f"Scenario {scenario.name}: {scenario.description}")
        trained = train_models(scenario, config)
        result = run_policy(scenario, args.policy, config, trained)
        total = config.horizon * config.n_horizons
        if config.stop_after_frames is not None and result.n_frames < total:
            print(
                f"interrupted after {result.n_frames}/{total} frames; "
                f"checkpoint written to {config.checkpoint_path}"
            )
            print(f"resume with: repro run --resume {config.checkpoint_path}")
            return 0
    print(
        format_table(
            ["policy", "recall", "slowest-cam ms"],
            [(result.policy, result.object_recall(),
              round(result.mean_slowest_latency(), 1))],
        )
    )
    if config.faults is not None:
        print(_fault_summary_table(result))
    if config.serve_subscribers:
        print(_serving_summary_table(result))
    per_cam = result.per_camera_mean_latency()
    print(
        format_table(
            ["camera", "device", "mean inference ms"],
            [
                (cam, trained.profiles[cam].device_name, round(ms, 1))
                for cam, ms in sorted(per_cam.items())
            ],
            title="per-camera latency",
        )
    )
    if args.trace:
        write_spans_jsonl(result.spans, args.trace)
        print(f"\nwrote {len(result.spans)} spans to {args.trace}")
        print(format_span_summary(result.spans, title="measured spans"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a trace: from a JSONL file, or from a fresh traced run."""
    if args.input:
        try:
            spans = read_spans_jsonl(args.input)
        except FileNotFoundError:
            print(f"error: no such trace file: {args.input}", file=sys.stderr)
            return 1
        print(format_span_summary(spans, title=f"trace {args.input}"))
        return 0

    scenario = get_scenario(args.scenario, seed=args.seed)
    config = _config_from(args, args.policy, trace=True)
    print(f"Scenario {scenario.name}: {scenario.description}")
    trained = train_models(scenario, config)
    result = run_policy(scenario, args.policy, config, trained)
    if args.out:
        write_spans_jsonl(result.spans, args.out)
        print(f"wrote {len(result.spans)} spans to {args.out}")
    print(
        format_span_summary(
            result.spans,
            title=f"measured spans ({result.policy} on {scenario.name})",
        )
    )
    measured = result.measured_stage_breakdown()
    modeled = result.overhead_breakdown()
    print(
        format_table(
            ["stage", "measured wall ms/frame", "modeled ms/frame"],
            [
                (
                    stage,
                    round(measured.get(stage, 0.0), 3),
                    round(
                        modeled.get(
                            "total" if stage == "frame" else stage, 0.0
                        ),
                        3,
                    ),
                )
                for stage in ("central", "distributed", "frame")
            ],
            title="measured vs modeled per-frame breakdown",
        )
    )
    print(format_metrics_table(result.metrics, title="run metrics"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run several policies with shared trained models and compare."""
    scenario = get_scenario(args.scenario, seed=args.seed)
    config = _config_from(args, "balb")
    print(f"Scenario {scenario.name}: {scenario.description}")
    print("Training shared models...")
    trained = train_models(scenario, config)
    runs = {}
    for policy in args.policies:
        runs[policy] = run_policy(scenario, policy, config, trained)
    baseline = runs.get("full") or next(iter(runs.values()))
    print(
        format_table(
            ["policy", "recall", "slowest-cam ms", "speedup"],
            [
                (
                    policy,
                    result.object_recall(),
                    round(result.mean_slowest_latency(), 1),
                    round(speedup_vs(baseline, result), 2),
                )
                for policy, result in runs.items()
            ],
            title="policy comparison",
        )
    )
    if config.faults is not None:
        for policy, result in runs.items():
            print(
                _fault_summary_table(
                    result, title=f"fault summary ({policy})"
                )
            )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Regenerate the paper's figures/tables (all, or one via --only)."""
    # Imported lazily: pulls in every harness.
    from repro.experiments.runner import run_all

    if args.only:
        from repro.experiments import (
            run_ablations,
            run_extensions,
            run_fault_tolerance,
            run_figure10,
            run_figure11,
            run_figure12,
            run_figure13,
            run_figure14,
            run_table2,
        )
        from repro.experiments.runner import run_figure2_text

        registry = {
            "FIG2": lambda: run_figure2_text(args.seed),
            "FIG10": lambda: run_figure10(seed=args.seed),
            "FIG11": lambda: run_figure11(seed=args.seed),
            "FIG12": lambda: run_figure12(seed=args.seed),
            "FIG13": lambda: run_figure13(seed=args.seed),
            "FIG14": lambda: run_figure14(seed=args.seed),
            "TAB2": lambda: run_table2(seed=args.seed),
            "ABLATIONS": lambda: run_ablations(seed=args.seed),
            "EXTENSIONS": lambda: run_extensions(seed=args.seed),
            "FAULTS": lambda: run_fault_tolerance(seed=args.seed),
        }
        key = args.only.upper()
        if key not in registry:
            print(f"unknown experiment {args.only!r}; options: "
                  f"{', '.join(registry)}", file=sys.stderr)
            return 2
        body = registry[key]()
        print(body)
        if args.out:
            with open(args.out, "w") as f:
                f.write(body + "\n")
        return 0

    report = run_all(seed=args.seed, out_path=args.out)
    print(report)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the full report, optionally in parallel and cached."""
    # Imported lazily: pulls in every harness.
    from repro.experiments.parallel import FULL_PROFILE, QUICK_PROFILE
    from repro.experiments.runner import run_all

    profile = QUICK_PROFILE if args.quick else FULL_PROFILE
    try:
        report = run_all(
            seed=args.seed,
            out_path=args.out,
            workers=args.workers,
            cache=args.cache_dir,
            profile=profile,
            sections=[s.upper() for s in args.sections] if args.sections else None,
            timings=not args.no_timings,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the content-addressed artifact cache."""
    from repro.cache import ArtifactCache, default_cache_root

    root = args.dir or default_cache_root()
    cache = ArtifactCache(root)
    if args.action == "stats":
        stats = cache.stats()
        print(
            format_table(
                ["field", "value"],
                [
                    ("root", stats.root),
                    ("entries", stats.entries),
                    ("total bytes", stats.total_bytes),
                ],
                title="artifact cache",
            )
        )
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {root}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmarks (see ``repro.bench``)."""
    from repro.bench import main as bench_main

    argv = ["--out", args.out, "--max-regression", str(args.max_regression)]
    if args.quick:
        argv.append("--quick")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.profile:
        argv += ["--profile", args.profile]
    return bench_main(argv)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's determinism & invariant linter (``reprolint``).

    The linter lives in ``tools/reprolint`` at the repository root (it
    is developer tooling, not part of the installed package), so this
    subcommand only works from a source checkout.
    """
    import os

    try:
        from tools.reprolint.cli import main as reprolint_main
    except ImportError:
        # Not importable: either we're not at the repo root, or the
        # package was installed without its source tree.
        if os.path.isfile(os.path.join("tools", "reprolint", "cli.py")):
            sys.path.insert(0, os.getcwd())
            from tools.reprolint.cli import main as reprolint_main
        else:
            print(
                "error: reprolint not found — 'repro lint' runs the "
                "repo-local checker in tools/reprolint and must be "
                "invoked from a source checkout root",
                file=sys.stderr,
            )
            return 2
    argv = list(args.paths)
    if args.json:
        argv.insert(0, "--json")
    if args.list_rules:
        argv.insert(0, "--list-rules")
    return reprolint_main(argv)


def cmd_flow(args: argparse.Namespace) -> int:
    """Run the whole-program analyzer (``reproflow``).

    Like ``repro lint``, the analyzer lives in ``tools/reproflow`` at
    the repository root and only works from a source checkout.
    """
    import os

    try:
        from tools.reproflow.cli import main as reproflow_main
    except ImportError:
        if os.path.isfile(os.path.join("tools", "reproflow", "cli.py")):
            sys.path.insert(0, os.getcwd())
            from tools.reproflow.cli import main as reproflow_main
        else:
            print(
                "error: reproflow not found — 'repro flow' runs the "
                "repo-local whole-program analyzer in tools/reproflow "
                "and must be invoked from a source checkout root",
                file=sys.stderr,
            )
            return 2
    argv = list(args.paths)
    if args.json:
        argv.insert(0, "--json")
    if args.list_rules:
        argv.insert(0, "--list-rules")
    if args.no_baseline:
        argv.insert(0, "--no-baseline")
    if args.write_baseline:
        argv.insert(0, "--write-baseline")
    return reproflow_main(argv)


def cmd_soak(args: argparse.Namespace) -> int:
    """Run the chaos-soak invariant harness (see ``repro.experiments.soak``).

    Exit code 1 when any episode violates a control-plane invariant;
    the report then includes the shrunk, replayable fault schedule.
    """
    # Imported lazily: pulls in the full pipeline.
    from repro.experiments.soak import format_soak_report, run_soak

    try:
        result = run_soak(
            episodes=args.episodes,
            seed=args.seed,
            fencing=not args.no_fencing,
            preset=args.preset,
            scenario_name=args.scenario,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    report = format_soak_report(result)
    print(report, end="")
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
    return 0 if result.ok else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List the available scenario deployments."""
    rows = []
    for name, factory in sorted(ALL_SCENARIOS.items()):
        scenario = factory()
        devices = ", ".join(d.name.replace("jetson-", "") for d in scenario.devices)
        rows.append((name, len(scenario.cameras), devices,
                     scenario.description))
    print(
        format_table(
            ["name", "cameras", "devices", "description"],
            rows,
            title="available scenarios",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-view scheduling reproduction (ICDCS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one policy on one scenario")
    _add_run_options(run_parser)
    run_parser.add_argument("--policy", default="balb", choices=POLICIES)
    run_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="collect a span trace and write it to PATH as JSON lines",
    )
    run_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a crash-consistent checkpoint of the run state to PATH",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="checkpoint every K frames (requires --checkpoint)",
    )
    run_parser.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="simulate an interruption: checkpoint and stop after N "
             "frames (requires --checkpoint); a later --resume run is "
             "bit-identical to the uninterrupted one",
    )
    run_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a checkpointed run to completion; every other "
             "option is restored from the checkpoint",
    )
    run_parser.set_defaults(func=cmd_run)

    trace_parser = sub.add_parser(
        "trace", help="run one traced scenario (or summarize a JSONL trace)"
    )
    _add_run_options(trace_parser)
    trace_parser.add_argument("--policy", default="balb", choices=POLICIES)
    trace_parser.add_argument(
        "--input", default=None, metavar="PATH",
        help="summarize an existing JSONL trace instead of running",
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the collected trace to PATH as JSON lines",
    )
    trace_parser.set_defaults(func=cmd_trace)

    compare_parser = sub.add_parser(
        "compare", help="run several policies with shared models"
    )
    _add_run_options(compare_parser)
    compare_parser.add_argument(
        "--policies", nargs="+", default=list(POLICIES),
        choices=POLICIES,
    )
    compare_parser.set_defaults(func=cmd_compare)

    exp_parser = sub.add_parser(
        "experiments", help="regenerate the paper's figures/tables"
    )
    exp_parser.add_argument("--only", default=None,
                            help="one of FIG2/FIG10/.../TAB2/ABLATIONS/"
                                 "EXTENSIONS/FAULTS")
    exp_parser.add_argument("--out", default=None, help="also write to file")
    exp_parser.add_argument("--seed", type=int, default=0)
    exp_parser.set_defaults(func=cmd_experiments)

    report_parser = sub.add_parser(
        "report",
        help="regenerate the full report (parallel, cached, profiled)",
    )
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--out", default=None, help="also write to file")
    report_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; 1 = serial (byte-identical either way)",
    )
    report_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact-cache root (default: REPRO_CACHE_DIR or "
             "~/.cache/repro when workers > 1)",
    )
    report_parser.add_argument(
        "--quick", action="store_true",
        help="small smoke profile instead of the full paper sweeps",
    )
    report_parser.add_argument(
        "--sections", nargs="+", default=None, metavar="NAME",
        help="subset of report sections (FIG2 ... FAULTS)",
    )
    report_parser.add_argument(
        "--no-timings", action="store_true",
        help="omit wall-clock figures (deterministic report bytes)",
    )
    report_parser.set_defaults(func=cmd_report)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the artifact cache"
    )
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache root (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_parser.set_defaults(func=cmd_cache)

    bench_parser = sub.add_parser(
        "bench", help="run hot-path microbenchmarks (perf-regression gate)"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="fewer rounds (CI smoke mode)"
    )
    bench_parser.add_argument(
        "--out", default="BENCH_micro.json", help="output JSON path"
    )
    bench_parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON to gate against (exit 1 on regression)",
    )
    bench_parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail when median exceeds baseline by this ratio (default 2.0)",
    )
    bench_parser.add_argument(
        "--profile", default=None, metavar="NAME",
        help="profile one named benchmark under cProfile and print the "
        "top-20 cumulative functions instead of running the suite",
    )
    bench_parser.set_defaults(func=cmd_bench)

    soak_parser = sub.add_parser(
        "soak",
        help="chaos-soak the control plane under the invariant monitor",
    )
    soak_parser.add_argument(
        "--episodes", type=int, default=20,
        help="seeded chaos episodes to run (default 20)",
    )
    soak_parser.add_argument("--seed", type=int, default=0)
    soak_parser.add_argument(
        "--preset", default="wire", choices=sorted(CHAOS_PRESETS),
        help="chaos preset each episode compiles its faults from",
    )
    soak_parser.add_argument("--scenario", default="S1", help="S1, S2 or S3")
    soak_parser.add_argument(
        "--no-fencing", action="store_true",
        help="run the legacy, fencing-off protocol (demonstrates the "
             "split-brain violation and the shrunk repro schedule)",
    )
    soak_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the soak report to PATH (byte-deterministic "
             "for a given seed; CI diffs two runs)",
    )
    soak_parser.set_defaults(func=cmd_soak)

    scen_parser = sub.add_parser("scenarios", help="list scenarios")
    scen_parser.set_defaults(func=cmd_scenarios)

    lint_parser = sub.add_parser(
        "lint",
        help="run the determinism & invariant linter (reprolint)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a single JSON document",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the RL rule catalog and exit",
    )
    lint_parser.set_defaults(func=cmd_lint)

    flow_parser = sub.add_parser(
        "flow",
        help="run the whole-program analyzer (reproflow)",
    )
    flow_parser.add_argument(
        "paths", nargs="*", default=["src", "tools"],
        help="files or directories to analyze (default: src tools)",
    )
    flow_parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a single JSON document",
    )
    flow_parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the checked-in baseline",
    )
    flow_parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to the current findings",
    )
    flow_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the RF rule catalog and exit",
    )
    flow_parser.set_defaults(func=cmd_flow)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
