"""Evaluation scenarios modelled after the AI City Challenge deployments."""

from repro.scenarios.aic21 import (
    ALL_SCENARIOS,
    get_scenario,
    scenario_s1,
    scenario_s2,
    scenario_s3,
)
from repro.scenarios.builder import Scenario, heading_towards

__all__ = [
    "Scenario",
    "heading_towards",
    "scenario_s1",
    "scenario_s2",
    "scenario_s3",
    "ALL_SCENARIOS",
    "get_scenario",
]
