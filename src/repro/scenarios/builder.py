"""Scenario descriptor: world + camera rig + device fleet in one bundle.

A :class:`Scenario` is a reproducible factory: ``build()`` returns a fresh
:class:`~repro.world.world.World` and the static camera rig/device fleet,
so repeated experiment runs are independent but identically configured.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Callable, Dict, Tuple

from repro.cameras.camera import Camera
from repro.cameras.rig import CameraRig
from repro.devices.profiles import DeviceType
from repro.world.world import World, WorldConfig


@dataclass(frozen=True)
class Scenario:
    """A named deployment: world dynamics, cameras and their devices."""

    name: str
    description: str
    world_factory: Callable[[int], WorldConfig]
    cameras: Tuple[Camera, ...]
    devices: Tuple[DeviceType, ...]
    fps: float = 10.0
    default_seed: int = 0

    def __post_init__(self) -> None:
        if len(self.cameras) != len(self.devices):
            raise ValueError(
                f"{len(self.cameras)} cameras but {len(self.devices)} devices"
            )
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.fps

    def build(self, seed: int | None = None) -> Tuple[World, CameraRig]:
        """Instantiate a fresh world and the (static) camera rig."""
        actual_seed = self.default_seed if seed is None else seed
        world = World(self.world_factory(actual_seed))
        return world, CameraRig(self.cameras)

    def device_map(self) -> Dict[int, DeviceType]:
        """``{camera_id: device_type}`` pairing, per Table I."""
        return {
            cam.camera_id: dev for cam, dev in zip(self.cameras, self.devices)
        }


def heading_towards(
    from_xy: Tuple[float, float], to_xy: Tuple[float, float]
) -> float:
    """Yaw angle pointing from one ground point to another."""
    return math.atan2(to_xy[1] - from_xy[1], to_xy[0] - from_xy[0])
