"""The three evaluation scenarios, modelled after AI City Challenge 2021.

The paper evaluates on three AIC21 deployments (Section IV-A2):

* **S1** — 5 cameras around a traffic intersection facing different
  directions, with regular traffic patterns caused by the traffic lights.
  Hardware: 2x Jetson Xavier, 2x Jetson TX2, 1x Jetson Nano.
* **S2** — 2 cameras at a residential roadside with sparse vehicles.
  Hardware: 1x Jetson Xavier, 1x Jetson Nano.
* **S3** — 3 cameras: 2 monitoring a fork road + 1 facing the roadside,
  with busy traffic. Hardware: 1x Xavier, 1x TX2, 1x Nano.

We reproduce the deployments as synthetic worlds with the same structure:
camera counts, view-overlap patterns, traffic density regimes and the
Table I device fleets. Camera 5 of S1 uses the fisheye-style 1280x960
frame of the dataset; the rest use 1280x704.
"""

from __future__ import annotations

from typing import List

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.devices.profiles import (
    JETSON_AGX_XAVIER,
    JETSON_NANO,
    JETSON_TX2,
)
from repro.scenarios.builder import Scenario, heading_towards
from repro.world.entities import ObjectClass
from repro.world.motion import MotionParams, Route, TrafficLight
from repro.world.spawn import SpawnSpec, rush_hour_modulator
from repro.world.world import WorldConfig

REGULAR_FRAME = CameraIntrinsics(focal_px=950.0, image_width=1280, image_height=704)
FISHEYE_FRAME = CameraIntrinsics(focal_px=620.0, image_width=1280, image_height=960)

_VEHICLE_MIX = {
    ObjectClass.CAR: 0.8,
    ObjectClass.TRUCK: 0.12,
    ObjectClass.BUS: 0.08,
}


def _camera_at(
    camera_id: int,
    x: float,
    y: float,
    z: float,
    look_at: tuple,
    intrinsics: CameraIntrinsics = REGULAR_FRAME,
    max_range: float = 70.0,
    pitch_down: float = 0.32,
) -> Camera:
    yaw = heading_towards((x, y), look_at)
    return Camera(
        camera_id=camera_id,
        pose=CameraPose(x=x, y=y, z=z, yaw=yaw, pitch_down=pitch_down),
        intrinsics=intrinsics,
        max_range=max_range,
    )


# ----------------------------------------------------------------------
# S1: five cameras around a signalized intersection
# ----------------------------------------------------------------------
def _s1_routes() -> List[Route]:
    return [
        Route(0, ((-90.0, -3.0), (90.0, -3.0)), name="eastbound"),
        Route(1, ((90.0, 3.0), (-90.0, 3.0)), name="westbound"),
        Route(2, ((3.0, -90.0), (3.0, 90.0)), name="northbound"),
        Route(3, ((-3.0, 90.0), (-3.0, -90.0)), name="southbound"),
    ]


def _s1_world(seed: int) -> WorldConfig:
    routes = _s1_routes()
    light = TrafficLight(
        stop_positions={0: 78.0, 1: 78.0, 2: 78.0, 3: 78.0},
        green_routes=[frozenset({0, 1}), frozenset({2, 3})],
        phase_duration=20.0,
    )
    specs = [
        SpawnSpec(
            routes[0],
            rate_per_s=0.50,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=150.0, low=0.4, high=1.8),
        ),
        SpawnSpec(
            routes[1],
            rate_per_s=0.42,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=110.0, low=0.3, high=1.6),
        ),
        SpawnSpec(
            routes[2],
            rate_per_s=0.65,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=90.0, low=0.3, high=1.9),
        ),
        SpawnSpec(
            routes[3],
            rate_per_s=0.32,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=130.0, low=0.4, high=1.7),
        ),
    ]
    return WorldConfig(
        routes=routes,
        spawn_specs=specs,
        traffic_light=light,
        motion=MotionParams(),
        seed=seed,
    )


def scenario_s1(seed: int = 0) -> Scenario:
    """S1: signalized intersection, 5 cameras, heterogeneous fleet."""
    cameras = (
        _camera_at(0, 35.0, -14.0, 7.0, look_at=(0.0, 0.0)),
        _camera_at(1, -35.0, 14.0, 7.0, look_at=(0.0, 0.0)),
        _camera_at(2, 14.0, 35.0, 7.0, look_at=(0.0, 0.0)),
        _camera_at(3, -14.0, -35.0, 7.0, look_at=(0.0, 0.0)),
        _camera_at(
            4, 0.0, -26.0, 11.0, look_at=(0.0, 0.0),
            intrinsics=FISHEYE_FRAME, max_range=60.0, pitch_down=0.45,
        ),
    )
    return Scenario(
        name="S1",
        description="5-camera signalized intersection (regular traffic)",
        world_factory=_s1_world,
        cameras=cameras,
        devices=(
            JETSON_AGX_XAVIER,
            JETSON_AGX_XAVIER,
            JETSON_TX2,
            JETSON_TX2,
            JETSON_NANO,
        ),
        default_seed=seed,
    )


# ----------------------------------------------------------------------
# S2: two cameras on a sparse residential road
# ----------------------------------------------------------------------
def _s2_routes() -> List[Route]:
    return [
        Route(0, ((-70.0, -2.0), (70.0, -2.0)), name="eastbound"),
        Route(1, ((70.0, 2.0), (-70.0, 2.0)), name="westbound"),
    ]


def _s2_world(seed: int) -> WorldConfig:
    routes = _s2_routes()
    specs = [
        SpawnSpec(
            routes[0],
            rate_per_s=0.15,
            class_mix={ObjectClass.CAR: 0.65, ObjectClass.TRUCK: 0.05,
                       ObjectClass.PEDESTRIAN: 0.3},
            rate_modulator=rush_hour_modulator(period_s=180.0, low=0.3, high=1.5),
        ),
        SpawnSpec(
            routes[1],
            rate_per_s=0.12,
            class_mix={ObjectClass.CAR: 0.7, ObjectClass.PEDESTRIAN: 0.3},
            rate_modulator=rush_hour_modulator(period_s=140.0, low=0.3, high=1.4),
        ),
    ]
    return WorldConfig(routes=routes, spawn_specs=specs, seed=seed)


def scenario_s2(seed: int = 0) -> Scenario:
    """S2: sparse residential roadside, 2 cameras with a large overlap."""
    cameras = (
        _camera_at(0, -10.0, -25.0, 7.0, look_at=(0.0, 0.0), max_range=85.0,
                   pitch_down=0.26),
        _camera_at(1, 10.0, -25.0, 7.0, look_at=(0.0, 0.0), max_range=85.0,
                   pitch_down=0.26),
    )
    return Scenario(
        name="S2",
        description="2-camera sparse residential roadside",
        world_factory=_s2_world,
        cameras=cameras,
        devices=(JETSON_AGX_XAVIER, JETSON_NANO),
        default_seed=seed,
    )


# ----------------------------------------------------------------------
# S3: three cameras on a busy fork road
# ----------------------------------------------------------------------
def _s3_routes() -> List[Route]:
    return [
        Route(0, ((-110.0, 0.0), (-10.0, 0.0), (90.0, 34.0)), name="main-to-north-branch"),
        Route(1, ((-110.0, -4.0), (-10.0, -4.0), (90.0, -38.0)), name="main-to-south-branch"),
        Route(2, ((90.0, 40.0), (-10.0, 4.0), (-110.0, 4.0)), name="north-branch-to-main"),
        Route(3, ((90.0, -44.0), (-10.0, -8.0), (-110.0, -8.0)), name="south-branch-to-main"),
    ]


def _s3_world(seed: int) -> WorldConfig:
    routes = _s3_routes()
    # Busy traffic: high base rates with strong bursts.
    specs = [
        SpawnSpec(
            routes[0],
            rate_per_s=0.65,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=100.0, low=0.5, high=2.0),
        ),
        SpawnSpec(
            routes[1],
            rate_per_s=0.50,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=80.0, low=0.5, high=1.8),
        ),
        SpawnSpec(
            routes[2],
            rate_per_s=0.55,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=120.0, low=0.4, high=1.9),
        ),
        SpawnSpec(
            routes[3],
            rate_per_s=0.42,
            class_mix=_VEHICLE_MIX,
            rate_modulator=rush_hour_modulator(period_s=95.0, low=0.4, high=1.7),
        ),
    ]
    return WorldConfig(routes=routes, spawn_specs=specs, seed=seed)


def scenario_s3(seed: int = 0) -> Scenario:
    """S3: busy fork road; 2 cameras at the fork + 1 roadside camera.

    The view overlaps are smaller than in S1/S2, which is why the paper
    reports the smallest speedup here.
    """
    cameras = (
        _camera_at(0, -45.0, -25.0, 8.0, look_at=(-20.0, -2.0), max_range=70.0),
        _camera_at(1, -5.0, 30.0, 8.0, look_at=(5.0, -5.0), max_range=65.0),
        _camera_at(2, 58.0, -4.0, 6.0, look_at=(75.0, -32.0), max_range=65.0),
    )
    return Scenario(
        name="S3",
        description="3-camera busy fork road",
        world_factory=_s3_world,
        cameras=cameras,
        devices=(JETSON_AGX_XAVIER, JETSON_TX2, JETSON_NANO),
        default_seed=seed,
    )


ALL_SCENARIOS = {
    "S1": scenario_s1,
    "S2": scenario_s2,
    "S3": scenario_s3,
}


def get_scenario(name: str, seed: int = 0) -> Scenario:
    """Look up a scenario factory by name (case insensitive)."""
    try:
        factory = ALL_SCENARIOS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(ALL_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    return factory(seed)
