"""Canonical ingest-burst workloads for the event runtime.

Burst specs are ordinary fault-DSL strings (``burst:...`` clauses, see
:mod:`repro.faults.spec`), but experiments, benchmarks and CI smoke jobs
should perturb the *same* workloads rather than each inventing its own —
these builders are the shared vocabulary. All of them scale with the run
geometry (horizon length, total frames), so a quick CI run and a full
report run exercise structurally identical bursts.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "fleet_burst_spec",
    "single_camera_burst_spec",
    "staggered_burst_spec",
    "burst_sweep_specs",
]


def single_camera_burst_spec(
    horizon: int, total_frames: int, camera: int = 1
) -> str:
    """One camera stalls for a bit more than one horizon, mid-run.

    The window intentionally straddles a scheduled key frame so the
    backpressure policies diverge: droppers lose it, the degrade policy
    folds it, the coalescer promotes the backlog.
    """
    start = max(1, total_frames // 4)
    duration = min(horizon + 2, max(1, total_frames - start - 1))
    return f"burst:cam={camera},at={start},for={duration}"


def fleet_burst_spec(horizon: int, total_frames: int) -> str:
    """Every camera stalls at once (an uplink hiccup), for one horizon."""
    start = max(1, total_frames // 2)
    duration = min(horizon, max(1, total_frames - start - 1))
    return f"burst:at={start},for={duration}"


def staggered_burst_spec(
    horizon: int, total_frames: int, cameras: Tuple[int, ...] = (0, 1, 2)
) -> str:
    """Bursts marching across cameras, one horizon apart.

    Windows overlap pairwise, so at most two cameras stall at once —
    the scheduler always keeps a quorum of live feeds.
    """
    duration = min(horizon + 1, max(1, total_frames // 4))
    clauses = []
    for i, camera in enumerate(cameras):
        start = max(1, 1 + i * horizon)
        # Keep the window inside the run (frames held past the end would
        # never be released); skip clauses that can't fit at all.
        clamped = min(duration, total_frames - start - 1)
        if start >= total_frames or clamped < 1:
            break
        clauses.append(f"burst:cam={camera},at={start},for={clamped}")
    return ";".join(clauses)


def burst_sweep_specs(horizon: int, total_frames: int) -> Tuple[str, ...]:
    """The canonical mild-to-harsh burst sweep, in severity order."""
    return (
        single_camera_burst_spec(horizon, total_frames),
        staggered_burst_spec(horizon, total_frames),
        fleet_burst_spec(horizon, total_frames),
    )
