"""Post-run analysis of pipeline results.

Utilities a downstream user needs to interrogate a
:class:`~repro.runtime.metrics.RunResult` beyond the headline metrics:
load-balance quality across cameras, tail latencies, per-horizon series,
and side-by-side policy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.runtime.metrics import RunResult


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over per-camera loads.

    1.0 means perfectly balanced; 1/n means one camera does everything.
    The latency-balancing objective of BALB should push this toward 1
    relative to static policies.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    total = arr.sum()
    if total == 0:
        return 1.0
    return float(total**2 / (arr.size * np.sum(arr**2)))


def load_balance_index(result: RunResult) -> float:
    """Jain fairness of the per-camera mean inference latencies."""
    means = result.per_camera_mean_latency()
    return jain_fairness(list(means.values()))


def latency_percentiles(
    result: RunResult, percentiles: Sequence[float] = (50.0, 90.0, 99.0)
) -> Dict[float, float]:
    """Percentiles of the per-frame *slowest-camera* latency."""
    per_frame = [
        max(f.inference_ms.values()) for f in result.frames if f.inference_ms
    ]
    if not per_frame:
        raise ValueError("result has no latency samples")
    values = np.percentile(np.asarray(per_frame), list(percentiles))
    return {p: float(v) for p, v in zip(percentiles, values)}


def per_horizon_latency(result: RunResult) -> List[float]:
    """The Figure 13 quantity per horizon (before averaging)."""
    out: List[float] = []
    for start in range(0, len(result.frames), result.horizon):
        chunk = result.frames[start : start + result.horizon]
        per_cam: Dict[int, List[float]] = {}
        for frame in chunk:
            for cam, ms in frame.inference_ms.items():
                per_cam.setdefault(cam, []).append(ms)
        if per_cam:
            out.append(max(float(np.mean(v)) for v in per_cam.values()))
    return out


def per_horizon_recall(result: RunResult) -> List[float]:
    """Object recall per horizon."""
    out: List[float] = []
    for start in range(0, len(result.frames), result.horizon):
        chunk = result.frames[start : start + result.horizon]
        num = sum(f.recall_numerator for f in chunk)
        den = sum(f.recall_denominator for f in chunk)
        out.append(num / den if den else 1.0)
    return out


def slice_load_series(result: RunResult, camera_id: int) -> List[int]:
    """Per-frame slice counts of one camera (regular frames only)."""
    return [
        f.n_slices.get(camera_id, 0)
        for f in result.frames
        if not f.is_key_frame
    ]


@dataclass(frozen=True)
class PolicyComparison:
    """A compact cross-policy summary table."""

    rows: Dict[str, Dict[str, float]]

    def as_table_rows(self) -> List[tuple]:
        """Rows matching :attr:`HEADERS`, ready for table rendering."""
        return [
            (
                policy,
                round(stats["recall"], 3),
                round(stats["latency_ms"], 1),
                round(stats["p99_ms"], 1),
                round(stats["fairness"], 3),
            )
            for policy, stats in self.rows.items()
        ]

    HEADERS = ("policy", "recall", "mean slowest ms", "p99 ms", "fairness")


def compare_policies(results: Mapping[str, RunResult]) -> PolicyComparison:
    """Summarize several runs (of the same scenario) side by side."""
    if not results:
        raise ValueError("need at least one result")
    rows: Dict[str, Dict[str, float]] = {}
    for policy, result in results.items():
        rows[policy] = {
            "recall": result.object_recall(),
            "latency_ms": result.mean_slowest_latency(),
            "p99_ms": latency_percentiles(result, (99.0,))[99.0],
            "fairness": load_balance_index(result),
        }
    return PolicyComparison(rows=rows)
