"""Content-addressed artifact cache for expensive offline stages.

Training the cross-camera association models (:func:`repro.runtime.
pipeline.train_models`) is deterministic in (scenario, seed, training
knobs) yet the experiment harness re-fits the same models at 10+ call
sites. This module caches such artifacts on disk, keyed by the SHA-256
of their canonically pickled inputs plus a code-version salt, so a warm
rerun of the full report skips every fit.

File layout mirrors :mod:`repro.checkpoint`: a magic header line, the
hex SHA-256 of the payload, then the pickled value. Writes go to a temp
file followed by ``os.replace`` — concurrent pool workers racing on the
same key each write a complete entry and the rename picks a winner, so
readers never observe a torn file. Loads verify the digest; a corrupted
entry is counted and treated as a miss, never an error.

Activation is ambient: ``with use_cache(cache): ...`` installs the cache
in a :class:`~contextvars.ContextVar` that :func:`train_models` consults,
so every call site gains caching without threading a parameter through
the experiment harnesses. Context variables do not cross process
boundaries — pool workers activate their own instance over the shared
cache directory.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass
import hashlib
import os
import pickle
from typing import Any, Iterator, Optional, Tuple

from repro.obs.registry import MetricsRegistry, get_registry

MAGIC = b"repro-cache-v1\n"

#: Bump to invalidate every previously cached artifact after a code
#: change that alters what :func:`train_models` (or any other cached
#: producer) computes for identical inputs.
ARTIFACT_VERSION = 1


def default_cache_root() -> str:
    """The on-disk cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one cache directory."""

    root: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    puts: int
    corrupt: int


class ArtifactCache:
    """A content-addressed pickle store under one root directory.

    Entries are sharded as ``root/<hex[:2]>/<hex>.pkl``. The instance
    keeps process-local hit/miss/put/corrupt counts and mirrors them
    into ``cache_*_total`` counters on its metrics registry.
    """

    def __init__(
        self, root: str, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = str(root)
        self.registry = registry if registry is not None else get_registry()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    # -- keys ----------------------------------------------------------
    def key_for(self, **parts: Any) -> str:
        """SHA-256 over the canonical pickle of keyword parts.

        Parts are sorted by name and pickled at a pinned protocol, so the
        key is stable across processes for identically constructed
        inputs; the :data:`ARTIFACT_VERSION` salt invalidates everything
        at once when cached semantics change.
        """
        payload = pickle.dumps(sorted(parts.items()), protocol=4)
        digest = hashlib.sha256()
        digest.update(f"repro-cache-key-v{ARTIFACT_VERSION}\n".encode("ascii"))
        digest.update(payload)
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # -- read/write ----------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None on miss (absent *or* corrupt entry)."""
        try:
            with open(self._path(key), "rb") as fh:
                blob = fh.read()
        except OSError:
            self._miss()
            return None
        ok, value = _decode(blob)
        if not ok:
            self.corrupt += 1
            self.registry.counter("cache_corrupt_total").inc()
            self._miss()
            return None
        self.hits += 1
        self.registry.counter("cache_hits_total").inc()
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` (temp file + rename, digest header)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(MAGIC)
                fh.write(digest + b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.puts += 1
        self.registry.counter("cache_puts_total").inc()

    def _miss(self) -> None:
        self.misses += 1
        self.registry.counter("cache_misses_total").inc()

    # -- maintenance ---------------------------------------------------
    def entry_paths(self) -> Iterator[str]:
        """Every stored entry file, in sorted order."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> CacheStats:
        """Entry count / total bytes on disk + this process's counters."""
        entries = 0
        total = 0
        for path in self.entry_paths():
            entries += 1
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return CacheStats(
            root=self.root,
            entries=entries,
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            corrupt=self.corrupt,
        )

    def clear(self) -> int:
        """Delete every entry (and empty shard dirs); returns the count."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                    os.rmdir(shard_dir)
        return removed


def _decode(blob: bytes) -> Tuple[bool, Optional[Any]]:
    """Verify magic + digest and unpickle; (False, None) on any damage."""
    if not blob.startswith(MAGIC):
        return False, None
    rest = blob[len(MAGIC):]
    sep = rest.find(b"\n")
    if sep != 64:  # hex-encoded sha256
        return False, None
    digest, payload = rest[:sep], rest[sep + 1:]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        return False, None
    try:
        return True, pickle.loads(payload)
    except Exception:  # pickle raises a zoo of exception types
        return False, None


# ----------------------------------------------------------------------
# Ambient activation
# ----------------------------------------------------------------------

_ACTIVE_CACHE: ContextVar[Optional[ArtifactCache]] = ContextVar(
    "repro_active_cache", default=None
)


def get_active_cache() -> Optional[ArtifactCache]:
    """The cache installed by the innermost :func:`use_cache`, if any."""
    return _ACTIVE_CACHE.get()


@contextlib.contextmanager
def use_cache(cache: ArtifactCache) -> Iterator[ArtifactCache]:
    """Install ``cache`` as the ambient artifact cache for this context."""
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)
