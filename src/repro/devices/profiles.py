"""Device catalogue: NVIDIA Jetson models used on the paper's testbed.

The paper's testbed mixes Jetson Nano, TX2 and Xavier boards (Table I).
The GPU specs below are calibrated against public YOLOv5s benchmark
figures for those boards (batch-1, 640 px input): Nano ~250 ms,
TX2 ~110 ms, Xavier NX ~55 ms, AGX Xavier ~35 ms — giving the same
relative heterogeneity the scheduler must balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.devices.latency import GPUSpec, LatencyModel
from repro.geometry.box import DEFAULT_SIZE_SET


@dataclass(frozen=True)
class DeviceType:
    """A named device model with its GPU spec."""

    name: str
    gpu: GPUSpec


JETSON_NANO = DeviceType(
    name="jetson-nano",
    gpu=GPUSpec(
        compute_ms_per_mpx=560.0,
        kernel_overhead_ms=6.0,
        marginal_batch_fraction=0.22,
        memory_mb=26.0,
        max_batch=8,
    ),
)

JETSON_TX2 = DeviceType(
    name="jetson-tx2",
    gpu=GPUSpec(
        compute_ms_per_mpx=250.0,
        kernel_overhead_ms=4.0,
        marginal_batch_fraction=0.18,
        memory_mb=60.0,
        max_batch=16,
    ),
)

JETSON_XAVIER_NX = DeviceType(
    name="jetson-xavier-nx",
    gpu=GPUSpec(
        compute_ms_per_mpx=120.0,
        kernel_overhead_ms=3.0,
        marginal_batch_fraction=0.15,
        memory_mb=120.0,
        max_batch=24,
    ),
)

JETSON_AGX_XAVIER = DeviceType(
    name="jetson-agx-xavier",
    gpu=GPUSpec(
        compute_ms_per_mpx=75.0,
        kernel_overhead_ms=2.5,
        marginal_batch_fraction=0.12,
        memory_mb=240.0,
        max_batch=32,
    ),
)

DEVICE_CATALOGUE: Dict[str, DeviceType] = {
    d.name: d
    for d in (JETSON_NANO, JETSON_TX2, JETSON_XAVIER_NX, JETSON_AGX_XAVIER)
}


def latency_model_for(
    device: DeviceType,
    size_set: Sequence[int] = DEFAULT_SIZE_SET,
    full_frame: Tuple[int, int] = (1280, 704),
) -> LatencyModel:
    """Build the analytic latency surface for a device type."""
    return LatencyModel(device.gpu, size_set=size_set, full_frame=full_frame)


def device_by_name(name: str) -> DeviceType:
    """Look up a catalogue device by name (KeyError lists options)."""
    try:
        return DEVICE_CATALOGUE[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_CATALOGUE))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
