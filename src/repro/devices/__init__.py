"""Device substrate: Jetson catalogue, latency models, profiling, GPU sim."""

from repro.devices.gpu import (
    Batch,
    ExecutionRecord,
    GPUExecutor,
    greedy_plan,
    plan_from_counts,
)
from repro.devices.latency import GPUSpec, LatencyModel, speedup
from repro.devices.profiler import DeviceProfile, profile_device
from repro.devices.profiles import (
    DEVICE_CATALOGUE,
    JETSON_AGX_XAVIER,
    JETSON_NANO,
    JETSON_TX2,
    JETSON_XAVIER_NX,
    DeviceType,
    device_by_name,
    latency_model_for,
)

__all__ = [
    "GPUSpec",
    "LatencyModel",
    "speedup",
    "DeviceType",
    "DEVICE_CATALOGUE",
    "JETSON_NANO",
    "JETSON_TX2",
    "JETSON_XAVIER_NX",
    "JETSON_AGX_XAVIER",
    "device_by_name",
    "latency_model_for",
    "DeviceProfile",
    "profile_device",
    "Batch",
    "ExecutionRecord",
    "GPUExecutor",
    "greedy_plan",
    "plan_from_counts",
]
