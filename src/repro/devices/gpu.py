"""Simulated GPU batch executor.

Executes *inference plans* — sequences of same-size batches — against a
device's latency model, with optional run-to-run jitter. This is the
substrate under the per-frame processing loop: a camera node turns its
assigned partial regions into a plan, the executor "runs" it and returns
the elapsed milliseconds. Batches execute sequentially and without
preemption, matching Definition 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.devices.latency import LatencyModel
from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class Batch:
    """One GPU launch: ``count`` images of ``size`` x ``size`` pixels."""

    size: int
    count: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class ExecutionRecord:
    """Outcome of executing one plan on the simulated GPU."""

    batch_latencies_ms: tuple
    total_ms: float
    n_images: int


class GPUExecutor:
    """Runs inference plans against a latency model.

    ``jitter_std_fraction`` injects multiplicative measurement noise so the
    runtime behaves like real hardware rather than an oracle. The executor
    enforces batch limits: plans exceeding a size's limit raise, because a
    correct scheduler never emits them.

    ``set_slowdown`` models thermal throttling: every executed latency is
    scaled by the current factor, while the scheduler keeps planning with
    the unthrottled offline profile — exactly the mismatch a real
    thermally-limited device exhibits.
    """

    def __init__(
        self,
        model: LatencyModel,
        jitter_std_fraction: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if jitter_std_fraction < 0:
            raise ValueError("jitter_std_fraction must be non-negative")
        if jitter_std_fraction > 0 and rng is None:
            raise ValueError(
                "a jittered GPUExecutor (jitter_std_fraction > 0) requires "
                "an explicit rng seeded from the run config"
            )
        self.model = model
        self.jitter_std_fraction = jitter_std_fraction
        self._rng = rng
        self.slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Scale all subsequent executed latencies by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slowdown = float(factor)

    def execute(self, plan: Sequence[Batch]) -> ExecutionRecord:
        """Execute the batches sequentially; returns latencies and total."""
        with get_tracer().span("gpu.execute", n_batches=len(plan)) as span:
            latencies: List[float] = []
            images = 0
            for batch in plan:
                limit = self.model.batch_limit(batch.size)
                if batch.count > limit:
                    raise ValueError(
                        f"batch of {batch.count} images at size {batch.size} "
                        f"exceeds the device batch limit {limit}"
                    )
                true_ms = self.model.latency(batch.size, batch.count) * self.slowdown
                latencies.append(self._jitter(true_ms))
                images += batch.count
            span.set_tag("n_images", images)
            return ExecutionRecord(
                batch_latencies_ms=tuple(latencies),
                total_ms=float(sum(latencies)),
                n_images=images,
            )

    def execute_full_frame(self) -> float:
        """Run one full-frame inference; returns elapsed ms."""
        with get_tracer().span("gpu.full_frame"):
            return self._jitter(self.model.full_frame_latency() * self.slowdown)

    def _jitter(self, true_ms: float) -> float:
        if self.jitter_std_fraction == 0.0:
            return true_ms
        assert self._rng is not None  # guaranteed by __init__
        factor = 1.0 + self._rng.normal(0.0, self.jitter_std_fraction)
        return max(1e-3, true_ms * factor)


def plan_from_counts(counts: dict) -> List[Batch]:
    """Build a plan from a ``{size: n_images}`` mapping *without* splitting
    into limit-sized launches — use :func:`greedy_plan` for that.
    """
    return [Batch(size=s, count=n) for s, n in sorted(counts.items()) if n > 0]


def greedy_plan(counts: dict, model: LatencyModel) -> List[Batch]:
    """Split per-size image counts into limit-respecting launches.

    This is the paper's "optimal batch sequence": same-size images are
    batched greedily, which minimizes the number of launches per size
    (Section III-B).
    """
    plan: List[Batch] = []
    for size in sorted(counts):
        n = counts[size]
        if n < 0:
            raise ValueError("image counts must be non-negative")
        limit = model.batch_limit(size)
        while n > 0:
            take = min(n, limit)
            plan.append(Batch(size=size, count=take))
            n -= take
    return plan
