"""Offline latency profiling.

The paper profiles YOLO inference "with 200 runs on each Jetson board" and
feeds the profiles to the BALB scheduler (Section IV-A3). We reproduce that
workflow: the profiler repeatedly samples the analytic latency surface with
measurement noise and stores the aggregated :class:`DeviceProfile`, which is
what the scheduler actually consumes. This keeps the scheduler honest — it
never peeks at the noise-free model, just like the real system never sees
"true" silicon latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.devices.latency import LatencyModel
from repro.geometry.box import DEFAULT_SIZE_SET


@dataclass(frozen=True)
class DeviceProfile:
    """Profiled quantities the scheduler consumes for one camera device.

    Mirrors Section III-A exactly: ``t_full`` is ``t_i^full``;
    ``batch_latency_ms[s]`` is ``t_i^s``; ``batch_limits[s]`` is ``B_i^s``.
    """

    device_name: str
    size_set: Tuple[int, ...]
    t_full: float
    batch_latency_ms: Dict[int, float] = field(default_factory=dict)
    batch_limits: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t_full <= 0:
            raise ValueError("t_full must be positive")
        for s in self.size_set:
            if s not in self.batch_latency_ms or s not in self.batch_limits:
                raise ValueError(f"profile missing entries for size {s}")
            if self.batch_latency_ms[s] <= 0:
                raise ValueError(f"non-positive latency for size {s}")
            if self.batch_limits[s] < 1:
                raise ValueError(f"batch limit < 1 for size {s}")

    def t_size(self, size: int) -> float:
        """``t_i^s`` for a quantized target size."""
        try:
            return self.batch_latency_ms[size]
        except KeyError:
            raise KeyError(
                f"size {size} not in profiled set {self.size_set}"
            ) from None

    def batch_limit(self, size: int) -> int:
        """``B_i^s`` for a quantized target size."""
        try:
            return self.batch_limits[size]
        except KeyError:
            raise KeyError(
                f"size {size} not in profiled set {self.size_set}"
            ) from None


def profile_device(
    model: LatencyModel,
    device_name: str,
    n_runs: int = 200,
    noise_std_fraction: float = 0.03,
    seed: int = 0,
    size_set: Sequence[int] | None = None,
) -> DeviceProfile:
    """Profile a device by noisy repeated measurement, like the paper's
    offline stage. Returns the median over ``n_runs`` noisy samples per
    configuration.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    if noise_std_fraction < 0:
        raise ValueError("noise_std_fraction must be non-negative")
    sizes = tuple(sorted(size_set or model.size_set or DEFAULT_SIZE_SET))
    rng = np.random.default_rng(seed)

    def measure(true_ms: float) -> float:
        samples = true_ms * (
            1.0 + rng.normal(0.0, noise_std_fraction, size=n_runs)
        )
        return float(np.median(np.maximum(samples, 1e-3)))

    batch_latency = {}
    batch_limits = {}
    for s in sizes:
        limit = model.batch_limit(s)
        batch_limits[s] = limit
        batch_latency[s] = measure(model.latency(s, limit))
    return DeviceProfile(
        device_name=device_name,
        size_set=sizes,
        t_full=measure(model.full_frame_latency()),
        batch_latency_ms=batch_latency,
        batch_limits=batch_limits,
    )
