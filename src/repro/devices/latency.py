"""Analytic GPU inference latency model.

The paper's scheduler consumes three profiled quantities per camera
``c_i``: the full-frame inference time ``t_i^full``, the per-size batched
inference latency ``t_i^s``, and the batch limit ``B_i^s`` (Section III-A).
On the real testbed these come from profiling YOLOv5 on each Jetson board;
here they come from an analytic model of DNN inference on a small GPU:

    latency(size, batch) = overhead + compute_cost * pixels(size, batch)^gamma

with a *marginal batching cost*: images after the first in a batch cost
only a fraction of the first image's compute, matching the paper's
observation that "the execution time changes only slightly with batching
(before an inflection point is reached)". Past the memory-derived batch
limit, latency grows steeply — the inflection point — so schedulers are
penalized for exceeding the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.geometry.box import DEFAULT_SIZE_SET


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of the analytic GPU model.

    ``compute_ms_per_mpx`` is the milliseconds per megapixel of DNN input at
    batch size 1; ``kernel_overhead_ms`` is the fixed per-launch cost;
    ``marginal_batch_fraction`` is the relative cost of each additional
    batched image; ``memory_mb`` bounds the batch limit.
    """

    compute_ms_per_mpx: float
    kernel_overhead_ms: float
    marginal_batch_fraction: float
    memory_mb: float
    max_batch: int = 32

    def __post_init__(self) -> None:
        if self.compute_ms_per_mpx <= 0:
            raise ValueError("compute_ms_per_mpx must be positive")
        if self.kernel_overhead_ms < 0:
            raise ValueError("kernel_overhead_ms must be non-negative")
        if not 0.0 < self.marginal_batch_fraction <= 1.0:
            raise ValueError("marginal_batch_fraction must be in (0, 1]")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


#: Approximate working-set megabytes per megapixel of DNN input
#: (activations dominate; calibrated so a Nano batches ~8 images at 128 px).
_MB_PER_MPX = 180.0


class LatencyModel:
    """Computable latency surface for one device.

    Exposes exactly the quantities the BALB scheduler needs, plus the raw
    ``latency(size, batch)`` surface used by the simulated GPU executor.
    """

    def __init__(
        self,
        spec: GPUSpec,
        size_set: Sequence[int] = DEFAULT_SIZE_SET,
        full_frame: Tuple[int, int] = (1280, 704),
    ) -> None:
        if not size_set:
            raise ValueError("size_set must be non-empty")
        self.spec = spec
        self.size_set = tuple(sorted(size_set))
        self.full_frame = full_frame
        self._batch_limits: Dict[int, int] = {
            s: self._compute_batch_limit(s) for s in self.size_set
        }

    # ------------------------------------------------------------------
    def latency(self, size: int, batch: int) -> float:
        """Latency in ms of one inference launch on ``batch`` images of
        ``size`` x ``size`` pixels. Exceeding the batch limit enters the
        steep post-inflection regime.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if size <= 0:
            raise ValueError("size must be positive")
        mpx = (size * size) / 1e6
        limit = self._compute_batch_limit(size)
        within = min(batch, limit)
        base = self.spec.compute_ms_per_mpx * mpx
        cost = base * (1.0 + self.spec.marginal_batch_fraction * (within - 1))
        if batch > limit:
            # Past the inflection point each image costs full price plus a
            # growing memory-pressure penalty.
            over = batch - limit
            cost += base * over * (1.5 + 0.25 * over)
        return self.spec.kernel_overhead_ms + cost

    def batch_latency(self, size: int) -> float:
        """``t_i^s``: the latency charged per batch of target size ``size``.

        Per the paper's footnote 2, this is the execution time *at the
        batch limit*, used as a constant regardless of batch occupancy.
        """
        return self.latency(size, self.batch_limit(size))

    def batch_limit(self, size: int) -> int:
        """``B_i^s``: max images of ``size`` batched in one launch."""
        if size in self._batch_limits:
            return self._batch_limits[size]
        return self._compute_batch_limit(size)

    def full_frame_latency(self) -> float:
        """``t_i^full``: inference time on the full camera frame."""
        w, h = self.full_frame
        mpx = (w * h) / 1e6
        return self.spec.kernel_overhead_ms + self.spec.compute_ms_per_mpx * mpx

    # ------------------------------------------------------------------
    def _compute_batch_limit(self, size: int) -> int:
        mpx = (size * size) / 1e6
        by_memory = int(self.spec.memory_mb / (_MB_PER_MPX * mpx))
        return max(1, min(self.spec.max_batch, by_memory))


def speedup(full_latency: float, scheduled_latency: float) -> float:
    """Multiplicative speedup, the headline metric of Figure 13."""
    if scheduled_latency <= 0:
        raise ValueError("scheduled latency must be positive")
    return full_latency / scheduled_latency


def pixels(size: int, batch: int) -> int:
    """Total input pixels of a batch — handy for tests and sanity checks."""
    return size * size * batch


def is_monotone_in_size(model: LatencyModel) -> bool:
    """Sanity predicate: bigger inputs never get cheaper at batch 1."""
    sizes = model.size_set
    lats = [model.latency(s, 1) for s in sizes]
    return all(a <= b + 1e-9 for a, b in zip(lats, lats[1:]))
