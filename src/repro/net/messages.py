"""Message types exchanged between camera nodes and the central scheduler.

The protocol mirrors Section II/III of the paper: after a key-frame
inspection each camera uploads its detected-object list; the central
scheduler answers with the object-to-camera assignment, per-camera
priorities and the cell masks used by the distributed stage.
"""

from __future__ import annotations

from dataclasses import dataclass
import json
from typing import Dict, Tuple

from repro.geometry.box import BBox


@dataclass(frozen=True)
class DetectionReport:
    """One camera's key-frame upload: its local detections."""

    camera_id: int
    frame_index: int
    boxes: Tuple[BBox, ...]
    track_ids: Tuple[int, ...]  # local track ids, parallel to boxes
    gt_ids: Tuple[int, ...]  # ground-truth ids (evaluation only)

    def __post_init__(self) -> None:
        if not (len(self.boxes) == len(self.track_ids) == len(self.gt_ids)):
            raise ValueError("boxes, track_ids and gt_ids must be parallel")

    @property
    def n_objects(self) -> int:
        return len(self.boxes)

    def payload_bytes(self) -> int:
        """Serialized size: 4 floats + 2 ids + header per box, plus envelope."""
        return 64 + self.n_objects * (4 * 4 + 2 * 4)


@dataclass(frozen=True)
class AssignmentMessage:
    """Central scheduler's reply to one camera."""

    camera_id: int
    frame_index: int
    assigned_track_ids: Tuple[int, ...]  # local tracks this camera must track
    camera_priority_order: Tuple[int, ...]  # increasing-latency camera ids
    mask_cells: Tuple[Tuple[int, int], ...]  # grid cells this camera owns

    def payload_bytes(self) -> int:
        """Serialized size of the assignment reply in bytes."""
        return (
            64
            + len(self.assigned_track_ids) * 4
            + len(self.camera_priority_order) * 4
            + len(self.mask_cells) * 8
        )


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon of the acting central scheduler.

    ``leader_id`` identifies who currently holds central duties: ``-1``
    for the dedicated scheduler node, a camera id for a warm standby
    that took over. The same message doubles as the standby's
    leadership-claim broadcast at takeover.
    """

    frame_index: int
    leader_id: int = -1

    def payload_bytes(self) -> int:
        """Serialized size: two ids plus a small envelope."""
        return 16 + 2 * 4


@dataclass(frozen=True)
class SnapshotMessage:
    """Live-state snapshot served to read-side subscribers.

    The serving edge publishes one per cadence tick and caches the
    encoding; every subscriber of the same version receives the same
    bytes. ``version`` increments per publication, so a subscriber can
    cheaply detect staleness.
    """

    version: int
    frame_index: int
    is_key_frame: bool
    n_visible: int
    n_detected: int

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ValueError("version must be non-negative")
        if self.frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if self.n_visible < 0 or self.n_detected < 0:
            raise ValueError("object counts must be non-negative")

    def encode(self) -> bytes:
        """Canonical wire encoding (deterministic: sorted, compact)."""
        return json.dumps(
            {
                "version": self.version,
                "frame_index": self.frame_index,
                "is_key_frame": self.is_key_frame,
                "n_visible": self.n_visible,
                "n_detected": self.n_detected,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("ascii")

    def payload_bytes(self) -> int:
        """Serialized size of the snapshot in bytes."""
        return len(self.encode())


@dataclass(frozen=True)
class SchedulerCheckpoint:
    """Replicated central-scheduler state, piggybacked on assignment
    downloads to the designated warm standby.

    Carries everything the standby needs to resume central duties after
    a takeover: the association state (global object -> per-camera local
    track ids), the last decision (per-camera assigned tracks) and the
    camera priority order. Cell masks are static and replicated once at
    startup, so they are not part of the checkpoint.
    """

    frame_index: int
    priority_order: Tuple[int, ...]
    assigned: Dict[int, Tuple[int, ...]]  # camera -> assigned local tracks
    association: Dict[int, Tuple[Tuple[int, int], ...]]  # gid -> (cam, tid)

    @property
    def n_global_objects(self) -> int:
        return len(self.association)

    def payload_bytes(self) -> int:
        """Serialized size: envelope + ids for every replicated entry."""
        n_assigned = sum(len(v) for v in self.assigned.values())
        n_members = sum(len(v) for v in self.association.values())
        return (
            64
            + len(self.priority_order) * 4
            + len(self.assigned) * 8 + n_assigned * 4
            + len(self.association) * 8 + n_members * 8
        )
