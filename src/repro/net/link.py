"""Point-to-point network links with bandwidth and propagation delay.

Models the paper's testbed links: wired Ethernet with 100 Mbps downlink /
20 Mbps uplink between each camera and the central scheduler. Transfer
latency = propagation + size / bandwidth (+ optional jitter), which is all
the scheduling framework is sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a link."""

    bandwidth_mbps: float
    propagation_ms: float = 1.0
    jitter_ms_std: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if self.propagation_ms < 0:
            raise ValueError("propagation_ms must be non-negative")
        if self.jitter_ms_std < 0:
            raise ValueError("jitter_ms_std must be non-negative")


#: Paper testbed: 100 Mbps downlink (scheduler -> camera).
TESTBED_DOWNLINK = LinkSpec(bandwidth_mbps=100.0, propagation_ms=1.0)
#: Paper testbed: 20 Mbps uplink (camera -> scheduler).
TESTBED_UPLINK = LinkSpec(bandwidth_mbps=20.0, propagation_ms=1.0)


class Link:
    """A unidirectional link that computes transfer latencies."""

    def __init__(
        self, spec: LinkSpec, rng: Optional[np.random.Generator] = None
    ) -> None:
        self.spec = spec
        self._rng = rng or np.random.default_rng(0)
        self.bytes_sent = 0
        self.messages_sent = 0

    def transfer_ms(self, payload_bytes: int) -> float:
        """Latency to move ``payload_bytes`` across the link, in ms."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        serialization = payload_bytes * 8.0 / (self.spec.bandwidth_mbps * 1e6) * 1e3
        jitter = (
            abs(self._rng.normal(0.0, self.spec.jitter_ms_std))
            if self.spec.jitter_ms_std > 0
            else 0.0
        )
        self.bytes_sent += payload_bytes
        self.messages_sent += 1
        return self.spec.propagation_ms + serialization + jitter


class DuplexChannel:
    """Camera <-> scheduler channel with asymmetric up/down links."""

    def __init__(
        self,
        uplink: LinkSpec = TESTBED_UPLINK,
        downlink: LinkSpec = TESTBED_DOWNLINK,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.up = Link(uplink, rng)
        self.down = Link(downlink, rng)

    def round_trip_ms(self, up_bytes: int, down_bytes: int) -> float:
        """Upload + download latency for one request/response exchange."""
        with get_tracer().span(
            "net.round_trip", up_bytes=up_bytes, down_bytes=down_bytes
        ):
            return self.up.transfer_ms(up_bytes) + self.down.transfer_ms(
                down_bytes
            )
