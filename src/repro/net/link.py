"""Point-to-point network links with bandwidth and propagation delay.

Models the paper's testbed links: wired Ethernet with 100 Mbps downlink /
20 Mbps uplink between each camera and the central scheduler. Transfer
latency = propagation + size / bandwidth (+ optional jitter), which is all
the scheduling framework is sensitive to.

On top of the raw links, the module models the *unreliable* exchange the
fault-injection layer needs: per-message loss (:class:`LinkFault`) with
timeout + bounded linear-backoff retry (:class:`RetryPolicy`). A failed
attempt costs the timeout plus backoff and is tallied in the link's
``messages_dropped``/``bytes_dropped`` counters, kept separate from the
delivered-traffic ``messages_sent``/``bytes_sent`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a link."""

    bandwidth_mbps: float
    propagation_ms: float = 1.0
    jitter_ms_std: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if self.propagation_ms < 0:
            raise ValueError("propagation_ms must be non-negative")
        if self.jitter_ms_std < 0:
            raise ValueError("jitter_ms_std must be non-negative")


#: Paper testbed: 100 Mbps downlink (scheduler -> camera).
TESTBED_DOWNLINK = LinkSpec(bandwidth_mbps=100.0, propagation_ms=1.0)
#: Paper testbed: 20 Mbps uplink (camera -> scheduler).
TESTBED_UPLINK = LinkSpec(bandwidth_mbps=20.0, propagation_ms=1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded retry with linear backoff, all modeled in ms."""

    max_attempts: int = 3
    timeout_ms: float = 60.0
    backoff_ms: float = 20.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_ms < 0:
            raise ValueError("timeout_ms must be non-negative")
        if self.backoff_ms < 0:
            raise ValueError("backoff_ms must be non-negative")

    def penalty_ms(self, attempt_index: int) -> float:
        """Wall-clock cost of failed attempt ``attempt_index`` (0-based)."""
        return self.timeout_ms + self.backoff_ms * attempt_index


DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class LinkFault:
    """Fault state of one channel at one instant.

    Beyond loss and delay, the Byzantine wire faults: ``corrupt_prob``
    damages an attempt in flight (the receiver's checksum rejects it, so
    it costs a retry like a loss), ``duplicate_prob`` delivers a second
    copy of the message (the receiver guard must dedupe it), and
    ``reorder_prob`` delivers the message out of order (the receiver
    guard holds it in the reorder window instead of applying it).
    """

    loss_prob: float = 0.0
    extra_delay_ms: float = 0.0
    corrupt_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_prob", "corrupt_prob", "duplicate_prob",
                     "reorder_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.extra_delay_ms < 0:
            raise ValueError("extra_delay_ms must be non-negative")

    @property
    def is_clean(self) -> bool:
        return (
            self.loss_prob == 0.0
            and self.extra_delay_ms == 0.0
            and self.corrupt_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.reorder_prob == 0.0
        )


@dataclass(frozen=True)
class TransferOutcome:
    """Result of one (possibly retried) message transfer."""

    delivered: bool
    elapsed_ms: float
    attempts: int
    #: Attempts discarded by the receiver's checksum (wire corruption);
    #: they count toward ``dropped`` like losses, in their own counter.
    corrupt_attempts: int = 0
    #: The wire delivered a second copy of the final message.
    duplicated: bool = False
    #: The wire delivered the final message out of order.
    reordered: bool = False

    @property
    def dropped(self) -> int:
        """Number of lost attempts (retries if delivered, all if not)."""
        return self.attempts - 1 if self.delivered else self.attempts


class Link:
    """A unidirectional link that computes transfer latencies.

    A link whose spec draws jitter must be given an explicit ``rng``:
    a silent seed-0 fallback would share one stream across every link
    built without a seed, coupling their jitter draws between runs.
    """

    def __init__(
        self, spec: LinkSpec, rng: Optional[np.random.Generator] = None
    ) -> None:
        if spec.jitter_ms_std > 0 and rng is None:
            raise ValueError(
                "a jittered link (jitter_ms_std > 0) requires an explicit "
                "rng seeded from the run config"
            )
        self.spec = spec
        self._rng = rng
        self.bytes_sent = 0
        self.messages_sent = 0
        self.bytes_dropped = 0
        self.messages_dropped = 0
        self.bytes_corrupted = 0
        self.messages_corrupted = 0
        #: Transfers that exhausted every retry (hard failures), kept
        #: separate from per-attempt drops so recovered-after-retry and
        #: gave-up-entirely are distinguishable in the fault summary.
        self.giveups = 0

    def transfer_ms(self, payload_bytes: int) -> float:
        """Latency to move ``payload_bytes`` across the link, in ms."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        serialization = payload_bytes * 8.0 / (self.spec.bandwidth_mbps * 1e6) * 1e3
        if self.spec.jitter_ms_std > 0:
            assert self._rng is not None  # guaranteed by __init__
            jitter = abs(self._rng.normal(0.0, self.spec.jitter_ms_std))
        else:
            jitter = 0.0
        self.bytes_sent += payload_bytes
        self.messages_sent += 1
        return self.spec.propagation_ms + serialization + jitter

    def record_drop(self, payload_bytes: int) -> None:
        """Account one lost message (never mixed into the sent counters)."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        self.bytes_dropped += payload_bytes
        self.messages_dropped += 1

    def record_corrupt(self, payload_bytes: int) -> None:
        """Account one message the receiver's checksum rejected."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        self.bytes_corrupted += payload_bytes
        self.messages_corrupted += 1

    def reliable_transfer(
        self,
        payload_bytes: int,
        fault: LinkFault,
        policy: RetryPolicy,
        rng: np.random.Generator,
    ) -> TransferOutcome:
        """Send with fault injection, timeout and bounded retry.

        Each attempt is lost with ``fault.loss_prob`` and corrupted in
        flight with ``fault.corrupt_prob`` (drawn from ``rng`` in that
        fixed order, and only when the probability is nonzero — so a
        fault mix without a given kind consumes exactly the draws it did
        before the kind existed). A lost or corrupted attempt costs
        ``policy.penalty_ms`` — the receiver's checksum rejects a
        corrupt message, so the sender times out the same way. A
        delivered attempt costs the normal transfer latency plus
        ``fault.extra_delay_ms``, and may additionally be flagged
        duplicated / reordered for the receiver guard to handle.
        Exhausting every attempt books one ``giveups``.
        """
        elapsed = 0.0
        corrupt_attempts = 0
        for attempt in range(policy.max_attempts):
            if fault.loss_prob > 0.0 and rng.random() < fault.loss_prob:
                self.record_drop(payload_bytes)
                elapsed += policy.penalty_ms(attempt)
                continue
            if fault.corrupt_prob > 0.0 and rng.random() < fault.corrupt_prob:
                self.record_corrupt(payload_bytes)
                corrupt_attempts += 1
                elapsed += policy.penalty_ms(attempt)
                continue
            elapsed += self.transfer_ms(payload_bytes) + fault.extra_delay_ms
            duplicated = (
                fault.duplicate_prob > 0.0
                and rng.random() < fault.duplicate_prob
            )
            reordered = (
                fault.reorder_prob > 0.0
                and rng.random() < fault.reorder_prob
            )
            return TransferOutcome(
                delivered=True,
                elapsed_ms=elapsed,
                attempts=attempt + 1,
                corrupt_attempts=corrupt_attempts,
                duplicated=duplicated,
                reordered=reordered,
            )
        self.giveups += 1
        return TransferOutcome(
            delivered=False,
            elapsed_ms=elapsed,
            attempts=policy.max_attempts,
            corrupt_attempts=corrupt_attempts,
        )


class DuplexChannel:
    """Camera <-> scheduler channel with asymmetric up/down links.

    Construction requires an explicit ``seed`` or ``rng``: the two
    directions get *distinct* jitter streams derived from it, and a
    third derived stream drives fault (loss) draws — so two channels
    seeded from different camera ids never share randomness, and fault
    draws never perturb the jitter sequence.
    """

    def __init__(
        self,
        uplink: LinkSpec = TESTBED_UPLINK,
        downlink: LinkSpec = TESTBED_DOWNLINK,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        if rng is None:
            if seed is None:
                raise ValueError(
                    "DuplexChannel requires an explicit rng or seed "
                    "(derive it from the run config) — a silent seed-0 "
                    "fallback would alias every unseeded channel's "
                    "jitter/loss streams"
                )
            rng = np.random.default_rng(seed)
        self.up = Link(uplink, _derive_rng(rng))
        self.down = Link(downlink, _derive_rng(rng))
        self._fault_rng = _derive_rng(rng)

    def round_trip_ms(self, up_bytes: int, down_bytes: int) -> float:
        """Upload + download latency for one request/response exchange."""
        with get_tracer().span(
            "net.round_trip", up_bytes=up_bytes, down_bytes=down_bytes
        ):
            return self.up.transfer_ms(up_bytes) + self.down.transfer_ms(
                down_bytes
            )

    def up_transfer(
        self,
        up_bytes: int,
        fault: LinkFault,
        policy: RetryPolicy = DEFAULT_RETRY,
    ) -> TransferOutcome:
        """Reliable camera -> scheduler transfer under ``fault``."""
        return self.up.reliable_transfer(
            up_bytes, fault, policy, self._fault_rng
        )

    def down_transfer(
        self,
        down_bytes: int,
        fault: LinkFault,
        policy: RetryPolicy = DEFAULT_RETRY,
    ) -> TransferOutcome:
        """Reliable scheduler -> camera transfer under ``fault``."""
        return self.down.reliable_transfer(
            down_bytes, fault, policy, self._fault_rng
        )

    @property
    def messages_dropped(self) -> int:
        return self.up.messages_dropped + self.down.messages_dropped

    @property
    def bytes_dropped(self) -> int:
        return self.up.bytes_dropped + self.down.bytes_dropped

    @property
    def messages_corrupted(self) -> int:
        return self.up.messages_corrupted + self.down.messages_corrupted

    @property
    def giveups(self) -> int:
        return self.up.giveups + self.down.giveups


def _derive_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent child generator, deterministic in the parent state."""
    return np.random.default_rng(int(rng.integers(0, 2**63 - 1)))
