"""Network substrate: links, reliability modeling and protocol messages."""

from repro.net.envelope import Admission, ChannelGuard, Envelope
from repro.net.heartbeat import HeartbeatMonitor, LeaseConfig
from repro.net.link import (
    DEFAULT_RETRY,
    TESTBED_DOWNLINK,
    TESTBED_UPLINK,
    DuplexChannel,
    Link,
    LinkFault,
    LinkSpec,
    RetryPolicy,
    TransferOutcome,
)
from repro.net.messages import (
    AssignmentMessage,
    DetectionReport,
    Heartbeat,
    SchedulerCheckpoint,
)

__all__ = [
    "Admission",
    "ChannelGuard",
    "Envelope",
    "Heartbeat",
    "HeartbeatMonitor",
    "LeaseConfig",
    "SchedulerCheckpoint",
    "LinkSpec",
    "Link",
    "LinkFault",
    "RetryPolicy",
    "TransferOutcome",
    "DEFAULT_RETRY",
    "DuplexChannel",
    "TESTBED_UPLINK",
    "TESTBED_DOWNLINK",
    "DetectionReport",
    "AssignmentMessage",
]
