"""Network substrate: links and scheduler protocol messages."""

from repro.net.link import (
    TESTBED_DOWNLINK,
    TESTBED_UPLINK,
    DuplexChannel,
    Link,
    LinkSpec,
)
from repro.net.messages import AssignmentMessage, DetectionReport

__all__ = [
    "LinkSpec",
    "Link",
    "DuplexChannel",
    "TESTBED_UPLINK",
    "TESTBED_DOWNLINK",
    "DetectionReport",
    "AssignmentMessage",
]
