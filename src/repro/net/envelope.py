"""Hardened wire protocol: epoch/sequence envelopes and receiver guards.

Every control-plane message (detection report upload, assignment
download) can be wrapped in an :class:`Envelope` carrying three pieces
of metadata the raw :mod:`repro.net.messages` dataclasses lack:

* **epoch** — the leadership term of the issuing scheduler. Epochs only
  move forward; a receiver that has applied an assignment from epoch
  ``e`` *fences* (drops) anything from an epoch ``< e``, which is what
  makes a healed split-brain safe: the deposed authority's in-flight
  messages bounce off every camera.
* **seq** — the per-channel sequence number. The control plane is
  frame-quantized, so the frame index *is* the channel sequence number:
  it is strictly increasing per (channel, epoch), which gives replay
  detection and a bounded reorder window for free.
* **checksum** — a deterministic CRC-32 over the canonical payload
  encoding plus the header fields. A corrupt message never verifies, so
  receivers discard it instead of applying garbage.

The receiver side is :class:`ChannelGuard`: a sliding-window admission
filter that classifies each envelope as ok / corrupt / stale-epoch /
duplicate / reordered / window-exceeded and keeps per-reason counters
the runtime exports as ``wire_*`` metrics. Everything here is pure
deterministic state — no RNG, no clocks — so guarding a clean channel
changes nothing about a run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Set

#: Admission verdicts a :class:`ChannelGuard` can return.
ADMIT_OK = "ok"
ADMIT_REORDERED = "reordered"
DROP_CORRUPT = "corrupt"
DROP_STALE_EPOCH = "stale_epoch"
DROP_DUPLICATE = "duplicate"
DROP_WINDOW_EXCEEDED = "window_exceeded"

#: Default reorder window, in sequence numbers (frames): a message older
#: than this many frames behind the channel head is dropped unseen.
DEFAULT_WINDOW = 16


def _checksum(channel: str, seq: int, epoch: int, payload: str) -> int:
    """Deterministic CRC-32 over the canonical wire encoding."""
    blob = f"{channel}|{seq}|{epoch}|{payload}".encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


@dataclass(frozen=True)
class Envelope:
    """One sealed control-plane message.

    ``payload`` is the canonical (deterministic) string encoding of the
    carried message; the checksum covers it together with the header, so
    any bit damage — header or body — fails verification. The envelope
    is modeled as metadata-only on the wire: the 64-byte header budget
    the message dataclasses already charge covers it, keeping modeled
    transfer costs (and every golden trace) unchanged.
    """

    channel: str
    seq: int
    epoch: int
    payload: str
    checksum: int

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("seq must be non-negative")
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")

    @classmethod
    def seal(cls, channel: str, seq: int, epoch: int, payload: str) -> "Envelope":
        """Build an envelope with a freshly computed checksum."""
        return cls(
            channel=channel,
            seq=seq,
            epoch=epoch,
            payload=payload,
            checksum=_checksum(channel, seq, epoch, payload),
        )

    @property
    def intact(self) -> bool:
        """Does the checksum still match the header + payload?"""
        return self.checksum == _checksum(
            self.channel, self.seq, self.epoch, self.payload
        )

    def corrupted(self) -> "Envelope":
        """A copy with wire damage: the payload mutated, checksum stale."""
        return replace(self, payload="\x00" + self.payload)


@dataclass(frozen=True)
class Admission:
    """The guard's verdict on one envelope."""

    accepted: bool
    reason: str
    #: Sequence numbers skipped ahead of this one (lost messages create
    #: gaps; the guard tolerates them rather than stalling the channel).
    gap: int = 0


class ChannelGuard:
    """Sliding-window admission filter for one receive channel.

    Admission rules, in order:

    1. A non-verifying envelope is dropped (``corrupt``).
    2. An epoch below the guard's current epoch is fenced
       (``stale_epoch``) — the sender lost leadership.
    3. A higher epoch advances the guard and resets the sequence window
       (each leadership term numbers its own sends).
    4. ``seq >= next``: admitted (``ok``), tolerating any gap — a lost
       message must never deadlock the channel.
    5. ``seq`` within the reorder window: admitted once (``reordered``)
       if unseen, dropped as ``duplicate`` if already admitted.
    6. ``seq`` older than the window: dropped (``window_exceeded``).

    The guard is exactly-once per (epoch, seq) within the window, and
    pure state — safe to pickle into run checkpoints.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.epoch = 0
        self.next_seq = 0
        self._seen: Set[int] = set()
        self.admitted = 0
        self.corrupt = 0
        self.fenced = 0
        self.duplicates = 0
        self.reordered = 0
        self.window_exceeded = 0

    def admit(self, env: Envelope) -> Admission:
        """Classify one envelope and advance the window state."""
        if not env.intact:
            self.corrupt += 1
            return Admission(False, DROP_CORRUPT)
        if env.epoch < self.epoch:
            self.fenced += 1
            return Admission(False, DROP_STALE_EPOCH)
        if env.epoch > self.epoch:
            self.epoch = env.epoch
            self.next_seq = 0
            self._seen.clear()
        if env.seq >= self.next_seq:
            gap = env.seq - self.next_seq
            self._seen.add(env.seq)
            self.next_seq = env.seq + 1
            self._trim()
            self.admitted += 1
            return Admission(True, ADMIT_OK, gap=gap)
        if env.seq < self.next_seq - self.window:
            self.window_exceeded += 1
            return Admission(False, DROP_WINDOW_EXCEEDED)
        if env.seq in self._seen:
            self.duplicates += 1
            return Admission(False, DROP_DUPLICATE)
        self._seen.add(env.seq)
        self.admitted += 1
        self.reordered += 1
        return Admission(True, ADMIT_REORDERED)

    def hold_reordered(self, env: Envelope) -> Admission:
        """Account an envelope delivered out of order by the wire itself.

        In the frame-quantized runtime a reordered control message
        arrives after the decision it carries is already superseded, so
        the guard books the sequence number (a later replay of it is a
        duplicate) and reports it as held — the caller falls back to its
        stale decision instead of applying an out-of-date one.
        """
        if not env.intact:
            self.corrupt += 1
            return Admission(False, DROP_CORRUPT)
        if env.epoch < self.epoch:
            self.fenced += 1
            return Admission(False, DROP_STALE_EPOCH)
        if env.epoch > self.epoch:
            self.epoch = env.epoch
            self.next_seq = 0
            self._seen.clear()
        if env.seq >= self.next_seq:
            self._seen.add(env.seq)
            self.next_seq = env.seq + 1
            self._trim()
        self.reordered += 1
        return Admission(False, ADMIT_REORDERED)

    def _trim(self) -> None:
        """Forget sequence numbers that fell out of the reorder window."""
        floor = self.next_seq - self.window
        if floor > 0:
            self._seen = {s for s in self._seen if s >= floor}
