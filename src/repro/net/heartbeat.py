"""Heartbeat/lease protocol for central-scheduler failover.

The acting central scheduler broadcasts a :class:`~repro.net.messages.
Heartbeat` every ``heartbeat_interval_frames`` frames. Cameras grant it
a lease of ``lease_misses`` heartbeats: once that many due beacons in a
row go unanswered, the lease is expired and the deterministic warm
standby may claim leadership. Everything is frame-quantized — the
protocol runs inside the simulated frame loop, so detection latency is
bounded by ``lease_misses * heartbeat_interval_frames`` frames (with the
default single-miss lease: one heartbeat interval, the availability bar
the runtime's acceptance tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LeaseConfig:
    """Knobs of the heartbeat/lease failover protocol."""

    #: Frames between scheduler heartbeats (and lease renewals).
    heartbeat_interval_frames: int = 5
    #: Consecutive missed heartbeats before the lease expires.
    lease_misses: int = 1
    #: Modeled cost of deserializing the replicated checkpoint and
    #: rebuilding scheduler state at takeover, in ms.
    takeover_restore_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_frames < 1:
            raise ValueError("heartbeat_interval_frames must be >= 1")
        if self.lease_misses < 1:
            raise ValueError("lease_misses must be >= 1")
        if self.takeover_restore_ms < 0:
            raise ValueError("takeover_restore_ms must be non-negative")

    def is_heartbeat_due(self, frame: int) -> bool:
        """Is a heartbeat scheduled at ``frame``?"""
        return frame % self.heartbeat_interval_frames == 0


class HeartbeatMonitor:
    """Tracks the acting scheduler's lease as the camera fleet sees it.

    Drive it once per frame with :meth:`observe`. While the scheduler
    answers its due heartbeats the lease stays renewed; after a crash
    the monitor counts the due-but-missed beacons *strictly after* the
    last renewal and reports expiry once ``lease_misses`` accumulate.
    """

    def __init__(self, config: Optional[LeaseConfig] = None) -> None:
        self.config = config or LeaseConfig()
        self.last_renewal_frame: Optional[int] = None
        self.missed = 0

    @property
    def lease_expired(self) -> bool:
        return self.missed >= self.config.lease_misses

    def observe(self, frame: int, scheduler_alive: bool) -> bool:
        """Advance the lease one frame; returns True if it expired *now*.

        A live scheduler renews at every frame (its due heartbeats all
        arrive). A dead one misses exactly the due frames, so expiry
        lands on a heartbeat boundary — within one interval of the crash
        under the default single-miss lease.
        """
        if scheduler_alive:
            self.last_renewal_frame = frame
            self.missed = 0
            return False
        if not self.config.is_heartbeat_due(frame):
            return False
        if self.last_renewal_frame is not None and frame <= self.last_renewal_frame:
            return False
        already_expired = self.lease_expired
        self.missed += 1
        return self.lease_expired and not already_expired
