"""Property test: the model checker accepts exactly the valid tables.

Mirrors the health-machine property tests from PR 8: random transition
tables — some well-formed, some broken in a random way — against an
independent reference implementation of validity. ``check_table`` must
return no problems iff the reference says the table is valid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tools.reproflow.machines import TransitionTable, check_table

STATE_POOL = ["A", "B", "C", "D", "E"]


def reference_valid(table: TransitionTable) -> bool:
    """Independent re-statement of what makes a table valid."""
    if not table.states:
        return False
    if len(set(table.states)) != len(table.states):
        return False
    states = set(table.states)
    if table.initial not in states:
        return False
    if any(t not in states for t in table.terminal):
        return False
    edges = list(table.edges)
    if len(set(edges)) != len(edges):
        return False
    for src, dst in edges:
        if src not in states or dst not in states or src == dst:
            return False
    edge_set = set(edges)
    for src, dst in table.forbidden:
        if src not in states or dst not in states:
            return False
        if (src, dst) in edge_set:
            return False
    reachable = {table.initial}
    changed = True
    while changed:
        changed = False
        for src, dst in edges:
            if src in reachable and dst not in reachable:
                reachable.add(dst)
                changed = True
    if reachable != states:
        return False
    for state in states:
        if state in table.terminal:
            continue
        if not any(src == state for src, _ in edge_set):
            return False
    return True


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=len(STATE_POOL)))
    states = tuple(STATE_POOL[:n])
    # Sometimes point initial outside the state set.
    initial = draw(st.sampled_from(STATE_POOL + ["Z"]))
    pairs = [
        (s, d) for s in STATE_POOL[: n + 1] for d in STATE_POOL[: n + 1]
    ]
    edges = tuple(
        draw(st.lists(st.sampled_from(pairs), min_size=0, max_size=12))
    )
    forbidden = tuple(
        draw(st.lists(st.sampled_from(pairs), min_size=0, max_size=3))
    )
    terminal = tuple(
        draw(st.lists(st.sampled_from(STATE_POOL[:n]), min_size=0,
                      max_size=n, unique=True))
    )
    return TransitionTable(
        machine="prop",
        states=states,
        initial=initial,
        edges=edges,
        forbidden=forbidden,
        terminal=terminal,
    )


@st.composite
def valid_tables(draw):
    """Construct tables that are valid by construction: a random
    spanning walk guarantees reachability, then extra legal edges."""
    n = draw(st.integers(min_value=1, max_value=len(STATE_POOL)))
    states = list(STATE_POOL[:n])
    initial = states[0]
    edges = set()
    reached = [initial]
    for state in states[1:]:
        src = draw(st.sampled_from(reached))
        edges.add((src, state))
        reached.append(state)
    extra = [
        (s, d) for s in states for d in states if s != d
    ]
    if extra:
        for edge in draw(st.lists(st.sampled_from(extra), max_size=8)):
            edges.add(edge)
    terminal = tuple(
        s for s in states if not any(src == s for src, _ in edges)
    )
    forbidden = tuple(
        e
        for e in (
            draw(st.lists(st.sampled_from(extra), max_size=3)) if extra
            else []
        )
        if e not in edges
    )
    return TransitionTable(
        machine="prop",
        states=tuple(states),
        initial=initial,
        edges=tuple(sorted(edges)),
        forbidden=tuple(sorted(set(forbidden))),
        terminal=terminal,
    )


@settings(max_examples=200, deadline=None)
@given(tables())
def test_checker_agrees_with_reference(table):
    assert (check_table(table) == []) == reference_valid(table)


@settings(max_examples=100, deadline=None)
@given(valid_tables())
def test_constructively_valid_tables_accepted(table):
    assert reference_valid(table)
    assert check_table(table) == []
