"""Baseline ratchet and SARIF rendering tests."""

import json

from tools.reprolint.engine import Finding
from tools.reproflow.baseline import (
    fingerprint,
    load_baseline,
    ratchet,
    render_baseline,
    write_baseline,
)
from tools.reproflow.cli import RULES
from tools.reproflow.sarif import render_sarif


def make_finding(code="RF001", path="src/repro/a.py", line=3,
                 message="draw consumes an unseeded stream"):
    return Finding(
        code=code, severity="error", path=path, line=line, col=0,
        message=message,
    )


class TestFingerprint:
    def test_line_number_excluded(self):
        a = make_finding(line=3)
        b = make_finding(line=99)
        assert fingerprint(a) == fingerprint(b)

    def test_message_included(self):
        assert fingerprint(make_finding()) != fingerprint(
            make_finding(message="other")
        )


class TestRatchet:
    def test_unknown_finding_is_new(self):
        new, baselined, stale = ratchet([make_finding()], [])
        assert len(new) == 1 and baselined == [] and stale == []

    def test_baselined_finding_survives_line_shift(self):
        entries = [
            {
                "code": "RF001",
                "path": "src/repro/a.py",
                "message": "draw consumes an unseeded stream",
            }
        ]
        new, baselined, stale = ratchet(
            [make_finding(line=42)], entries
        )
        assert new == [] and len(baselined) == 1 and stale == []

    def test_paid_debt_reported_stale(self):
        entries = [
            {"code": "RF005", "path": "x.py", "message": "gone"}
        ]
        new, baselined, stale = ratchet([], entries)
        assert new == [] and baselined == [] and stale == entries


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [make_finding()])
        entries = load_baseline(str(path))
        assert entries == [
            {
                "code": "RF001",
                "path": "src/repro/a.py",
                "message": "draw consumes an unseeded stream",
            }
        ]

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == []

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"findings": "nope"}')
        try:
            load_baseline(str(path))
        except ValueError as exc:
            assert "bad.json" in str(exc)
        else:
            raise AssertionError("malformed baseline accepted")

    def test_render_is_sorted_and_stable(self):
        first = render_baseline(
            [make_finding(path="b.py"), make_finding(path="a.py")]
        )
        second = render_baseline(
            [make_finding(path="a.py"), make_finding(path="b.py")]
        )
        assert first == second


class TestSarif:
    def test_document_shape(self):
        doc = json.loads(render_sarif([make_finding()], RULES))
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reproflow"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(RULES) <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RF001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/a.py"
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] == 1

    def test_warning_severity_maps_to_warning(self):
        finding = Finding(
            code="RF005", severity="warning", path="x.py", line=1, col=0,
            message="m",
        )
        doc = json.loads(render_sarif([finding], RULES))
        assert doc["runs"][0]["results"][0]["level"] == "warning"
