"""RNG-provenance taint tests (RF001/RF002)."""

from tools.reproflow import taint
from tools.reproflow.engine import program_from_sources


def run_taint(sources):
    program, findings = program_from_sources(sources)
    assert findings == []
    return taint.run(program)


class TestLocalProvenance:
    def test_unseeded_local_draw_flagged(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    rng = np.random.default_rng()\n"
                    "    return rng.normal()\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF001", 4)]
        assert "src/repro/a.py:3" in findings[0].message

    def test_seeded_local_draw_clean(self):
        assert (
            run_taint(
                {
                    "src/repro/a.py": (
                        "import numpy as np\n"
                        "def f():\n"
                        "    rng = np.random.default_rng(7)\n"
                        "    return rng.normal()\n"
                    ),
                }
            )
            == []
        )

    def test_explicit_none_seed_is_unseeded(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    rng = np.random.default_rng(None)\n"
                    "    return rng.integers(0, 10)\n"
                ),
            }
        )
        assert [f.code for f in findings] == ["RF001"]

    def test_unseeded_bitgen_flagged(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    rng = np.random.Generator(np.random.PCG64())\n"
                    "    return rng.random()\n"
                ),
            }
        )
        assert [f.code for f in findings] == ["RF001"]

    def test_unknown_provenance_stays_silent(self):
        # A parameter nothing ever binds resolves to no roots: silence.
        assert (
            run_taint(
                {
                    "src/repro/a.py": (
                        "def f(rng):\n"
                        "    return rng.normal()\n"
                    ),
                }
            )
            == []
        )


class TestInterproceduralFlow:
    def test_unseeded_stream_crosses_module_boundary(self):
        findings = run_taint(
            {
                "src/repro/streams.py": (
                    "import numpy as np\n"
                    "def make_stream():\n"
                    "    return np.random.Generator(np.random.PCG64())\n"
                ),
                "src/repro/sim.py": (
                    "from repro.streams import make_stream\n"
                    "def advance():\n"
                    "    rng = make_stream()\n"
                    "    return rng.normal()\n"
                ),
            }
        )
        assert [(f.code, f.path, f.line) for f in findings] == [
            ("RF001", "src/repro/sim.py", 4)
        ]
        assert "src/repro/streams.py:3" in findings[0].message

    def test_unseeded_stream_through_parameter(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def draw(rng):\n"
                    "    return rng.normal()\n"
                    "def caller():\n"
                    "    return draw(np.random.default_rng())\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF001", 3)]

    def test_seeded_stream_through_parameter_clean(self):
        assert (
            run_taint(
                {
                    "src/repro/a.py": (
                        "import numpy as np\n"
                        "def draw(rng):\n"
                        "    return rng.normal()\n"
                        "def caller():\n"
                        "    return draw(np.random.default_rng(3))\n"
                    ),
                }
            )
            == []
        )

    def test_derived_child_stream_inherits_unseeded_root(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def child(rng):\n"
                    "    return np.random.default_rng("
                    "int(rng.integers(0, 2**63 - 1)))\n"
                    "def use():\n"
                    "    kid = child(np.random.default_rng())\n"
                    "    return kid.uniform()\n"
                ),
            }
        )
        # Both the seed-derivation draw (line 3) and the draw on the
        # derived child (line 6) sit on the unseeded root.
        assert [(f.code, f.line) for f in findings] == [
            ("RF001", 3),
            ("RF001", 6),
        ]

    def test_derived_child_stream_of_seeded_parent_clean(self):
        assert (
            run_taint(
                {
                    "src/repro/a.py": (
                        "import numpy as np\n"
                        "def child(rng):\n"
                        "    return np.random.default_rng("
                        "int(rng.integers(0, 2**63 - 1)))\n"
                        "def use():\n"
                        "    kid = child(np.random.default_rng(5))\n"
                        "    return kid.uniform()\n"
                    ),
                }
            )
            == []
        )

    def test_spawn_children_keep_provenance(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    root = np.random.default_rng()\n"
                    "    kid = root.spawn(3)[0]\n"
                    "    return kid.random()\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF001", 5)]

    def test_self_attribute_flow(self):
        findings = run_taint(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self._rng = np.random.default_rng()\n"
                    "    def step(self):\n"
                    "        return self._rng.normal()\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF001", 6)]


FAULTS_HELPER = (
    "def make_noise(rng, n):\n"
    "    return rng.normal(size=n)\n"
)


class TestFaultsBoundary:
    def test_sim_stream_into_faults_flagged(self):
        findings = run_taint(
            {
                "src/repro/faults/noise.py": FAULTS_HELPER,
                "src/repro/world/sim.py": (
                    "import numpy as np\n"
                    "from repro.faults.noise import make_noise\n"
                    "def step():\n"
                    "    rng = np.random.default_rng(11)\n"
                    "    return make_noise(rng, 4)\n"
                ),
            }
        )
        codes = [(f.code, f.path, f.line) for f in findings]
        assert codes == [("RF002", "src/repro/world/sim.py", 5)]

    def test_faults_stream_into_sim_flagged(self):
        findings = run_taint(
            {
                "src/repro/world/mix.py": (
                    "def blend(rng, x):\n"
                    "    return rng.uniform() + x\n"
                ),
                "src/repro/faults/inject.py": (
                    "import numpy as np\n"
                    "from repro.world.mix import blend\n"
                    "def corrupt(x):\n"
                    "    rng = np.random.default_rng(3)\n"
                    "    return blend(rng, x)\n"
                ),
            }
        )
        codes = [(f.code, f.path, f.line) for f in findings]
        assert codes == [("RF002", "src/repro/faults/inject.py", 5)]

    def test_faults_stream_returned_to_sim_flagged(self):
        findings = run_taint(
            {
                "src/repro/faults/gen.py": (
                    "import numpy as np\n"
                    "def make_rng():\n"
                    "    return np.random.default_rng(9)\n"
                ),
                "src/repro/world/sim.py": (
                    "from repro.faults.gen import make_rng\n"
                    "def step():\n"
                    "    rng = make_rng()\n"
                    "    return rng\n"
                ),
            }
        )
        assert [(f.code, f.path, f.line) for f in findings] == [
            ("RF002", "src/repro/world/sim.py", 3)
        ]

    def test_integer_seed_crossing_is_legal(self):
        # Deriving an int seed and handing THAT across is the sanctioned
        # pattern (FaultModel.compile takes a seed, not a stream).
        assert (
            run_taint(
                {
                    "src/repro/faults/model.py": (
                        "import numpy as np\n"
                        "def compile_model(seed):\n"
                        "    rng = np.random.default_rng(seed)\n"
                        "    return rng.random()\n"
                    ),
                    "src/repro/world/sim.py": (
                        "from repro.faults.model import compile_model\n"
                        "def step(seed):\n"
                        "    return compile_model(seed + 1)\n"
                    ),
                }
            )
            == []
        )

    def test_faults_internal_stream_is_legal(self):
        assert (
            run_taint(
                {
                    "src/repro/faults/model.py": (
                        "import numpy as np\n"
                        "def make(seed):\n"
                        "    return np.random.default_rng(seed)\n"
                        "def sample(seed):\n"
                        "    return make(seed).random()\n"
                    ),
                }
            )
            == []
        )


class TestSuppression:
    def test_inline_disable_silences_rf001(self):
        program, _ = program_from_sources(
            {
                "src/repro/a.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    rng = np.random.default_rng()\n"
                    "    return rng.normal()"
                    "  # reproflow: disable=RF001\n"
                ),
            }
        )
        from tools.reproflow.engine import apply_suppressions

        findings = apply_suppressions(taint.run(program), program)
        assert findings == []
